"""End-to-end learning tests for the CopyNet model.

These use a tiny synthetic grammar: abstracts of the form
``X 是 著名 <concept>`` where the target is the concept token.  The copy
task variant makes the target an out-of-vocabulary name that only appears
in the source — solvable only through the copy mechanism.
"""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.neural.dataset import Seq2SeqDataset, Seq2SeqExample, encode_batch
from repro.neural.model import CopyNetSeq2Seq
from repro.neural.training import Adam, Trainer, TrainingConfig
from repro.neural.vocab import Vocabulary


def make_generation_dataset() -> tuple[Seq2SeqDataset, Vocabulary]:
    concepts = ["歌手", "演员", "作家", "画家"]
    cues = {"歌手": "唱歌", "演员": "演戏", "作家": "写作", "画家": "绘画"}
    examples = []
    for i in range(60):
        concept = concepts[i % len(concepts)]
        source = (f"名人{i}", "从事", cues[concept], "工作")
        examples.append(Seq2SeqExample(source=source, target=(concept,)))
    vocab = Vocabulary.build([e.source for e in examples]
                             + [e.target for e in examples])
    return Seq2SeqDataset(examples), vocab


class TestDataset:
    def test_example_rejects_empty(self):
        with pytest.raises(TrainingError):
            Seq2SeqExample(source=(), target=("x",))
        with pytest.raises(TrainingError):
            Seq2SeqExample(source=("x",), target=())

    def test_split(self):
        data, _ = make_generation_dataset()
        train, valid = data.split(0.8, seed=1)
        assert len(train) + len(valid) == len(data)
        assert len(train) == 48

    def test_split_invalid_ratio(self):
        data, _ = make_generation_dataset()
        with pytest.raises(TrainingError):
            data.split(1.5)

    def test_encode_batch_shapes(self):
        data, vocab = make_generation_dataset()
        batch = encode_batch([data[0], data[1]], vocab)
        assert batch.src_ids.shape == batch.src_extended.shape
        assert batch.src_mask.shape == batch.src_ids.shape
        assert batch.target_ids.shape[0] == 2

    def test_encode_batch_empty(self):
        _, vocab = make_generation_dataset()
        with pytest.raises(TrainingError):
            encode_batch([], vocab)

    def test_truncation(self):
        _, vocab = make_generation_dataset()
        long_example = Seq2SeqExample(source=tuple("abcdefghij"), target=("x",))
        batch = encode_batch([long_example], vocab, max_src_len=5)
        assert batch.src_ids.shape[1] == 5


class TestModelBasics:
    def test_too_small_vocab_rejected(self):
        with pytest.raises(TrainingError):
            CopyNetSeq2Seq(vocab_size=3)

    def test_parameters_collected(self):
        model = CopyNetSeq2Seq(vocab_size=20, embed_dim=8, hidden_dim=10)
        params = model.parameters()
        assert any("embedding" in k for k in params)
        assert any("encoder" in k for k in params)
        assert any("copy_gate" in k for k in params)

    def test_loss_is_finite_scalar(self):
        data, vocab = make_generation_dataset()
        model = CopyNetSeq2Seq(len(vocab), embed_dim=8, hidden_dim=10)
        batch = encode_batch([data[0], data[1]], vocab)
        loss = model.loss(
            batch.src_ids, batch.src_extended, batch.src_mask,
            batch.n_oov, batch.target_ids, batch.target_mask,
        )
        assert np.isfinite(loss.data)
        assert loss.data.size == 1

    def test_generate_on_untrained_model_returns_tokens(self):
        data, vocab = make_generation_dataset()
        model = CopyNetSeq2Seq(len(vocab), embed_dim=8, hidden_dim=10)
        out = model.generate(vocab, list(data[0].source))
        assert isinstance(out, list)

    def test_generate_empty_source(self):
        _, vocab = make_generation_dataset()
        model = CopyNetSeq2Seq(len(vocab), embed_dim=8, hidden_dim=10)
        assert model.generate(vocab, []) == []


class TestLearning:
    def test_loss_decreases(self):
        data, vocab = make_generation_dataset()
        model = CopyNetSeq2Seq(len(vocab), embed_dim=12, hidden_dim=16, seed=1)
        trainer = Trainer(model, vocab, TrainingConfig(epochs=6, lr=8e-3))
        report = trainer.fit(data)
        assert report.improved
        assert report.final_loss < report.epoch_losses[0] * 0.7

    def test_learns_generation_task(self):
        data, vocab = make_generation_dataset()
        model = CopyNetSeq2Seq(len(vocab), embed_dim=12, hidden_dim=16, seed=2)
        trainer = Trainer(model, vocab, TrainingConfig(epochs=30, lr=1e-2))
        trainer.fit(data)
        correct = 0
        for example in list(data)[:20]:
            produced = model.generate(vocab, list(example.source), max_len=2)
            if produced and produced[0] == example.target[0]:
                correct += 1
        assert correct >= 15

    def test_copy_mechanism_handles_oov_targets(self):
        # Targets are entity-specific OOV tokens present in the source:
        # only copying can solve this.
        examples = []
        for i in range(40):
            name = f"新词{i}"
            examples.append(
                Seq2SeqExample(source=("介绍", name, "如下"), target=(name,))
            )
        vocab = Vocabulary.build([("介绍", "如下", "是")])
        model = CopyNetSeq2Seq(len(vocab), embed_dim=10, hidden_dim=12, seed=3)
        trainer = Trainer(model, vocab, TrainingConfig(epochs=15, lr=8e-3))
        trainer.fit(Seq2SeqDataset(examples))
        produced = model.generate(vocab, ["介绍", "全新词", "如下"], max_len=2)
        assert produced == ["全新词"]

    def test_empty_dataset_rejected(self):
        _, vocab = make_generation_dataset()
        model = CopyNetSeq2Seq(len(vocab), embed_dim=8, hidden_dim=10)
        with pytest.raises(TrainingError):
            Trainer(model, vocab).fit(Seq2SeqDataset([]))


class TestAdam:
    def test_minimises_quadratic(self):
        from repro.neural.autograd import Tensor
        from repro.neural import autograd as ag

        x = Tensor(np.array([[5.0]]), requires_grad=True)
        opt = Adam({"x": x}, lr=0.3)
        for _ in range(100):
            opt.zero_grad()
            loss = ag.mean(ag.mul(x, x))
            loss.backward()
            opt.step()
        assert abs(x.data.item()) < 0.1

    def test_invalid_lr(self):
        with pytest.raises(TrainingError):
            Adam({}, lr=0.0)

    def test_clipping_keeps_update_bounded(self):
        from repro.neural.autograd import Tensor
        from repro.neural import autograd as ag

        x = Tensor(np.array([[1000.0]]), requires_grad=True)
        opt = Adam({"x": x}, lr=0.1, clip_norm=1.0)
        opt.zero_grad()
        loss = ag.mean(ag.mul(x, x))
        loss.backward()
        before = x.data.item()
        opt.step()
        assert abs(before - x.data.item()) < 0.2
