"""Tests for the neural vocabulary and extended-vocab encoding."""

import pytest

from repro.errors import VocabularyError
from repro.neural.vocab import BOS, EOS, PAD, UNK, Vocabulary


@pytest.fixture
def vocab():
    return Vocabulary.build([["著名", "歌手", "歌手"], ["演员", "歌手"]])


class TestBuild:
    def test_reserved_first(self, vocab):
        assert vocab.token_of(PAD) == "<pad>"
        assert vocab.token_of(BOS) == "<bos>"
        assert vocab.token_of(EOS) == "<eos>"
        assert vocab.token_of(UNK) == "<unk>"

    def test_frequency_order(self, vocab):
        assert vocab.id_of("歌手") < vocab.id_of("著名")

    def test_len(self, vocab):
        assert len(vocab) == 4 + 3

    def test_min_freq(self):
        v = Vocabulary.build([["a", "a", "b"]], min_freq=2)
        assert "a" in v
        assert "b" not in v

    def test_max_size(self):
        v = Vocabulary.build([["a", "b", "c"]], max_size=6)
        assert len(v) == 6

    def test_invalid_max_size(self):
        with pytest.raises(VocabularyError):
            Vocabulary.build([["a"]], max_size=0)

    def test_duplicate_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary(["a", "a"])

    def test_token_of_out_of_range(self, vocab):
        with pytest.raises(VocabularyError):
            vocab.token_of(999)


class TestEncodeDecode:
    def test_round_trip(self, vocab):
        ids = vocab.encode(["著名", "歌手"])
        assert vocab.decode(ids) == ["著名", "歌手"]

    def test_unknown_becomes_unk(self, vocab):
        assert vocab.encode(["外星"]) == [UNK]

    def test_add_eos(self, vocab):
        assert vocab.encode(["歌手"], add_eos=True)[-1] == EOS

    def test_decode_stops_at_eos(self, vocab):
        ids = vocab.encode(["著名"], add_eos=True) + vocab.encode(["歌手"])
        assert vocab.decode(ids) == ["著名"]

    def test_decode_skips_pad_and_bos(self, vocab):
        ids = [PAD, BOS] + vocab.encode(["歌手"])
        assert vocab.decode(ids) == ["歌手"]


class TestExtended:
    def test_oov_gets_temp_ids(self, vocab):
        ids, oov = vocab.encode_extended(["著名", "刘德华", "星爷"])
        assert oov == {"刘德华": len(vocab), "星爷": len(vocab) + 1}
        assert ids[1] == len(vocab)

    def test_repeated_oov_shares_id(self, vocab):
        ids, oov = vocab.encode_extended(["刘德华", "刘德华"])
        assert ids[0] == ids[1]
        assert len(oov) == 1

    def test_decode_extended(self, vocab):
        ids, oov = vocab.encode_extended(["歌手", "刘德华"])
        assert vocab.decode_extended(ids, oov) == ["歌手", "刘德华"]

    def test_decode_extended_unknown_slot(self, vocab):
        assert vocab.decode_extended([len(vocab) + 7], {}) == ["<unk>"]

    def test_target_ids_use_oov_slots(self, vocab):
        _, oov = vocab.encode_extended(["刘德华"])
        target = vocab.target_ids_extended(["刘德华"], oov)
        assert target == [len(vocab), EOS]

    def test_target_ids_unknown_without_slot(self, vocab):
        target = vocab.target_ids_extended(["无名"], {})
        assert target == [UNK, EOS]
