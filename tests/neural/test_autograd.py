"""Gradient correctness tests: autograd vs central finite differences."""

import numpy as np
import pytest

from repro.neural import autograd as ag
from repro.neural.autograd import Tensor

RNG = np.random.default_rng(42)


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar-valued f at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = f()
        flat[i] = original - eps
        down = f()
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check(build, x_data: np.ndarray, atol: float = 1e-6):
    """Compare autograd gradient of build(x) against finite differences."""
    x = Tensor(x_data.copy(), requires_grad=True)
    loss = build(x)
    loss.backward()
    auto = x.grad.copy()

    def f():
        return float(build(Tensor(x.data)).data)

    num = numeric_grad(f, x.data)
    np.testing.assert_allclose(auto, num, atol=atol, rtol=1e-4)


class TestElementwise:
    def test_add_broadcast(self):
        b = Tensor(RNG.normal(size=(1, 4)))
        check(lambda x: ag.mean(ag.add(x, b)), RNG.normal(size=(3, 4)))

    def test_sub(self):
        b = Tensor(RNG.normal(size=(3, 4)))
        check(lambda x: ag.mean(ag.sub(x, b)), RNG.normal(size=(3, 4)))

    def test_mul_broadcast(self):
        b = Tensor(RNG.normal(size=(3, 1)))
        check(lambda x: ag.mean(ag.mul(x, b)), RNG.normal(size=(3, 4)))

    def test_scalar_mul(self):
        check(lambda x: ag.mean(ag.scalar_mul(x, -2.5)), RNG.normal(size=(2, 3)))

    def test_sigmoid(self):
        check(lambda x: ag.mean(ag.sigmoid(x)), RNG.normal(size=(3, 3)))

    def test_tanh(self):
        check(lambda x: ag.mean(ag.tanh(x)), RNG.normal(size=(3, 3)))

    def test_log(self):
        check(lambda x: ag.mean(ag.log(x)), RNG.uniform(0.5, 2.0, size=(3, 3)))

    def test_softmax(self):
        w = Tensor(RNG.normal(size=(3, 5)))
        check(
            lambda x: ag.mean(ag.mul(ag.softmax(x), w)),
            RNG.normal(size=(3, 5)),
            atol=1e-5,
        )


class TestMatrixOps:
    def test_matmul_left(self):
        b = Tensor(RNG.normal(size=(4, 2)))
        check(lambda x: ag.mean(ag.matmul(x, b)), RNG.normal(size=(3, 4)))

    def test_matmul_right(self):
        a = Tensor(RNG.normal(size=(3, 4)))
        check(lambda x: ag.mean(ag.matmul(a, x)), RNG.normal(size=(4, 2)))

    def test_concat(self):
        b = Tensor(RNG.normal(size=(3, 2)))
        check(lambda x: ag.mean(ag.concat([x, b], axis=1)), RNG.normal(size=(3, 4)))

    def test_rows(self):
        idx = np.array([0, 2, 2, 1])
        check(lambda x: ag.mean(ag.rows(x, idx)), RNG.normal(size=(4, 3)))

    def test_slice_cols(self):
        check(lambda x: ag.mean(ag.slice_cols(x, 1, 3)), RNG.normal(size=(3, 5)))

    def test_sum_axis(self):
        check(lambda x: ag.mean(ag.sum_axis(x, axis=1)), RNG.normal(size=(3, 4)))

    def test_gather_cols(self):
        idx = np.array([0, 3, 1])
        check(lambda x: ag.mean(ag.gather_cols(x, idx)), RNG.normal(size=(3, 4)))

    def test_scatter_add_cols(self):
        idx = np.array([[0, 2, 2], [1, 1, 4]])
        check(
            lambda x: ag.mean(ag.scatter_add_cols(x, idx, 5)),
            RNG.normal(size=(2, 3)),
        )

    def test_pad_cols(self):
        check(lambda x: ag.mean(ag.pad_cols(x, 3)), RNG.normal(size=(2, 4)))

    def test_stack_rows(self):
        b = Tensor(RNG.normal(size=(2, 3)))
        check(lambda x: ag.mean(ag.stack_rows([x, b])), RNG.normal(size=(2, 3)))


class TestComposition:
    def test_two_layer_network(self):
        w2 = Tensor(RNG.normal(size=(4, 1)))

        def build(x):
            hidden = ag.tanh(x)
            return ag.mean(ag.matmul(hidden, w2))

        check(build, RNG.normal(size=(5, 4)))

    def test_gradient_accumulates_on_reuse(self):
        x = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        loss = ag.mean(ag.add(x, x))
        loss.backward()
        np.testing.assert_allclose(x.grad, np.array([[1.0, 1.0]]))

    def test_backward_requires_scalar(self):
        x = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            ag.add(x, x).backward()

    def test_no_grad_tracking_without_requires(self):
        x = Tensor(np.ones((2, 2)))
        out = ag.sigmoid(x)
        assert out._backward is None
        assert not out.requires_grad

    def test_pad_cols_negative(self):
        with pytest.raises(ValueError):
            ag.pad_cols(Tensor(np.ones((1, 2))), -1)
