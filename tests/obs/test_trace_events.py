"""Trace ring, event log, hub plumbing — including capacity properties.

Satellite contract: under sustained load both bounded rings evict
oldest-first and the retained window never shows a sequence gap — the
property tests drive that with hypothesis across ring sizes and
emission counts, mixed with concurrent writers.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.obs import (
    TelemetryHub,
    TraceIdSource,
    current_trace_id,
    fresh_hub,
    get_hub,
    per_hop_breakdown,
    set_hub,
    trace_context,
)
from repro.errors import TelemetryError
from repro.obs.events import EventLog
from repro.obs.trace import TraceLog


class TestTraceContext:
    def test_default_is_none(self):
        assert current_trace_id() is None

    def test_context_sets_and_restores(self):
        with trace_context("t-1"):
            assert current_trace_id() == "t-1"
            with trace_context("t-2"):
                assert current_trace_id() == "t-2"
            assert current_trace_id() == "t-1"
        assert current_trace_id() is None

    def test_none_context_clears(self):
        with trace_context("t-1"), trace_context(None):
            assert current_trace_id() is None

    def test_source_mints_unique_ids(self):
        source = TraceIdSource("x")
        ids = [source.mint() for _ in range(100)]
        assert len(set(ids)) == 100
        assert all(i.startswith("x") for i in ids)

    def test_two_sources_never_collide(self):
        a, b = TraceIdSource("s"), TraceIdSource("s")
        assert {a.mint() for _ in range(10)}.isdisjoint(
            {b.mint() for _ in range(10)}
        )


class TestTraceLog:
    def test_record_and_filter(self):
        log = TraceLog(capacity=16)
        log.record(trace_id="a", component="router", operation="men2ent",
                   seconds=0.001)
        log.record(trace_id="b", component="shard", operation="men2ent",
                   seconds=0.0005, shard=1)
        assert len(log.spans(trace_id="a")) == 1
        assert log.spans(trace_id="b")[0].shard == 1
        assert len(log) == 2

    def test_limit_returns_newest(self):
        log = TraceLog(capacity=64)
        for i in range(10):
            log.record(trace_id=f"t{i}", component="c", operation="o",
                       seconds=0.0)
        newest = log.spans(limit=3)
        assert [s.trace_id for s in newest] == ["t7", "t8", "t9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)


class TestEventLog:
    def test_emit_and_read(self):
        log = EventLog(capacity=8)
        log.emit("publish", version="v2", outcome="ok")
        (record,) = log.records()
        assert record["kind"] == "publish"
        assert record["version"] == "v2"
        assert record["seq"] == 1
        assert record["ts"] > 0

    def test_since_and_kind_filters(self):
        log = EventLog(capacity=32)
        for i in range(5):
            log.emit("swap", index=i)
        log.emit("resync", index=99)
        assert len(log.records(since=3)) == 3
        assert [r["index"] for r in log.records(kind="resync")] == [99]

    def test_reserved_fields_rejected(self):
        log = EventLog(capacity=8)
        with pytest.raises(TelemetryError):
            log.emit("swap", seq=12)

    def test_returned_records_are_copies(self):
        log = EventLog(capacity=8)
        log.emit("swap", n=1)
        log.records()[0]["n"] = 999
        assert log.records()[0]["n"] == 1


class TestRingProperties:
    @settings(max_examples=60)
    @given(
        capacity=st.integers(min_value=1, max_value=64),
        n_events=st.integers(min_value=0, max_value=200),
    )
    def test_event_ring_evicts_oldest_with_no_seq_gaps(
        self, capacity, n_events
    ):
        log = EventLog(capacity=capacity)
        for i in range(n_events):
            log.emit("tick", index=i)
        records = log.records()
        assert len(records) == min(capacity, n_events)
        assert log.last_seq == n_events
        seqs = [r["seq"] for r in records]
        # the retained window is the *newest* contiguous run
        assert seqs == list(
            range(n_events - len(records) + 1, n_events + 1)
        )
        assert [r["index"] for r in records] == [s - 1 for s in seqs]

    @settings(max_examples=60)
    @given(
        capacity=st.integers(min_value=1, max_value=64),
        n_spans=st.integers(min_value=0, max_value=200),
    )
    def test_trace_ring_evicts_oldest_with_no_seq_gaps(
        self, capacity, n_spans
    ):
        log = TraceLog(capacity=capacity)
        for i in range(n_spans):
            log.record(trace_id=f"t{i}", component="c", operation="o",
                       seconds=0.0)
        spans = log.spans()
        assert len(spans) == min(capacity, n_spans)
        seqs = [s.seq for s in spans]
        assert seqs == list(
            range(n_spans - len(spans) + 1, n_spans + 1)
        )

    @settings(max_examples=20, deadline=None)
    @given(
        capacity=st.integers(min_value=4, max_value=64),
        per_thread=st.integers(min_value=1, max_value=50),
    )
    def test_concurrent_emitters_never_tear_the_sequence(
        self, capacity, per_thread
    ):
        log = EventLog(capacity=capacity)
        n_threads = 4

        def emitter(worker):
            for i in range(per_thread):
                log.emit("tick", worker=worker, i=i)

        threads = [
            threading.Thread(target=emitter, args=(w,))
            for w in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        records = log.records()
        assert log.last_seq == total
        seqs = [r["seq"] for r in records]
        # retained window is contiguous and ends at the newest seq
        assert seqs == list(range(total - len(records) + 1, total + 1))


class TestHub:
    def test_fresh_hub_swaps_and_restores_default(self):
        before = get_hub()
        with fresh_hub() as hub:
            assert get_hub() is hub
            assert hub is not before
        assert get_hub() is before

    def test_set_hub_returns_previous(self):
        before = get_hub()
        replacement = TelemetryHub()
        try:
            assert set_hub(replacement) is before
            assert get_hub() is replacement
        finally:
            set_hub(before)

    def test_record_span_and_emit_land_in_rings(self):
        hub = TelemetryHub(trace_capacity=8, event_capacity=8)
        hub.record_span(trace_id="t", component="c", operation="o",
                        seconds=0.001)
        hub.emit("swap", version="v2")
        assert len(hub.traces.spans(trace_id="t")) == 1
        assert hub.events.records(kind="swap")[0]["version"] == "v2"


class TestPerHopBreakdown:
    def test_mixed_span_objects_and_dicts(self):
        hub = TelemetryHub()
        hub.record_span(trace_id="t1", component="router", operation="o",
                        seconds=0.004)
        spans = list(hub.traces.spans()) + [
            {"trace_id": "t1", "component": "shard", "operation": "o",
             "seconds": 0.001},
        ]
        breakdown = per_hop_breakdown(spans)
        assert breakdown["router"]["count"] == 1
        assert breakdown["shard"]["p95_s"] == pytest.approx(0.001)

    def test_wire_hop_derived_from_client_minus_server(self):
        spans = [
            {"trace_id": "t", "component": "client", "operation": "o",
             "seconds": 0.010},
            {"trace_id": "t", "component": "server", "operation": "o",
             "seconds": 0.008},
        ]
        breakdown = per_hop_breakdown(spans)
        assert breakdown["wire"]["p50_s"] == pytest.approx(0.002)

    def test_empty_input(self):
        assert per_hop_breakdown([]) == {}
