"""Unit tests for the unified metrics registry.

The registry's contract: one named family per metric, JSON and
Prometheus expositions rendered from the *same* snapshot (parity by
construction), weakref'd collectors that disappear with their owners,
and summary quantiles that are monotone however the samples arrive.
"""

import gc

import pytest

from repro.obs.metrics import (
    COUNTER,
    GAUGE,
    SUMMARY,
    MetricSnapshot,
    MetricsRegistry,
    Sample,
    summary_quantiles,
)


class TestFamilies:
    def test_counter_inc_and_snapshot(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "Requests.")
        requests.inc()
        requests.labels(api="men2ent").inc(4)
        snap = {s.name: s for s in registry.snapshot()}
        family = snap["requests_total"]
        assert family.kind == COUNTER
        values = {s.labels: s.value for s in family.samples}
        assert values[()] == 1
        assert values[(("api", "men2ent"),)] == 4

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c", "h").inc(-1)

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Queue depth.")
        gauge.set(7)
        gauge.inc(-2)
        (family,) = registry.snapshot()
        assert family.kind == GAUGE
        assert family.samples[0].value == 5

    def test_summary_observes_quantiles(self):
        registry = MetricsRegistry()
        latency = registry.summary("latency_seconds", "Latency.")
        for ms in range(1, 101):
            latency.observe(ms / 1000.0)
        (family,) = registry.snapshot()
        assert family.kind == SUMMARY
        sample = family.samples[0]
        assert sample.count == 100
        assert sample.max == pytest.approx(0.100)
        quantiles = dict(sample.quantiles)
        assert quantiles[0.5] <= quantiles[0.95] <= quantiles[0.99]
        assert quantiles[0.99] <= sample.max

    def test_same_name_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", "h")
        b = registry.counter("hits", "h")
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", "h")
        with pytest.raises(ValueError):
            registry.gauge("x", "h")


class TestCollectors:
    class Ledger:
        def __init__(self, value):
            self.value = value

        def metric_samples(self):
            return [MetricSnapshot(
                "ledger_total", COUNTER, "Ledger.",
                (Sample((), self.value),),
            )]

    def test_collector_samples_get_component_label(self):
        registry = MetricsRegistry()
        ledger = self.Ledger(3)
        registry.register_collector("store", ledger)
        snap = {s.name: s for s in registry.snapshot()}
        sample = snap["ledger_total"].samples[0]
        assert ("component", "store") in sample.labels
        assert sample.value == 3

    def test_dead_collectors_are_pruned(self):
        registry = MetricsRegistry()
        ledger = self.Ledger(1)
        registry.register_collector("store", ledger)
        del ledger
        gc.collect()
        assert "ledger_total" not in {s.name for s in registry.snapshot()}

    def test_duplicate_component_names_get_suffixes(self):
        registry = MetricsRegistry()
        first, second = self.Ledger(1), self.Ledger(2)
        registry.register_collector("store", first)
        registry.register_collector("store", second)
        snap = {s.name: s for s in registry.snapshot()}
        components = sorted(
            dict(sample.labels)["component"]
            for sample in snap["ledger_total"].samples
        )
        assert components == ["store", "store#2"]

    def test_collector_without_method_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError):
            registry.register_collector("x", object())


class TestExpositionParity:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests.").labels(
            api="men2ent"
        ).inc(2)
        registry.gauge("depth", "Depth.").set(4)
        summary = registry.summary("latency_seconds", "Latency.")
        summary.observe(0.001)
        summary.observe(0.003)
        return registry

    def test_every_json_metric_appears_in_text(self):
        registry = self.make_registry()
        text = registry.render_text()
        for name in registry.as_dict():
            assert f"# TYPE {name} " in text, name

    def test_text_has_help_type_and_values(self):
        registry = self.make_registry()
        text = registry.render_text()
        assert "# HELP requests_total Requests." in text
        assert 'requests_total{api="men2ent"} 2' in text
        assert "depth 4" in text
        assert "latency_seconds_count 2" in text
        assert "latency_seconds_sum" in text
        assert 'quantile="0.5"' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "h").labels(k='a"b\\c\nd').inc()
        text = registry.render_text()
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_as_dict_round_trips_through_json(self):
        import json

        registry = self.make_registry()
        payload = json.loads(json.dumps(registry.as_dict()))
        assert payload["requests_total"]["type"] == COUNTER
        summary = payload["latency_seconds"]["samples"][0]
        assert summary["count"] == 2
        assert summary["p50"] <= summary["p95"]


class TestQuantileHelper:
    def test_empty_is_zeroes(self):
        assert all(v == 0.0 for _, v in summary_quantiles([]))

    def test_monotone_on_adversarial_order(self):
        values = [5.0, 1.0, 4.0, 2.0, 3.0] * 20
        q = dict(summary_quantiles(values))
        assert q[0.5] <= q[0.95] <= q[0.99]
