"""Tests for precision metrics, QA dataset and coverage."""

import pytest

from repro.encyclopedia import SyntheticWorld
from repro.eval.coverage import qa_coverage
from repro.eval.metrics import (
    make_oracle,
    relation_precision,
    sample_precision,
    source_precision,
)
from repro.eval.qa_dataset import generate_questions
from repro.eval.report import format_count, format_percent, render_table
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(seed=9, n_entities=300)


@pytest.fixture(scope="module")
def oracle(world):
    return make_oracle(world)


class TestPrecision:
    def test_all_correct(self):
        relations = [IsARelation("a#0", "b", "tag")]
        estimate = relation_precision(relations, lambda h, y: True)
        assert estimate.precision == 1.0

    def test_all_wrong(self):
        relations = [IsARelation("a#0", "b", "tag")]
        estimate = relation_precision(relations, lambda h, y: False)
        assert estimate.precision == 0.0

    def test_empty_relations(self):
        estimate = sample_precision([], lambda h, y: True)
        assert estimate.n_labelled == 0
        assert estimate.precision == 0.0

    def test_sampling_caps_at_n(self):
        relations = [
            IsARelation(f"e{i}#0", "c", "tag") for i in range(50)
        ]
        estimate = sample_precision(relations, lambda h, y: True, n_samples=10)
        assert estimate.n_labelled == 10

    def test_sampling_deterministic(self):
        relations = [
            IsARelation(f"e{i}#0", "c", "tag") for i in range(100)
        ]
        oracle = lambda h, y: hash(h) % 2 == 0
        a = sample_precision(relations, oracle, 20, seed=4)
        b = sample_precision(relations, oracle, 20, seed=4)
        assert a == b

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            sample_precision([], lambda h, y: True, n_samples=0)

    def test_source_precision_per_source(self):
        per_source = {
            "tag": [IsARelation("a#0", "b", "tag")],
            "bracket": [IsARelation("a#0", "c", "bracket")],
        }
        results = source_precision(per_source, lambda h, y: y == "b")
        assert results["tag"].precision == 1.0
        assert results["bracket"].precision == 0.0

    def test_str_format(self):
        estimate = relation_precision(
            [IsARelation("a#0", "b", "tag")], lambda h, y: True
        )
        assert "100.0%" in str(estimate)


class TestOracle:
    def test_entity_gold(self, world, oracle):
        entity = world.entities[0]
        assert oracle(entity.page_id, entity.leaf_concepts[0])

    def test_mention_surface_any_sense(self, world, oracle):
        entity = world.entities[0]
        assert oracle(entity.name, entity.leaf_concepts[0])

    def test_concept_page_suffix_stripped(self, world, oracle):
        # X#concept ids are judged on the bare concept surface.
        sub = next(
            (name for name, info in world.concepts.items()
             if info.parents and not info.declared),
            None,
        )
        if sub is not None:
            assert oracle(f"{sub}#concept", world.concepts[sub].parents[0])

    def test_wrong_pair_rejected(self, world, oracle):
        person = next(e for e in world.entities if e.kind == "person")
        assert not oracle(person.page_id, "饮料")


class TestQADataset:
    def test_question_count(self, world):
        questions = generate_questions(world, 500, seed=1)
        assert len(questions) == 500

    def test_mention_kinds_mixed(self, world):
        questions = generate_questions(world, 800, seed=1)
        kinds = {q.mention_kind for q in questions}
        assert kinds == {"entity", "concept", "oov"}

    def test_mention_embedded_in_text(self, world):
        for question in generate_questions(world, 100, seed=2):
            assert question.mention in question.text

    def test_rates_respected(self, world):
        questions = generate_questions(world, 3000, seed=3)
        entity_share = sum(
            1 for q in questions if q.mention_kind == "entity"
        ) / len(questions)
        assert entity_share == pytest.approx(0.78, abs=0.03)

    def test_deterministic(self, world):
        a = generate_questions(world, 50, seed=5)
        b = generate_questions(world, 50, seed=5)
        assert a == b

    def test_invalid_count(self, world):
        with pytest.raises(ValueError):
            generate_questions(world, 0)

    def test_invalid_rates(self, world):
        with pytest.raises(ValueError):
            generate_questions(world, 10, entity_rate=0.9, concept_rate=0.2)


class TestCoverage:
    @pytest.fixture
    def taxonomy(self):
        t = Taxonomy()
        t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
        t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
        t.add_relation(IsARelation("刘德华#0", "演员", "tag"))
        return t

    def test_entity_mention_covered(self, taxonomy):
        from repro.eval.qa_dataset import Question

        report = qa_coverage(
            taxonomy, [Question("刘德华是谁？", "刘德华", "entity")]
        )
        assert report.coverage == 1.0
        assert report.avg_concepts_per_covered_entity == 2.0

    def test_concept_mention_covered(self, taxonomy):
        from repro.eval.qa_dataset import Question

        report = qa_coverage(
            taxonomy, [Question("有哪些著名的歌手？", "歌手", "concept")]
        )
        assert report.coverage == 1.0

    def test_oov_not_covered(self, taxonomy):
        from repro.eval.qa_dataset import Question

        report = qa_coverage(
            taxonomy, [Question("魁罡叕是谁？", "魁罡叕", "oov")]
        )
        assert report.coverage == 0.0

    def test_alias_covered(self, taxonomy):
        from repro.eval.qa_dataset import Question

        report = qa_coverage(
            taxonomy, [Question("华仔是谁？", "华仔", "entity")]
        )
        assert report.coverage == 1.0

    def test_empty_questions(self, taxonomy):
        report = qa_coverage(taxonomy, [])
        assert report.coverage == 0.0

    def test_paper_band_on_world(self, world):
        # Build a quick tag-only taxonomy and check coverage is high but
        # below 100% (the OOV tail).
        from repro.core.pipeline import PipelineConfig, build_cn_probase

        config = PipelineConfig(
            enable_bracket=False, enable_abstract=False, enable_infobox=False,
        )
        result = build_cn_probase(world.dump(), config)
        questions = generate_questions(world, 1000, seed=7)
        report = qa_coverage(result.taxonomy, questions)
        assert 0.80 <= report.coverage < 1.0


class TestReport:
    def test_render_table_contains_rows(self):
        table = render_table(
            ["Taxonomy", "precision"],
            [["CN-Probase", "95.0%"], ["Bigcilin", "90.0%"]],
            title="Table I",
        )
        assert "Table I" in table
        assert "CN-Probase" in table
        assert "95.0%" in table

    def test_cjk_alignment_width(self):
        table = render_table(["名称", "值"], [["中文名称", "1"]])
        lines = table.splitlines()
        assert len(lines) == 3

    def test_format_helpers(self):
        assert format_count(1234567) == "1,234,567"
        assert format_percent(0.954) == "95.4%"

    def test_empty_rows(self):
        table = render_table(["a"], [])
        assert "a" in table
