"""Tests for the read-optimized serving view and the store's per-key
sorted-result memos."""

import pytest

from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.service import TaxonomyService
from repro.taxonomy.store import ReadOptimizedTaxonomy, Taxonomy


@pytest.fixture
def taxonomy():
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_entity(Entity("周杰伦#0", "周杰伦"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
    t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
    t.add_relation(IsARelation("歌手", "人物", "tag", hyponym_kind="concept"))
    return t


class TestStoreMemos:
    def test_repeated_lookup_same_result(self, taxonomy):
        assert taxonomy.men2ent("华仔") == ["刘德华#0"]
        assert taxonomy.men2ent("华仔") == ["刘德华#0"]
        assert taxonomy.get_concepts("刘德华#0") == ["歌手", "演员"]
        assert taxonomy.get_concepts("刘德华#0") == ["歌手", "演员"]

    def test_returned_list_is_not_an_alias(self, taxonomy):
        first = taxonomy.get_entities("歌手")
        first.append("垃圾#9")
        assert taxonomy.get_entities("歌手") == ["刘德华#0", "周杰伦#0"]

    def test_add_relation_invalidates_affected_keys(self, taxonomy):
        assert taxonomy.get_entities("歌手") == ["刘德华#0", "周杰伦#0"]
        assert taxonomy.get_concepts("刘德华#0") == ["歌手", "演员"]
        taxonomy.add_entity(Entity("张学友#0", "张学友"))
        taxonomy.add_relation(IsARelation("张学友#0", "歌手", "tag"))
        taxonomy.add_relation(IsARelation("刘德华#0", "导演", "bracket"))
        assert taxonomy.get_entities("歌手") == [
            "刘德华#0", "周杰伦#0", "张学友#0",
        ]
        assert taxonomy.get_concepts("刘德华#0") == ["导演", "歌手", "演员"]

    def test_add_entity_invalidates_mentions(self, taxonomy):
        assert taxonomy.men2ent("刘德华") == ["刘德华#0"]
        taxonomy.add_entity(Entity("刘德华#1", "刘德华"))
        assert taxonomy.men2ent("刘德华") == ["刘德华#0", "刘德华#1"]

    def test_misses_not_memoised(self, taxonomy):
        assert taxonomy.men2ent("未知词123") == []
        assert taxonomy._men2ent_cache.get("未知词123") is None
        assert taxonomy.get_entities("未知概念") == []
        assert taxonomy._entities_cache.get("未知概念") is None


class TestReadOptimizedView:
    def test_freeze_matches_store(self, taxonomy):
        view = taxonomy.freeze()
        for mention in ("刘德华", "华仔", "周杰伦", "无人"):
            assert view.men2ent(mention) == taxonomy.men2ent(mention)
        for page_id in ("刘德华#0", "周杰伦#0", "无#9"):
            assert view.get_concepts(page_id) == taxonomy.get_concepts(page_id)
        for concept in ("歌手", "演员", "人物", "无概念"):
            assert view.get_entities(concept) == taxonomy.get_entities(concept)
        assert view.stats() == taxonomy.stats()
        assert len(view) == len(taxonomy)
        assert view.name == taxonomy.name

    def test_view_decoupled_from_source_mutation(self, taxonomy):
        view = taxonomy.freeze()
        taxonomy.add_entity(Entity("张学友#0", "张学友"))
        taxonomy.add_relation(IsARelation("张学友#0", "歌手", "tag"))
        assert view.get_entities("歌手") == ["刘德华#0", "周杰伦#0"]
        assert taxonomy.get_entities("歌手") == [
            "刘德华#0", "周杰伦#0", "张学友#0",
        ]

    def test_view_returns_fresh_lists(self, taxonomy):
        view = taxonomy.freeze()
        first = view.get_entities("歌手")
        first.append("垃圾#9")
        assert view.get_entities("歌手") == ["刘德华#0", "周杰伦#0"]

    def test_from_taxonomy_classmethod(self, taxonomy):
        view = ReadOptimizedTaxonomy.from_taxonomy(taxonomy)
        assert view.men2ent("华仔") == ["刘德华#0"]


class TestSnapshotServesReadView:
    def test_snapshot_wraps_view(self, taxonomy):
        service = TaxonomyService(taxonomy)
        snapshot = service.snapshot
        assert isinstance(snapshot.read_view, ReadOptimizedTaxonomy)
        assert snapshot.api._taxonomy is snapshot.read_view

    def test_served_answers_frozen_at_publish(self, taxonomy):
        service = TaxonomyService(taxonomy)
        taxonomy.add_entity(Entity("张学友#0", "张学友"))
        taxonomy.add_relation(IsARelation("张学友#0", "歌手", "tag"))
        # published snapshot still answers from its freeze...
        assert service.get_entities("歌手") == ["刘德华#0", "周杰伦#0"]
        # ...until the mutated taxonomy is explicitly re-published
        service.swap(taxonomy)
        assert service.get_entities("歌手") == [
            "刘德华#0", "周杰伦#0", "张学友#0",
        ]

    def test_snapshot_stats_from_view(self, taxonomy):
        service = TaxonomyService(taxonomy)
        assert service.snapshot.stats().n_isa_total == 4
