"""Tests for TaxonomyDelta: compute/apply equivalence, persistence, views."""

import json

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy.delta import (
    DELTA_FORMAT_VERSION,
    TaxonomyDelta,
    load_delta,
    save_delta,
)
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


def base_taxonomy() -> Taxonomy:
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_entity(Entity("周杰伦#0", "周杰伦"))
    t.add_entity(Entity("苹果#1", "苹果"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
    t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
    t.add_relation(IsARelation("苹果#1", "公司", "tag"))
    t.add_relation(IsARelation("男演员", "演员", "tag", hyponym_kind="concept"))
    return t


def evolved_taxonomy() -> Taxonomy:
    """base_taxonomy() with one of everything: add / remove / change."""
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔", "Andy")))
    t.add_entity(Entity("周杰伦#0", "周杰伦"))
    t.add_entity(Entity("王菲#0", "王菲"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag", score=2.0))
    t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
    t.add_relation(IsARelation("王菲#0", "歌手", "tag"))
    t.add_relation(IsARelation("男演员", "演员", "tag", hyponym_kind="concept"))
    t.add_relation(IsARelation("女歌手", "歌手", "tag", hyponym_kind="concept"))
    return t


class TestCompute:
    def test_identical_taxonomies_give_empty_delta(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), base_taxonomy())
        assert delta.is_empty
        assert delta.n_records == 0

    def test_counts_every_change_kind(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        assert delta.summary() == {
            "entities_added": 1,      # 王菲#0
            "entities_removed": 1,    # 苹果#1
            "entities_changed": 1,    # 刘德华#0 gained an alias
            "relations_added": 2,     # 王菲→歌手, 女歌手→歌手
            "relations_removed": 1,   # 苹果#1→公司
            "relations_changed": 1,   # 刘德华→歌手 rescored
        }
        assert delta.new_n_relations == len(evolved_taxonomy())
        assert delta.new_stats == evolved_taxonomy().stats()

    def test_changed_pairs_carry_old_and_new(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        (old, new), = delta.relations_changed
        assert old.key == new.key == ("刘德华#0", "歌手")
        assert old.score == 1.0 and new.score == 2.0


class TestApply:
    def test_apply_reproduces_target_bytes(self, tmp_path):
        old, new = base_taxonomy(), evolved_taxonomy()
        delta = TaxonomyDelta.compute(old, new)
        old.apply_delta(delta)
        applied_path = tmp_path / "applied.jsonl"
        target_path = tmp_path / "target.jsonl"
        old.save(applied_path)
        new.save(target_path)
        assert applied_path.read_bytes() == target_path.read_bytes()

    def test_apply_reproduces_stats_and_lookups(self):
        old, new = base_taxonomy(), evolved_taxonomy()
        old.apply_delta(TaxonomyDelta.compute(old, new))
        assert old.stats() == new.stats()
        assert old.men2ent("Andy") == ["刘德华#0"]
        assert old.men2ent("苹果") == []
        assert old.get_entities("歌手") == new.get_entities("歌手")
        assert old.get_subconcepts("歌手") == ["女歌手"]
        assert old.graph.is_dag()

    def test_empty_delta_is_identity(self, tmp_path):
        t = base_taxonomy()
        before = tmp_path / "before.jsonl"
        t.save(before)
        t.apply_delta(TaxonomyDelta.compute(base_taxonomy(), base_taxonomy()))
        after = tmp_path / "after.jsonl"
        t.save(after)
        assert before.read_bytes() == after.read_bytes()

    def test_wrong_base_is_refused_before_mutation(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        wrong = Taxonomy()
        wrong.add_entity(Entity("刘德华#0", "刘德华"))  # aliases differ
        wrong.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
        with pytest.raises(TaxonomyError, match="does not match base"):
            wrong.apply_delta(delta)
        # validation failed up front: nothing was applied
        assert wrong.men2ent("王菲") == []
        assert len(wrong) == 1

    def test_double_apply_is_refused(self):
        old = base_taxonomy()
        delta = TaxonomyDelta.compute(old, evolved_taxonomy())
        old.apply_delta(delta)
        with pytest.raises(TaxonomyError):
            old.apply_delta(delta)


class TestReadOptimizedApply:
    def test_matches_full_freeze(self):
        old, new = base_taxonomy(), evolved_taxonomy()
        delta = TaxonomyDelta.compute(old, new)
        advanced = old.freeze().apply_delta(
            delta,
            stats=delta.new_stats,
            n_relations=delta.new_n_relations,
            name=delta.name,
        )
        frozen = new.freeze()
        keys = set()
        for index in frozen.as_indexes() + old.freeze().as_indexes():
            keys.update(index)
        for key in keys:
            assert advanced.men2ent(key) == frozen.men2ent(key)
            assert advanced.get_concepts(key) == frozen.get_concepts(key)
            assert advanced.get_entities(key) == frozen.get_entities(key)
        assert advanced.stats() == frozen.stats()
        assert len(advanced) == len(frozen)

    def test_source_view_is_untouched(self):
        old = base_taxonomy()
        view = old.freeze()
        delta = TaxonomyDelta.compute(old, evolved_taxonomy())
        view.apply_delta(delta)
        assert view.men2ent("苹果") == ["苹果#1"]
        assert view.men2ent("王菲") == []

    def test_untouched_keys_keep_tuple_identity(self):
        old, new = base_taxonomy(), evolved_taxonomy()
        view = old.freeze()
        advanced = view.apply_delta(TaxonomyDelta.compute(old, new))
        before = view.as_indexes()
        after = advanced.as_indexes()
        # 周杰伦 is untouched by the delta: same result-tuple objects
        assert after[0]["周杰伦"] is before[0]["周杰伦"]
        assert after[1]["周杰伦#0"] is before[1]["周杰伦#0"]

    def test_key_filter_restricts_application(self):
        old, new = base_taxonomy(), evolved_taxonomy()
        delta = TaxonomyDelta.compute(old, new)
        advanced = old.freeze().apply_delta(
            delta, key_filter=lambda key: key == "王菲"
        )
        assert advanced.men2ent("王菲") == ["王菲#0"]
        assert advanced.men2ent("苹果") == ["苹果#1"]  # filtered out, kept


class TestPersistence:
    def test_round_trip(self, tmp_path):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        path = tmp_path / "delta.jsonl"
        save_delta(delta, path)
        loaded = load_delta(path)
        assert loaded == delta

    def test_round_trip_preserves_unicode(self, tmp_path):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        path = tmp_path / "delta.jsonl"
        Taxonomy.save_delta(delta, path)
        raw = path.read_text(encoding="utf-8")
        assert "王菲" in raw  # ensure_ascii=False: human-readable deltas
        assert Taxonomy.load_delta(path) == delta

    def test_applying_a_loaded_delta_reproduces_target(self, tmp_path):
        old, new = base_taxonomy(), evolved_taxonomy()
        path = tmp_path / "delta.jsonl"
        save_delta(TaxonomyDelta.compute(old, new), path)
        old.apply_delta(load_delta(path))
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        old.save(a)
        new.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_missing_file(self, tmp_path):
        with pytest.raises(TaxonomyError):
            load_delta(tmp_path / "nope.jsonl")

    def test_future_format_version_is_refused(self, tmp_path):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        path = tmp_path / "delta.jsonl"
        save_delta(delta, path)
        lines = path.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        header["format_version"] = DELTA_FORMAT_VERSION + 7
        lines[0] = json.dumps(header, ensure_ascii=False)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(TaxonomyError, match="format_version"):
            load_delta(path)

    def test_non_delta_file_is_refused(self, tmp_path):
        taxonomy_path = tmp_path / "t.jsonl"
        base_taxonomy().save(taxonomy_path)
        with pytest.raises(TaxonomyError):
            load_delta(taxonomy_path)

    def test_headerless_file_is_refused(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(TaxonomyError, match="header"):
            load_delta(path)


class TestTouchedServingKeys:
    def test_rescore_only_delta_touches_nothing(self):
        old = base_taxonomy()
        new = base_taxonomy()
        new.add_relation(IsARelation("刘德华#0", "歌手", "tag", score=3.0))
        delta = TaxonomyDelta.compute(old, new)
        assert delta.relations_changed
        assert list(delta.touched_serving_keys()) == []

    def test_structural_delta_touches_both_endpoints(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        touched = set(delta.touched_serving_keys())
        assert {"王菲", "王菲#0", "歌手", "苹果", "苹果#1", "公司"} <= touched
        # concept-layer edge (女歌手→歌手) is not a serving key
        assert "女歌手" not in touched


class TestKindFlip:
    """A (hyponym, hypernym) pair whose hyponym_kind flips between
    builds moves between the serving indexes: the delta must carry it
    as remove + add, never as an index-neutral 'changed' pair."""

    def _old(self):
        t = Taxonomy()
        t.add_entity(Entity("刘德华#0", "刘德华"))
        t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
        t.add_relation(
            IsARelation("天王", "演员", "tag", hyponym_kind="concept")
        )
        return t

    def _new(self):
        t = Taxonomy()
        t.add_entity(Entity("刘德华#0", "刘德华"))
        t.add_entity(Entity("天王", "天王"))
        t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
        t.add_relation(IsARelation("天王", "演员", "tag"))  # now an entity
        return t

    def test_flip_is_remove_plus_add(self):
        delta = TaxonomyDelta.compute(self._old(), self._new())
        assert not delta.relations_changed
        (removed,) = delta.relations_removed
        (added,) = delta.relations_added
        assert removed.key == added.key == ("天王", "演员")
        assert removed.hyponym_kind == "concept"
        assert added.hyponym_kind == "entity"
        assert "天王" in set(delta.touched_serving_keys())

    def test_flip_round_trips_through_every_apply_path(self, tmp_path):
        old, new = self._old(), self._new()
        delta = TaxonomyDelta.compute(old, new)

        frozen = old.freeze().apply_delta(delta)
        reference = new.freeze()
        assert frozen.get_concepts("天王") == reference.get_concepts("天王")
        assert frozen.get_entities("演员") == reference.get_entities("演员")

        old.apply_delta(delta)
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        old.save(a)
        new.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_flip_publishes_through_the_sharded_store(self):
        from repro.serving.sharding import ShardedSnapshotStore

        delta = TaxonomyDelta.compute(self._old(), self._new())
        store = ShardedSnapshotStore(self._old(), n_shards=2)
        store.publish_delta(delta)
        reference = ShardedSnapshotStore(self._new(), n_shards=2)
        for key in ("天王", "演员", "刘德华#0", "刘德华"):
            assert store.men2ent(key) == reference.men2ent(key)
            assert store.get_concepts(key) == reference.get_concepts(key)
            assert store.get_entities(key) == reference.get_entities(key)
