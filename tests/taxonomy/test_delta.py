"""Tests for TaxonomyDelta: compute/apply equivalence, persistence, views."""

import json

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy.delta import (
    DELTA_FORMAT_VERSION,
    DeltaHistory,
    TaxonomyDelta,
    compose,
    load_delta,
    save_delta,
)
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


def base_taxonomy() -> Taxonomy:
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_entity(Entity("周杰伦#0", "周杰伦"))
    t.add_entity(Entity("苹果#1", "苹果"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
    t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
    t.add_relation(IsARelation("苹果#1", "公司", "tag"))
    t.add_relation(IsARelation("男演员", "演员", "tag", hyponym_kind="concept"))
    return t


def evolved_taxonomy() -> Taxonomy:
    """base_taxonomy() with one of everything: add / remove / change."""
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔", "Andy")))
    t.add_entity(Entity("周杰伦#0", "周杰伦"))
    t.add_entity(Entity("王菲#0", "王菲"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag", score=2.0))
    t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
    t.add_relation(IsARelation("王菲#0", "歌手", "tag"))
    t.add_relation(IsARelation("男演员", "演员", "tag", hyponym_kind="concept"))
    t.add_relation(IsARelation("女歌手", "歌手", "tag", hyponym_kind="concept"))
    return t


class TestCompute:
    def test_identical_taxonomies_give_empty_delta(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), base_taxonomy())
        assert delta.is_empty
        assert delta.n_records == 0

    def test_counts_every_change_kind(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        assert delta.summary() == {
            "entities_added": 1,      # 王菲#0
            "entities_removed": 1,    # 苹果#1
            "entities_changed": 1,    # 刘德华#0 gained an alias
            "relations_added": 2,     # 王菲→歌手, 女歌手→歌手
            "relations_removed": 1,   # 苹果#1→公司
            "relations_changed": 1,   # 刘德华→歌手 rescored
        }
        assert delta.new_n_relations == len(evolved_taxonomy())
        assert delta.new_stats == evolved_taxonomy().stats()

    def test_changed_pairs_carry_old_and_new(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        (old, new), = delta.relations_changed
        assert old.key == new.key == ("刘德华#0", "歌手")
        assert old.score == 1.0 and new.score == 2.0


class TestApply:
    def test_apply_reproduces_target_bytes(self, tmp_path):
        old, new = base_taxonomy(), evolved_taxonomy()
        delta = TaxonomyDelta.compute(old, new)
        old.apply_delta(delta)
        applied_path = tmp_path / "applied.jsonl"
        target_path = tmp_path / "target.jsonl"
        old.save(applied_path)
        new.save(target_path)
        assert applied_path.read_bytes() == target_path.read_bytes()

    def test_apply_reproduces_stats_and_lookups(self):
        old, new = base_taxonomy(), evolved_taxonomy()
        old.apply_delta(TaxonomyDelta.compute(old, new))
        assert old.stats() == new.stats()
        assert old.men2ent("Andy") == ["刘德华#0"]
        assert old.men2ent("苹果") == []
        assert old.get_entities("歌手") == new.get_entities("歌手")
        assert old.get_subconcepts("歌手") == ["女歌手"]
        assert old.graph.is_dag()

    def test_empty_delta_is_identity(self, tmp_path):
        t = base_taxonomy()
        before = tmp_path / "before.jsonl"
        t.save(before)
        t.apply_delta(TaxonomyDelta.compute(base_taxonomy(), base_taxonomy()))
        after = tmp_path / "after.jsonl"
        t.save(after)
        assert before.read_bytes() == after.read_bytes()

    def test_wrong_base_is_refused_before_mutation(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        wrong = Taxonomy()
        wrong.add_entity(Entity("刘德华#0", "刘德华"))  # aliases differ
        wrong.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
        with pytest.raises(TaxonomyError, match="does not match base"):
            wrong.apply_delta(delta)
        # validation failed up front: nothing was applied
        assert wrong.men2ent("王菲") == []
        assert len(wrong) == 1

    def test_double_apply_is_refused(self):
        old = base_taxonomy()
        delta = TaxonomyDelta.compute(old, evolved_taxonomy())
        old.apply_delta(delta)
        with pytest.raises(TaxonomyError):
            old.apply_delta(delta)


class TestReadOptimizedApply:
    def test_matches_full_freeze(self):
        old, new = base_taxonomy(), evolved_taxonomy()
        delta = TaxonomyDelta.compute(old, new)
        advanced = old.freeze().apply_delta(
            delta,
            stats=delta.new_stats,
            n_relations=delta.new_n_relations,
            name=delta.name,
        )
        frozen = new.freeze()
        keys = set()
        for index in frozen.as_indexes() + old.freeze().as_indexes():
            keys.update(index)
        for key in keys:
            assert advanced.men2ent(key) == frozen.men2ent(key)
            assert advanced.get_concepts(key) == frozen.get_concepts(key)
            assert advanced.get_entities(key) == frozen.get_entities(key)
        assert advanced.stats() == frozen.stats()
        assert len(advanced) == len(frozen)

    def test_source_view_is_untouched(self):
        old = base_taxonomy()
        view = old.freeze()
        delta = TaxonomyDelta.compute(old, evolved_taxonomy())
        view.apply_delta(delta)
        assert view.men2ent("苹果") == ["苹果#1"]
        assert view.men2ent("王菲") == []

    def test_untouched_keys_keep_tuple_identity(self):
        old, new = base_taxonomy(), evolved_taxonomy()
        view = old.freeze()
        advanced = view.apply_delta(TaxonomyDelta.compute(old, new))
        before = view.as_indexes()
        after = advanced.as_indexes()
        # 周杰伦 is untouched by the delta: same result-tuple objects
        assert after[0]["周杰伦"] is before[0]["周杰伦"]
        assert after[1]["周杰伦#0"] is before[1]["周杰伦#0"]

    def test_key_filter_restricts_application(self):
        old, new = base_taxonomy(), evolved_taxonomy()
        delta = TaxonomyDelta.compute(old, new)
        advanced = old.freeze().apply_delta(
            delta, key_filter=lambda key: key == "王菲"
        )
        assert advanced.men2ent("王菲") == ["王菲#0"]
        assert advanced.men2ent("苹果") == ["苹果#1"]  # filtered out, kept


class TestPersistence:
    def test_round_trip(self, tmp_path):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        path = tmp_path / "delta.jsonl"
        save_delta(delta, path)
        loaded = load_delta(path)
        assert loaded == delta

    def test_round_trip_preserves_unicode(self, tmp_path):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        path = tmp_path / "delta.jsonl"
        Taxonomy.save_delta(delta, path)
        raw = path.read_text(encoding="utf-8")
        assert "王菲" in raw  # ensure_ascii=False: human-readable deltas
        assert Taxonomy.load_delta(path) == delta

    def test_applying_a_loaded_delta_reproduces_target(self, tmp_path):
        old, new = base_taxonomy(), evolved_taxonomy()
        path = tmp_path / "delta.jsonl"
        save_delta(TaxonomyDelta.compute(old, new), path)
        old.apply_delta(load_delta(path))
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        old.save(a)
        new.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_missing_file(self, tmp_path):
        with pytest.raises(TaxonomyError):
            load_delta(tmp_path / "nope.jsonl")

    def test_future_format_version_is_refused(self, tmp_path):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        path = tmp_path / "delta.jsonl"
        save_delta(delta, path)
        lines = path.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        header["format_version"] = DELTA_FORMAT_VERSION + 7
        lines[0] = json.dumps(header, ensure_ascii=False)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(TaxonomyError, match="format_version"):
            load_delta(path)

    def test_non_delta_file_is_refused(self, tmp_path):
        taxonomy_path = tmp_path / "t.jsonl"
        base_taxonomy().save(taxonomy_path)
        with pytest.raises(TaxonomyError):
            load_delta(taxonomy_path)

    def test_headerless_file_is_refused(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(TaxonomyError, match="header"):
            load_delta(path)


class TestTouchedServingKeys:
    def test_rescore_only_delta_touches_nothing(self):
        old = base_taxonomy()
        new = base_taxonomy()
        new.add_relation(IsARelation("刘德华#0", "歌手", "tag", score=3.0))
        delta = TaxonomyDelta.compute(old, new)
        assert delta.relations_changed
        assert list(delta.touched_serving_keys()) == []

    def test_structural_delta_touches_both_endpoints(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        touched = set(delta.touched_serving_keys())
        assert {"王菲", "王菲#0", "歌手", "苹果", "苹果#1", "公司"} <= touched
        # concept-layer edge (女歌手→歌手) is not a serving key
        assert "女歌手" not in touched


class TestKindFlip:
    """A (hyponym, hypernym) pair whose hyponym_kind flips between
    builds moves between the serving indexes: the delta must carry it
    as remove + add, never as an index-neutral 'changed' pair."""

    def _old(self):
        t = Taxonomy()
        t.add_entity(Entity("刘德华#0", "刘德华"))
        t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
        t.add_relation(
            IsARelation("天王", "演员", "tag", hyponym_kind="concept")
        )
        return t

    def _new(self):
        t = Taxonomy()
        t.add_entity(Entity("刘德华#0", "刘德华"))
        t.add_entity(Entity("天王", "天王"))
        t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
        t.add_relation(IsARelation("天王", "演员", "tag"))  # now an entity
        return t

    def test_flip_is_remove_plus_add(self):
        delta = TaxonomyDelta.compute(self._old(), self._new())
        assert not delta.relations_changed
        (removed,) = delta.relations_removed
        (added,) = delta.relations_added
        assert removed.key == added.key == ("天王", "演员")
        assert removed.hyponym_kind == "concept"
        assert added.hyponym_kind == "entity"
        assert "天王" in set(delta.touched_serving_keys())

    def test_flip_round_trips_through_every_apply_path(self, tmp_path):
        old, new = self._old(), self._new()
        delta = TaxonomyDelta.compute(old, new)

        frozen = old.freeze().apply_delta(delta)
        reference = new.freeze()
        assert frozen.get_concepts("天王") == reference.get_concepts("天王")
        assert frozen.get_entities("演员") == reference.get_entities("演员")

        old.apply_delta(delta)
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        old.save(a)
        new.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_flip_publishes_through_the_sharded_store(self):
        from repro.serving.sharding import ShardedSnapshotStore

        delta = TaxonomyDelta.compute(self._old(), self._new())
        store = ShardedSnapshotStore(self._old(), n_shards=2)
        store.publish_delta(delta)
        reference = ShardedSnapshotStore(self._new(), n_shards=2)
        for key in ("天王", "演员", "刘德华#0", "刘德华"):
            assert store.men2ent(key) == reference.men2ent(key)
            assert store.get_concepts(key) == reference.get_concepts(key)
            assert store.get_entities(key) == reference.get_entities(key)


def third_taxonomy() -> Taxonomy:
    """evolved_taxonomy() mutated again: night 3 of the chain."""
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))  # alias back
    t.add_entity(Entity("王菲#0", "王菲"))
    t.add_entity(Entity("苹果#1", "苹果"))  # returns after a night away
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag", score=3.0))
    t.add_relation(IsARelation("王菲#0", "歌手", "tag"))
    t.add_relation(IsARelation("苹果#1", "水果", "tag"))
    t.add_relation(IsARelation("女歌手", "歌手", "tag", hyponym_kind="concept"))
    return t


def nightly_chain() -> tuple[Taxonomy, list]:
    """The canonical three-night chain the compose tests walk."""
    states = [base_taxonomy(), evolved_taxonomy(), third_taxonomy()]
    deltas = [
        TaxonomyDelta.compute(states[i], states[i + 1])
        for i in range(len(states) - 1)
    ]
    return states[0], deltas


class TestCompose:
    def test_composed_chain_is_byte_identical_to_one_by_one(self, tmp_path):
        base, deltas = nightly_chain()
        squashed = compose(deltas)

        one_by_one = base_taxonomy()
        for delta in deltas:
            one_by_one.apply_delta(delta)
        base.apply_delta(squashed)

        composed_path = tmp_path / "composed.jsonl"
        chained_path = tmp_path / "chained.jsonl"
        cold_path = tmp_path / "cold.jsonl"
        base.save(composed_path)
        one_by_one.save(chained_path)
        third_taxonomy().save(cold_path)
        assert composed_path.read_bytes() == chained_path.read_bytes()
        assert composed_path.read_bytes() == cold_path.read_bytes()

    def test_matches_direct_compute(self):
        _, deltas = nightly_chain()
        squashed = compose(deltas)
        direct = TaxonomyDelta.compute(base_taxonomy(), third_taxonomy())
        assert squashed.summary() == direct.summary()
        assert list(squashed.records()) == list(direct.records())

    def test_add_then_remove_cancels(self):
        _, deltas = nightly_chain()
        # 王菲#0 was added night 1; remove her again night 2'
        gone = third_taxonomy()
        gone_delta = TaxonomyDelta.compute(evolved_taxonomy(), gone)
        squashed = compose([deltas[0], gone_delta])
        added_ids = {e.page_id for e in squashed.entities_added}
        removed_ids = {e.page_id for e in squashed.entities_removed}
        # 苹果#1 was removed night 1 and re-added identically night 2:
        # net nothing on either side
        assert "苹果#1" not in added_ids | removed_ids

    def test_change_of_change_collapses_to_first_old_last_new(self):
        _, deltas = nightly_chain()
        squashed = compose(deltas)
        changed = {
            old.key: (old, new) for old, new in squashed.relations_changed
        }
        old, new = changed[("刘德华#0", "歌手")]
        assert old.score == 1.0  # night 0 state, not night 1's 2.0
        assert new.score == 3.0  # night 2 state

    def test_single_delta_chain_is_itself(self):
        _, deltas = nightly_chain()
        squashed = compose(deltas[:1])
        assert list(squashed.records()) == list(deltas[0].records())

    def test_empty_chain_is_refused(self):
        with pytest.raises(TaxonomyError, match="at least one"):
            compose([])

    def test_unchained_deltas_are_refused(self):
        _, deltas = nightly_chain()
        with pytest.raises(TaxonomyError, match="do not chain"):
            compose([deltas[1], deltas[0]])  # wrong order

    def test_net_kind_flip_is_remove_plus_add(self):
        def entity_world():
            t = Taxonomy()
            t.add_entity(Entity("刘德华#0", "刘德华"))
            t.add_entity(Entity("天王", "天王"))
            t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
            t.add_relation(IsARelation("天王", "演员", "tag"))
            return t

        def concept_world():
            t = Taxonomy()
            t.add_entity(Entity("刘德华#0", "刘德华"))
            t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
            t.add_relation(
                IsARelation("天王", "演员", "tag", hyponym_kind="concept")
            )
            return t

        def rescored_entity_world():
            t = entity_world()
            t.add_relation(IsARelation("天王", "演员", "tag", score=2.0))
            return t

        d1 = TaxonomyDelta.compute(concept_world(), entity_world())
        d2 = TaxonomyDelta.compute(entity_world(), rescored_entity_world())
        squashed = compose([d1, d2])
        assert not any(
            old.key == ("天王", "演员")
            for old, new in squashed.relations_changed
        )
        flipped_removed = [
            r for r in squashed.relations_removed if r.key == ("天王", "演员")
        ]
        flipped_added = [
            r for r in squashed.relations_added if r.key == ("天王", "演员")
        ]
        assert flipped_removed[0].hyponym_kind == "concept"
        assert flipped_added[0].hyponym_kind == "entity"
        assert flipped_added[0].score == 2.0

        applied = concept_world().apply_delta(squashed)
        reference = rescored_entity_world()
        assert applied.get_entities("演员") == reference.get_entities("演员")

    def test_headline_numbers_come_from_the_last_delta(self):
        _, deltas = nightly_chain()
        squashed = compose(deltas)
        assert squashed.new_stats == deltas[-1].new_stats
        assert squashed.new_n_relations == deltas[-1].new_n_relations
        assert squashed.name == deltas[-1].name


class TestWireRoundTrip:
    def test_to_wire_from_wire_is_identity(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        rebuilt = TaxonomyDelta.from_wire(delta.to_wire())
        assert rebuilt == delta

    def test_wire_payload_is_json_serializable(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        payload = json.loads(json.dumps(delta.to_wire(), ensure_ascii=False))
        assert TaxonomyDelta.from_wire(payload) == delta

    def test_wire_payload_matches_file_persistence(self, tmp_path):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        path = tmp_path / "delta.jsonl"
        save_delta(delta, path)
        assert load_delta(path) == TaxonomyDelta.from_wire(delta.to_wire())

    def test_non_object_payload_is_refused(self):
        with pytest.raises(TaxonomyError, match="JSON object"):
            TaxonomyDelta.from_wire(["not", "a", "dict"])

    def test_missing_records_is_refused(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        payload = delta.to_wire()
        del payload["records"]
        with pytest.raises(TaxonomyError, match="records"):
            TaxonomyDelta.from_wire(payload)

    def test_unknown_record_kind_is_refused(self):
        delta = TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())
        payload = delta.to_wire()
        payload["records"].append({"kind": "entity_rename"})
        with pytest.raises(TaxonomyError, match="unknown delta record kind"):
            TaxonomyDelta.from_wire(payload)


class TestSlice:
    def _delta(self):
        return TaxonomyDelta.compute(base_taxonomy(), evolved_taxonomy())

    def test_keep_everything_is_identity_up_to_rescores(self):
        delta = self._delta()
        sliced = delta.slice(lambda key: True)
        assert sliced.entities_added == delta.entities_added
        assert sliced.entities_removed == delta.entities_removed
        assert sliced.entities_changed == delta.entities_changed
        # entity-kind structural records survive; concept-layer ones
        # (no serving keys) are dropped
        assert all(
            r.hyponym_kind == "entity"
            for r in sliced.relations_added + sliced.relations_removed
        )
        # rescores touch no serving index and never ship
        assert sliced.relations_changed == ()

    def test_keep_nothing_is_empty(self):
        assert self._delta().slice(lambda key: False).is_empty

    def test_slices_partition_the_serving_records(self):
        from repro.serving.sharding import shard_for

        delta = self._delta()
        n_shards = 4
        slices = [
            delta.slice(
                lambda key, s=s: shard_for(key, n_shards) == s
            )
            for s in range(n_shards)
        ]
        # every entity-kind structural record lands in >= 1 slice, and
        # a record appears in a slice iff one of its keys hashes there
        for relation in delta.relations_added + delta.relations_removed:
            if relation.hyponym_kind != "entity":
                continue
            owners = {
                shard_for(relation.hyponym, n_shards),
                shard_for(relation.hypernym, n_shards),
            }
            for s, sliced in enumerate(slices):
                held = relation in (
                    sliced.relations_added + sliced.relations_removed
                )
                assert held == (s in owners)

    def test_sliced_headline_numbers_are_cleared(self):
        sliced = self._delta().slice(lambda key: True)
        assert sliced.new_stats is None
        assert sliced.new_n_relations == 0


class TestMalformedHeaders:
    """Missing/garbage format_version raise the store's format error."""

    def _write(self, tmp_path, header: dict) -> str:
        path = tmp_path / "delta.jsonl"
        path.write_text(
            json.dumps({"kind": "header", **header}, ensure_ascii=False)
            + "\n",
            encoding="utf-8",
        )
        return str(path)

    def test_missing_format_version_is_refused(self, tmp_path):
        path = self._write(tmp_path, {"format": "taxonomy-delta"})
        with pytest.raises(TaxonomyError, match="missing format_version"):
            load_delta(path)

    def test_garbage_format_version_is_refused(self, tmp_path):
        for garbage in ("two", 0, -3, True, 1.5):
            path = self._write(
                tmp_path,
                {"format": "taxonomy-delta", "format_version": garbage},
            )
            with pytest.raises(TaxonomyError, match="malformed format_version"):
                load_delta(path)

    def test_wire_header_is_checked_too(self):
        with pytest.raises(TaxonomyError, match="missing format_version"):
            TaxonomyDelta.from_wire(
                {"format": "taxonomy-delta", "records": []}
            )
        with pytest.raises(TaxonomyError, match="malformed format_version"):
            TaxonomyDelta.from_wire({
                "format": "taxonomy-delta",
                "format_version": "garbage",
                "records": [],
            })

    def test_malformed_stats_header_is_refused(self, tmp_path):
        path = self._write(tmp_path, {
            "format": "taxonomy-delta",
            "format_version": DELTA_FORMAT_VERSION,
            "new_stats": {"entities": 1},  # missing the other counts
        })
        with pytest.raises(TaxonomyError, match="malformed new_stats"):
            load_delta(path)


class TestDeltaHistory:
    def _delta(self, n: int) -> TaxonomyDelta:
        return TaxonomyDelta(name=f"delta-{n}")

    def test_chain_walks_contiguous_lineage(self):
        history = DeltaHistory()
        for version in (2, 3, 4):
            history.record(version - 1, version, self._delta(version))
        chain = history.chain(1, 4)
        assert [d.name for d in chain] == ["delta-2", "delta-3", "delta-4"]
        assert history.chain(2, 4) is not None
        assert history.chain(3, 4) is not None

    def test_same_version_is_the_empty_chain(self):
        history = DeltaHistory()
        assert history.chain(5, 5) == []

    def test_uncovered_span_is_none(self):
        history = DeltaHistory()
        history.record(2, 3, self._delta(3))
        assert history.chain(1, 3) is None  # start evicted / never seen
        assert history.chain(3, 5) is None  # end beyond the ring

    def test_lineage_gap_breaks_the_chain(self):
        history = DeltaHistory()
        history.record(1, 2, self._delta(2))
        # a full swap produced v3 with no history entry
        history.record(3, 4, self._delta(4))
        assert history.chain(1, 4) is None
        assert history.chain(3, 4) is not None

    def test_ring_is_bounded(self):
        history = DeltaHistory(maxlen=2)
        for version in (2, 3, 4):
            history.record(version - 1, version, self._delta(version))
        assert len(history) == 2
        assert history.versions() == [3, 4]
        assert history.chain(1, 4) is None  # the oldest hop was evicted
        assert [d.name for d in history.chain(2, 4)] == [
            "delta-3", "delta-4",
        ]
