"""Tests for the serving APIs and workload generator."""

import pytest

from repro.errors import APIError
from repro.taxonomy.api import (
    PAPER_API_MIX,
    TaxonomyAPI,
    WorkloadGenerator,
)
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


@pytest.fixture
def taxonomy():
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_entity(Entity("周杰伦#0", "周杰伦"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
    t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
    return t


@pytest.fixture
def api(taxonomy):
    return TaxonomyAPI(taxonomy)


class TestAPIs:
    def test_men2ent(self, api):
        assert api.men2ent("华仔") == ["刘德华#0"]

    def test_get_concept(self, api):
        assert api.get_concept("刘德华#0") == ["歌手", "演员"]

    def test_get_entity(self, api):
        assert api.get_entity("歌手") == ["刘德华#0", "周杰伦#0"]

    def test_empty_arguments_rejected(self, api):
        with pytest.raises(APIError):
            api.men2ent("")
        with pytest.raises(APIError):
            api.get_concept("")
        with pytest.raises(APIError):
            api.get_entity("")

    def test_usage_counting(self, api):
        api.men2ent("华仔")
        api.men2ent("无人")
        api.get_concept("刘德华#0")
        assert api.usage.calls["men2ent"] == 2
        assert api.usage.hits["men2ent"] == 1
        assert api.usage.total_calls == 3
        assert api.usage.hit_rate("men2ent") == 0.5

    def test_reset_usage(self, api):
        api.men2ent("华仔")
        api.reset_usage()
        assert api.usage.total_calls == 0

    def test_mix(self, api):
        api.men2ent("华仔")
        api.get_entity("歌手")
        mix = api.usage.mix()
        assert mix["men2ent"] == 0.5
        assert mix["getEntity"] == 0.5

    def test_empty_mix(self, api):
        assert api.usage.mix()["men2ent"] == 0.0


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestWorkload:
    """The deprecated shim: same streams as before, now counted misses."""

    def test_paper_mix_sums_to_one(self):
        assert sum(PAPER_API_MIX.values()) == pytest.approx(1.0)

    def test_men2ent_dominates_paper_mix(self):
        assert PAPER_API_MIX["men2ent"] > PAPER_API_MIX["getEntity"]
        assert PAPER_API_MIX["getEntity"] > PAPER_API_MIX["getConcept"]

    def test_shim_emits_deprecation_warning(self, taxonomy):
        with pytest.warns(DeprecationWarning, match="repro.workloads"):
            WorkloadGenerator(taxonomy, seed=1)

    def test_generated_mix_matches_paper(self, taxonomy, api):
        generator = WorkloadGenerator(taxonomy, seed=1)
        usage = generator.run(api, 4000)
        mix = usage.mix()
        for name, expected in PAPER_API_MIX.items():
            assert mix[name] == pytest.approx(expected, abs=0.03)

    def test_hit_rate_high_for_low_miss(self, taxonomy, api):
        generator = WorkloadGenerator(taxonomy, seed=2, miss_rate=0.0)
        usage = generator.run(api, 500)
        for name in usage.calls:
            if usage.calls[name]:
                assert usage.hit_rate(name) == 1.0
        assert usage.total_unknown == 0

    def test_deterministic(self, taxonomy):
        a = WorkloadGenerator(taxonomy, seed=3).generate(100)
        b = WorkloadGenerator(taxonomy, seed=3).generate(100)
        assert a == b

    def test_same_stream_as_new_package(self, taxonomy):
        """The shim IS TableIICallStream: same seed, same stream."""
        from repro.workloads import ArgumentPools, TableIICallStream

        shim = WorkloadGenerator(taxonomy, seed=9).generate(200)
        stream = TableIICallStream(
            ArgumentPools.from_taxonomy(taxonomy), seed=9
        ).generate(200)
        assert [(c.api, c.argument, c.expected_miss) for c in shim] == \
            [(c.api, c.argument, c.expected_miss) for c in stream]

    def test_same_stream_as_legacy_algorithm(self, taxonomy):
        """RNG consumption matches the historical generator bit for bit."""
        import random

        pools = {
            "men2ent": sorted(
                m for e in ("刘德华#0", "周杰伦#0")
                for m in taxonomy.entity(e).mentions
            ),
            "getConcept": ["刘德华#0", "周杰伦#0"],
            "getEntity": ["歌手", "演员"],
        }
        rng = random.Random(7)
        apis = list(PAPER_API_MIX)
        weights = [PAPER_API_MIX[a] for a in apis]
        legacy = []
        for _ in range(300):
            api_name = rng.choices(apis, weights=weights)[0]
            if rng.random() < 0.05:
                argument = "未知词" + str(rng.randint(0, 10_000))
            else:
                argument = rng.choice(pools[api_name])
            legacy.append((api_name, argument))
        shim = WorkloadGenerator(taxonomy, seed=7).generate(300)
        assert [(c.api, c.argument) for c in shim] == legacy

    def test_empty_pool_yields_counted_unknown(self):
        """The old silent-"空" path: now a seeded, ledger-counted miss."""
        empty = Taxonomy()
        calls = WorkloadGenerator(empty, seed=6, miss_rate=0.0).generate(80)
        assert all(call.expected_miss for call in calls)
        assert all(call.argument != "空" for call in calls)
        assert len({call.argument for call in calls}) > 1  # seeded, varied
        target = TaxonomyAPI(empty)
        usage = WorkloadGenerator(empty, seed=6).run(target, 80)
        assert usage.total_calls == 80
        assert usage.total_unknown == 80

    def test_intended_misses_counted_in_ledger(self, taxonomy, api):
        generator = WorkloadGenerator(taxonomy, seed=8, miss_rate=0.5)
        usage = generator.run(api, 400)
        assert 100 < usage.total_unknown < 300  # ~half the stream
        for name, count in usage.unknown.items():
            assert count <= usage.calls[name]

    def test_invalid_miss_rate(self, taxonomy):
        with pytest.raises(APIError):
            WorkloadGenerator(taxonomy, miss_rate=1.5)

    def test_invalid_mix(self, taxonomy):
        with pytest.raises(APIError):
            WorkloadGenerator(taxonomy, mix={"men2ent": 0.5, "getConcept": 0.2,
                                             "getEntity": 0.2})

    def test_invalid_call_count(self, taxonomy, api):
        with pytest.raises(APIError):
            WorkloadGenerator(taxonomy).run(api, 0)
