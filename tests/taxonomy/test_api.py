"""Tests for the serving APIs and workload generator."""

import pytest

from repro.errors import APIError
from repro.taxonomy.api import (
    PAPER_API_MIX,
    TaxonomyAPI,
    WorkloadGenerator,
)
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


@pytest.fixture
def taxonomy():
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_entity(Entity("周杰伦#0", "周杰伦"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
    t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
    return t


@pytest.fixture
def api(taxonomy):
    return TaxonomyAPI(taxonomy)


class TestAPIs:
    def test_men2ent(self, api):
        assert api.men2ent("华仔") == ["刘德华#0"]

    def test_get_concept(self, api):
        assert api.get_concept("刘德华#0") == ["歌手", "演员"]

    def test_get_entity(self, api):
        assert api.get_entity("歌手") == ["刘德华#0", "周杰伦#0"]

    def test_empty_arguments_rejected(self, api):
        with pytest.raises(APIError):
            api.men2ent("")
        with pytest.raises(APIError):
            api.get_concept("")
        with pytest.raises(APIError):
            api.get_entity("")

    def test_usage_counting(self, api):
        api.men2ent("华仔")
        api.men2ent("无人")
        api.get_concept("刘德华#0")
        assert api.usage.calls["men2ent"] == 2
        assert api.usage.hits["men2ent"] == 1
        assert api.usage.total_calls == 3
        assert api.usage.hit_rate("men2ent") == 0.5

    def test_reset_usage(self, api):
        api.men2ent("华仔")
        api.reset_usage()
        assert api.usage.total_calls == 0

    def test_mix(self, api):
        api.men2ent("华仔")
        api.get_entity("歌手")
        mix = api.usage.mix()
        assert mix["men2ent"] == 0.5
        assert mix["getEntity"] == 0.5

    def test_empty_mix(self, api):
        assert api.usage.mix()["men2ent"] == 0.0


class TestWorkload:
    def test_paper_mix_sums_to_one(self):
        assert sum(PAPER_API_MIX.values()) == pytest.approx(1.0)

    def test_men2ent_dominates_paper_mix(self):
        assert PAPER_API_MIX["men2ent"] > PAPER_API_MIX["getEntity"]
        assert PAPER_API_MIX["getEntity"] > PAPER_API_MIX["getConcept"]

    def test_generated_mix_matches_paper(self, taxonomy, api):
        generator = WorkloadGenerator(taxonomy, seed=1)
        usage = generator.run(api, 4000)
        mix = usage.mix()
        for name, expected in PAPER_API_MIX.items():
            assert mix[name] == pytest.approx(expected, abs=0.03)

    def test_hit_rate_high_for_low_miss(self, taxonomy, api):
        generator = WorkloadGenerator(taxonomy, seed=2, miss_rate=0.0)
        usage = generator.run(api, 500)
        for name in usage.calls:
            if usage.calls[name]:
                assert usage.hit_rate(name) == 1.0

    def test_deterministic(self, taxonomy):
        a = WorkloadGenerator(taxonomy, seed=3).generate(100)
        b = WorkloadGenerator(taxonomy, seed=3).generate(100)
        assert a == b

    def test_invalid_miss_rate(self, taxonomy):
        with pytest.raises(APIError):
            WorkloadGenerator(taxonomy, miss_rate=1.5)

    def test_invalid_mix(self, taxonomy):
        with pytest.raises(APIError):
            WorkloadGenerator(taxonomy, mix={"men2ent": 0.5, "getConcept": 0.2,
                                             "getEntity": 0.2})

    def test_invalid_call_count(self, taxonomy, api):
        with pytest.raises(APIError):
            WorkloadGenerator(taxonomy).run(api, 0)
