"""Tests for taxonomy records and the concept graph."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TaxonomyError
from repro.taxonomy.graph import TaxonomyGraph
from repro.taxonomy.model import Entity, IsARelation


class TestEntity:
    def test_mentions_include_aliases(self):
        e = Entity(page_id="刘德华#0", name="刘德华", aliases=("华仔",))
        assert e.mentions == ("刘德华", "华仔")

    def test_empty_page_id_rejected(self):
        with pytest.raises(TaxonomyError):
            Entity(page_id="", name="x")

    def test_empty_name_rejected(self):
        with pytest.raises(TaxonomyError):
            Entity(page_id="x#0", name="")


class TestIsARelation:
    def test_key_ignores_provenance(self):
        a = IsARelation("刘德华#0", "歌手", "tag")
        b = IsARelation("刘德华#0", "歌手", "bracket")
        assert a.key == b.key

    def test_empty_sides_rejected(self):
        with pytest.raises(TaxonomyError):
            IsARelation("", "歌手", "tag")
        with pytest.raises(TaxonomyError):
            IsARelation("刘德华#0", "", "tag")

    def test_unknown_kind_rejected(self):
        with pytest.raises(TaxonomyError):
            IsARelation("a", "b", "tag", hyponym_kind="weird")

    def test_unknown_source_rejected(self):
        with pytest.raises(TaxonomyError):
            IsARelation("a", "b", "guesswork")

    def test_with_source(self):
        r = IsARelation("a", "b", "tag").with_source("bracket")
        assert r.source == "bracket"
        assert r.key == ("a", "b")


class TestGraphBasics:
    @pytest.fixture
    def graph(self):
        g = TaxonomyGraph()
        g.add_edge("男演员", "演员")
        g.add_edge("演员", "艺人")
        g.add_edge("艺人", "人物")
        g.add_edge("歌手", "艺人")
        return g

    def test_parents_children(self, graph):
        assert graph.parents("男演员") == {"演员"}
        assert graph.children("艺人") == {"演员", "歌手"}

    def test_ancestors(self, graph):
        assert graph.ancestors("男演员") == {"演员", "艺人", "人物"}

    def test_descendants(self, graph):
        assert graph.descendants("人物") == {"艺人", "演员", "歌手", "男演员"}

    def test_depth(self, graph):
        assert graph.depth("男演员") == 3
        assert graph.depth("人物") == 0

    def test_has_edge(self, graph):
        assert graph.has_edge("演员", "艺人")
        assert not graph.has_edge("艺人", "演员")

    def test_edge_count(self, graph):
        assert graph.edge_count() == 4

    def test_remove_edge(self, graph):
        graph.remove_edge("男演员", "演员")
        assert not graph.has_edge("男演员", "演员")
        assert graph.ancestors("男演员") == frozenset()

    def test_self_loop_rejected(self, graph):
        with pytest.raises(TaxonomyError):
            graph.add_edge("演员", "演员")

    def test_empty_endpoint_rejected(self, graph):
        with pytest.raises(TaxonomyError):
            graph.add_edge("", "演员")

    def test_duplicate_edge_keeps_max_score(self, graph):
        graph.add_edge("男演员", "演员", score=0.2)
        graph.add_edge("男演员", "演员", score=0.9)
        assert graph.edge_count() == 4


class TestCycles:
    def test_dag_has_no_cycle(self):
        g = TaxonomyGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert g.is_dag()
        assert g.find_cycle() is None

    def test_cycle_found(self):
        g = TaxonomyGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        cycle = g.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b", "c"}

    def test_break_cycles_removes_lowest_score(self):
        g = TaxonomyGraph()
        g.add_edge("a", "b", score=0.9)
        g.add_edge("b", "c", score=0.8)
        g.add_edge("c", "a", score=0.1)
        removed = g.break_cycles()
        assert removed == [("c", "a")]
        assert g.is_dag()

    def test_break_cycles_noop_on_dag(self):
        g = TaxonomyGraph()
        g.add_edge("a", "b")
        assert g.break_cycles() == []

    def test_ancestors_terminate_despite_cycle(self):
        g = TaxonomyGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        assert g.ancestors("a") == {"b"}

    def test_two_node_cycle_broken_deterministically(self):
        g = TaxonomyGraph()
        g.add_edge("a", "b", score=0.5)
        g.add_edge("b", "a", score=0.5)
        assert g.break_cycles() == [("a", "b")]


@given(
    st.lists(
        st.tuples(
            st.sampled_from("abcdefg"), st.sampled_from("abcdefg")
        ).filter(lambda e: e[0] != e[1]),
        max_size=25,
    )
)
def test_break_cycles_always_yields_dag(edges):
    g = TaxonomyGraph()
    for child, parent in edges:
        g.add_edge(child, parent)
    g.break_cycles()
    assert g.is_dag()


@given(
    st.lists(
        st.tuples(
            st.sampled_from("abcdefgh"), st.sampled_from("abcdefgh")
        ).filter(lambda e: e[0] != e[1]),
        max_size=25,
    )
)
def test_ancestors_never_contain_self(edges):
    g = TaxonomyGraph()
    for child, parent in edges:
        g.add_edge(child, parent)
    for node in g.nodes:
        assert node not in g.ancestors(node)
