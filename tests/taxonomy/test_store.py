"""Tests for the taxonomy store and persistence."""

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


@pytest.fixture
def taxonomy():
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_entity(Entity("苹果#0", "苹果"))
    t.add_entity(Entity("苹果#1", "苹果"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
    t.add_relation(IsARelation("苹果#0", "水果", "tag"))
    t.add_relation(IsARelation("苹果#1", "公司", "tag"))
    t.add_relation(
        IsARelation("男演员", "演员", "tag", hyponym_kind="concept")
    )
    t.add_relation(
        IsARelation("演员", "艺人", "tag", hyponym_kind="concept")
    )
    return t


class TestMentions:
    def test_men2ent_by_name(self, taxonomy):
        assert taxonomy.men2ent("刘德华") == ["刘德华#0"]

    def test_men2ent_by_alias(self, taxonomy):
        assert taxonomy.men2ent("华仔") == ["刘德华#0"]

    def test_men2ent_ambiguous(self, taxonomy):
        assert taxonomy.men2ent("苹果") == ["苹果#0", "苹果#1"]

    def test_men2ent_unknown(self, taxonomy):
        assert taxonomy.men2ent("不存在") == []


class TestRelations:
    def test_get_concepts(self, taxonomy):
        assert taxonomy.get_concepts("刘德华#0") == ["歌手", "演员"]

    def test_get_concepts_transitive(self, taxonomy):
        assert "艺人" in taxonomy.get_concepts_transitive("刘德华#0")

    def test_get_entities(self, taxonomy):
        assert taxonomy.get_entities("演员") == ["刘德华#0"]

    def test_get_subconcepts(self, taxonomy):
        assert taxonomy.get_subconcepts("演员") == ["男演员"]

    def test_concept_parents(self, taxonomy):
        assert taxonomy.concept_parents("演员") == ["艺人"]

    def test_relation_requires_known_entity(self, taxonomy):
        with pytest.raises(TaxonomyError):
            taxonomy.add_relation(IsARelation("鬼#0", "妖怪", "tag"))

    def test_concept_relation_needs_no_entity(self, taxonomy):
        taxonomy.add_relation(
            IsARelation("女演员", "演员", "tag", hyponym_kind="concept")
        )
        assert "女演员" in taxonomy.get_subconcepts("演员")

    def test_duplicate_keeps_first_source_best_score(self, taxonomy):
        taxonomy.add_relation(IsARelation("刘德华#0", "演员", "tag", score=2.0))
        rel = next(
            r for r in taxonomy.relations()
            if r.key == ("刘德华#0", "演员")
        )
        assert rel.source == "bracket"
        assert rel.score == 2.0

    def test_len_and_contains(self, taxonomy):
        assert len(taxonomy) == 6
        assert ("刘德华#0", "演员") in taxonomy
        assert ("刘德华#0", "公司") not in taxonomy

    def test_relations_by_source(self, taxonomy):
        assert len(taxonomy.relations_by_source("bracket")) == 1

    def test_conflicting_entity_rejected(self, taxonomy):
        with pytest.raises(TaxonomyError):
            taxonomy.add_entity(Entity("刘德华#0", "刘德华", aliases=()))

    def test_idempotent_entity_add(self, taxonomy):
        taxonomy.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
        assert taxonomy.men2ent("刘德华") == ["刘德华#0"]


class TestStats:
    def test_counts(self, taxonomy):
        stats = taxonomy.stats()
        assert stats.n_entities == 3
        assert stats.n_entity_concept == 4
        assert stats.n_subconcept_concept == 2
        assert stats.n_isa_total == 6
        # 演员 歌手 水果 公司 男演员 艺人
        assert stats.n_concepts == 6

    def test_as_dict(self, taxonomy):
        d = taxonomy.stats().as_dict()
        assert d["isa_relations_total"] == 6


class TestFinalize:
    def test_cycle_removed_from_relations(self):
        t = Taxonomy()
        t.add_relation(IsARelation("a", "b", "tag", "concept", score=0.9))
        t.add_relation(IsARelation("b", "a", "tag", "concept", score=0.1))
        removed = t.finalize()
        assert removed == [("b", "a")]
        assert ("b", "a") not in t
        assert ("a", "b") in t


class TestPersistence:
    def test_round_trip(self, taxonomy, tmp_path):
        path = tmp_path / "taxonomy.jsonl"
        taxonomy.save(path)
        loaded = Taxonomy.load(path)
        assert loaded.stats() == taxonomy.stats()
        assert loaded.men2ent("华仔") == ["刘德华#0"]
        assert loaded.get_concepts("刘德华#0") == ["歌手", "演员"]
        assert loaded.name == taxonomy.name

    def test_load_missing(self, tmp_path):
        with pytest.raises(TaxonomyError):
            Taxonomy.load(tmp_path / "nope.jsonl")

    def test_load_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("nope\n", encoding="utf-8")
        with pytest.raises(TaxonomyError):
            Taxonomy.load(path)

    def test_load_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n', encoding="utf-8")
        with pytest.raises(TaxonomyError):
            Taxonomy.load(path)
