"""Tests for the versioned serving facade (repro.taxonomy.service)."""

import pytest

from repro.errors import APIError, WorkloadError
from repro.taxonomy.api import APIUsage
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.service import APILatency, TaxonomyService
from repro.taxonomy.store import Taxonomy
from repro.workloads import ArgumentPools, TableIICallStream, replay_calls


@pytest.fixture
def taxonomy():
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_entity(Entity("周杰伦#0", "周杰伦"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
    t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
    return t


@pytest.fixture
def rebuilt():
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_relation(IsARelation("刘德华#0", "导演", "bracket"))
    return t


@pytest.fixture
def service(taxonomy):
    return TaxonomyService(taxonomy)


class TestSingleCalls:
    def test_delegates_to_api(self, service):
        assert service.men2ent("华仔") == ["刘德华#0"]
        assert service.get_concepts("刘德华#0") == ["歌手", "演员"]
        assert service.get_entities("歌手") == ["刘德华#0", "周杰伦#0"]

    def test_metrics_accounting(self, service):
        service.men2ent("华仔")
        service.men2ent("无人")
        service.get_entities("歌手")
        metrics = service.metrics
        assert metrics.total_calls == 3
        latency = metrics.latency("men2ent")
        assert latency.calls == 2 and latency.hits == 1
        assert latency.hit_rate == 0.5
        assert 0.0 <= latency.mean_seconds <= latency.max_seconds
        assert metrics.as_dict()["men2ent"]["calls"] == 2

    def test_empty_argument_rejected_and_not_counted(self, service):
        with pytest.raises(APIError):
            service.men2ent("")
        assert service.metrics.total_calls == 0

    def test_snapshot_usage_still_kept(self, service):
        service.men2ent("华仔")
        assert service.snapshot.api.usage.calls["men2ent"] == 1


class TestBatchedCalls:
    def test_men2ent_batch_positional(self, service):
        assert service.men2ent_batch(["华仔", "无人", "周杰伦"]) == [
            ["刘德华#0"], [], ["周杰伦#0"],
        ]
        assert service.metrics.latency("men2ent").calls == 3
        assert service.metrics.latency("men2ent").hits == 2

    def test_get_concepts_batch(self, service):
        assert service.get_concepts_batch(["刘德华#0", "周杰伦#0"]) == [
            ["歌手", "演员"], ["歌手"],
        ]

    def test_get_entities_batch(self, service):
        assert service.get_entities_batch(["歌手", "导演"]) == [
            ["刘德华#0", "周杰伦#0"], [],
        ]

    def test_single_string_rejected(self, service):
        with pytest.raises(APIError, match="sequence"):
            service.men2ent_batch("华仔")


class TestSnapshots:
    def test_initial_version(self, service):
        assert service.version_id == "v1"
        assert service.snapshot.version == 1
        assert service.snapshot.stats().n_isa_total == 3

    def test_swap_bumps_version_atomically(self, service, rebuilt):
        old = service.snapshot
        snapshot = service.swap(rebuilt)
        assert snapshot.version == 2 and service.version_id == "v2"
        assert service.metrics.swaps == 1
        # new snapshot serves the rebuild, pinned old snapshot unchanged
        assert service.get_concepts("刘德华#0") == ["导演"]
        assert old.taxonomy.get_concepts("刘德华#0") == ["歌手", "演员"]

    def test_metrics_survive_swap(self, service, rebuilt):
        service.men2ent("华仔")
        service.swap(rebuilt)
        service.men2ent("华仔")
        assert service.metrics.latency("men2ent").calls == 2
        # per-snapshot ledger restarted with the new version
        assert service.snapshot.api.usage.calls["men2ent"] == 1


class TestUsageValidation:
    def test_unknown_api_raises_with_known_list(self):
        usage = APIUsage()
        with pytest.raises(APIError, match="getConcept, getEntity, men2ent"):
            usage.record("bogus", True)

    def test_known_api_still_counts(self):
        usage = APIUsage()
        usage.record("men2ent", True)
        assert usage.calls["men2ent"] == 1


class TestLatencyQuantiles:
    def test_known_distribution(self):
        latency = APILatency()
        for ms in range(1, 101):  # 1ms..100ms, uniform
            latency.observe(ms / 1000.0, hit=True)
        assert latency.p50_seconds == pytest.approx(0.050)
        assert latency.p95_seconds == pytest.approx(0.095)
        assert latency.p99_seconds == pytest.approx(0.099)
        assert latency.quantile(1.0) == pytest.approx(0.100)

    def test_empty_reads_zero(self):
        latency = APILatency()
        assert latency.p50_seconds == 0.0
        assert latency.p99_seconds == 0.0

    def test_single_sample(self):
        latency = APILatency()
        latency.observe(0.25, hit=False)
        assert latency.p50_seconds == 0.25
        assert latency.p99_seconds == 0.25

    def test_invalid_quantile_rejected(self):
        latency = APILatency()
        with pytest.raises(APIError):
            latency.quantile(0.0)
        with pytest.raises(APIError):
            latency.quantile(1.5)

    def test_reservoir_is_bounded_and_recent(self):
        from repro.taxonomy.service import LATENCY_RESERVOIR_SIZE

        latency = APILatency()
        for _ in range(LATENCY_RESERVOIR_SIZE):
            latency.observe(10.0, hit=True)  # ancient slow era
        for _ in range(LATENCY_RESERVOIR_SIZE):
            latency.observe(0.001, hit=True)  # recent fast era
        # quantiles reflect the recent window; max stays historical
        assert latency.p99_seconds == pytest.approx(0.001)
        assert latency.max_seconds == 10.0
        assert latency.calls == 2 * LATENCY_RESERVOIR_SIZE

    def test_as_dict_surfaces_tail_latency(self, service):
        service.men2ent("华仔")
        entry = service.metrics.as_dict()["men2ent"]
        for key in ("p50_seconds", "p95_seconds", "p99_seconds"):
            assert key in entry
            assert 0.0 <= entry[key] <= entry["max_seconds"]


class TestCanonicalNaming:
    """get_concepts/get_entities singles + *_batch, with deprecated aliases."""

    def test_canonical_singles(self, service):
        assert service.get_concepts("刘德华#0") == ["歌手", "演员"]
        assert service.get_entities("歌手") == ["刘德华#0", "周杰伦#0"]

    def test_canonical_batches(self, service):
        assert service.get_concepts_batch(["刘德华#0", "周杰伦#0"]) == [
            ["歌手", "演员"], ["歌手"],
        ]
        assert service.get_entities_batch(["歌手", "导演"]) == [
            ["刘德华#0", "周杰伦#0"], [],
        ]

    def test_deprecated_single_aliases_warn_and_delegate(self, service):
        with pytest.deprecated_call():
            assert service.get_concept("刘德华#0") == \
                service.get_concepts("刘德华#0")
        with pytest.deprecated_call():
            assert service.get_entity("歌手") == service.get_entities("歌手")

    def test_deprecated_batch_spelling_warns_and_delegates(self, service):
        with pytest.deprecated_call():
            assert service.get_concepts(["刘德华#0"]) == \
                service.get_concepts_batch(["刘德华#0"])
        with pytest.deprecated_call():
            assert service.get_entities(["歌手"]) == \
                service.get_entities_batch(["歌手"])

    def test_canonical_batch_rejects_single_string(self, service):
        with pytest.raises(APIError, match="sequence"):
            service.get_concepts_batch("刘德华#0")
        with pytest.raises(APIError, match="sequence"):
            service.get_entities_batch("歌手")

    def test_batch_rejects_empty_member_upfront(self, service):
        with pytest.raises(APIError, match="non-empty"):
            service.men2ent_batch(["华仔", ""])
        # all-or-nothing validation: nothing was served or counted
        assert service.metrics.total_calls == 0


class TestWorkloadThroughService:
    def _stream(self, taxonomy, **kwargs):
        return TableIICallStream(
            ArgumentPools.from_taxonomy(taxonomy), **kwargs
        )

    def test_replay_singles(self, taxonomy, service):
        calls = self._stream(taxonomy, seed=4).generate(400)
        metrics = replay_calls(service, calls)
        assert metrics is service.metrics
        assert metrics.total_calls == 400

    def test_replay_batched(self, taxonomy, service):
        calls = self._stream(taxonomy, seed=5, miss_rate=0.0).generate(501)
        metrics = replay_calls(service, calls, batch_size=7)
        assert metrics.total_calls == 501
        for name in ("men2ent", "getConcept", "getEntity"):
            latency = metrics.latency(name)
            if latency.calls:
                assert latency.hit_rate == 1.0

    def test_invalid_batch_size(self, taxonomy, service):
        calls = self._stream(taxonomy).generate(10)
        with pytest.raises(WorkloadError):
            replay_calls(service, calls, batch_size=0)


class TestPublishDelta:
    """Incremental publishes keep every snapshot guarantee of swap()."""

    def _delta(self, base, target):
        from repro.taxonomy.delta import TaxonomyDelta

        return TaxonomyDelta.compute(base, target)

    def _target(self):
        t = Taxonomy()
        t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
        t.add_entity(Entity("周杰伦#0", "周杰伦"))
        t.add_entity(Entity("王菲#0", "王菲"))
        t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
        t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
        t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
        t.add_relation(IsARelation("王菲#0", "歌手", "tag"))
        return t

    def test_publishes_new_version_with_delta_content(self, taxonomy):
        service = TaxonomyService(taxonomy)
        delta = self._delta(taxonomy, self._target())
        snapshot = service.publish_delta(delta)
        assert snapshot.version_id == "v2"
        assert service.men2ent("王菲") == ["王菲#0"]
        assert service.get_entities("歌手") == \
            TaxonomyService(self._target()).get_entities("歌手")
        assert service.metrics.swaps == 1
        assert snapshot.stats() == self._target().stats()

    def test_pinned_snapshot_taxonomy_is_never_mutated(self, taxonomy):
        service = TaxonomyService(taxonomy)
        pinned = service.snapshot
        service.publish_delta(self._delta(taxonomy, self._target()))
        # the old snapshot's taxonomy object kept its v1 content
        assert pinned.taxonomy.men2ent("王菲") == []
        assert len(pinned.taxonomy) == 3
        assert pinned.read_view.men2ent("王菲") == []
        # and the new snapshot owns an independent store
        assert service.snapshot.taxonomy is not pinned.taxonomy

    def test_failed_publish_leaves_service_untouched_and_retryable(
        self, taxonomy
    ):
        from repro.errors import DeltaConflictError

        service = TaxonomyService(taxonomy)
        wrong_base = Taxonomy()
        wrong_base.add_entity(Entity("谁#0", "谁"))
        wrong_base.add_relation(IsARelation("谁#0", "何物", "tag"))
        bad_delta = self._delta(wrong_base, self._target())
        # the stamped base hash arms the handshake, so the wrong base
        # surfaces as a clean conflict before any structural check
        with pytest.raises(DeltaConflictError):
            service.publish_delta(bad_delta)
        assert service.version_id == "v1"
        assert service.metrics.swaps == 0
        assert len(service.snapshot.taxonomy) == 3  # base untouched
        # a correct delta still applies afterwards
        service.publish_delta(self._delta(taxonomy, self._target()))
        assert service.version_id == "v2"
        assert service.men2ent("王菲") == ["王菲#0"]

    def test_taxonomy_copy_is_independent(self, taxonomy):
        duplicate = taxonomy.copy()
        assert duplicate.stats() == taxonomy.stats()
        duplicate.add_entity(Entity("新#0", "新"))
        duplicate.add_relation(IsARelation("新#0", "人物", "tag"))
        assert not taxonomy.has_entity("新#0")
        assert taxonomy.men2ent("新") == []
        assert duplicate.men2ent("新") == ["新#0"]

    def test_headline_numbers_survive_a_statless_delta(self, taxonomy):
        """A hand-built delta without new_stats/new_n_relations must not
        zero the published snapshot's headline numbers."""
        from repro.taxonomy.delta import TaxonomyDelta

        target = self._target()
        computed = self._delta(taxonomy, target)
        bare = TaxonomyDelta(
            name=computed.name,
            entities_added=computed.entities_added,
            relations_added=computed.relations_added,
        )
        service = TaxonomyService(taxonomy)
        snapshot = service.publish_delta(bare)
        assert len(snapshot.read_view) == len(target)
        assert snapshot.stats() == target.stats()


class TestMetricsSerializability:
    """Regressions: an idle or barely-used ledger must never raise."""

    def test_as_dict_is_json_serializable_when_never_called(self):
        import json

        from repro.taxonomy.service import ServiceMetrics

        metrics = ServiceMetrics()
        assert metrics.as_dict() == {}
        assert json.loads(json.dumps(metrics.as_dict())) == {}
        assert metrics.total_calls == 0

    def test_as_dict_after_single_call_is_serializable(self, service):
        import json

        service.men2ent("华仔")  # exactly one sample in the reservoir
        payload = json.loads(json.dumps(service.metrics.as_dict()))
        entry = payload["men2ent"]
        assert entry["calls"] == 1
        assert entry["p50_seconds"] == entry["p99_seconds"]
        assert entry["p99_seconds"] <= entry["max_seconds"]

    def test_latency_for_unknown_api_reads_zero(self):
        from repro.taxonomy.service import ServiceMetrics

        entry = ServiceMetrics().latency("never-called")
        assert entry.calls == 0
        assert entry.mean_seconds == 0.0
        assert entry.hit_rate == 0.0
        assert entry.p50_seconds == 0.0
        assert entry.max_seconds == 0.0

    def test_zero_arg_quantiles_is_empty_tuple(self):
        assert APILatency().quantiles() == ()

    def test_extreme_quantiles_on_single_sample(self):
        latency = APILatency()
        latency.observe(0.5, hit=True)
        assert latency.quantile(0.0001) == 0.5
        assert latency.quantile(1.0) == 0.5


class TestServiceDeltaHistory:
    """publish_delta keeps a bounded lineage ring for chain catch-up."""

    def _delta(self, base, target):
        from repro.taxonomy.delta import TaxonomyDelta

        return TaxonomyDelta.compute(base, target)

    def _plus_entity(self, base, n):
        target = base.copy()
        target.add_entity(Entity(f"新星{n}#0", f"新星{n}"))
        target.add_relation(IsARelation(f"新星{n}#0", "歌手", "tag"))
        return target

    def test_history_records_lineage(self, taxonomy):
        service = TaxonomyService(taxonomy)
        v2 = self._plus_entity(taxonomy, 1)
        v3 = self._plus_entity(v2, 2)
        d1 = self._delta(taxonomy, v2)
        d2 = self._delta(v2, v3)
        service.publish_delta(d1)
        service.publish_delta(d2)
        assert service.version_lineage() == ["v2", "v3"]
        assert service.delta_history.chain(1, 3) == [d1, d2]

    def test_swap_breaks_the_chain(self, taxonomy, rebuilt):
        service = TaxonomyService(taxonomy)
        v2 = self._plus_entity(taxonomy, 1)
        service.publish_delta(self._delta(taxonomy, v2))
        service.swap(rebuilt)  # v3, no history entry
        v4 = self._plus_entity(rebuilt, 2)
        service.publish_delta(self._delta(rebuilt, v4))
        assert service.version_lineage() == ["v2", "v4"]
        assert service.delta_history.chain(1, 4) is None
        assert service.delta_history.chain(3, 4) is not None

    def test_explicit_version_stamps_the_snapshot(self, taxonomy, rebuilt):
        service = TaxonomyService(taxonomy)
        snapshot = service.swap(rebuilt, version=7)
        assert snapshot.version_id == "v7"
        assert service.version_id == "v7"
        v8 = self._plus_entity(rebuilt, 1)
        published = service.publish_delta(
            self._delta(rebuilt, v8), version=12
        )
        assert published.version_id == "v12"
        assert service.delta_history.chain(7, 12) is not None

    def test_stale_explicit_version_is_refused(self, taxonomy, rebuilt):
        from repro.errors import TaxonomyError

        service = TaxonomyService(taxonomy, version=5)
        with pytest.raises(TaxonomyError, match="must be newer"):
            service.swap(rebuilt, version=5)
        assert service.version_id == "v5"
