"""The checker framework itself: findings, pragmas, baselines, runs."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisReport,
    Baseline,
    Checker,
    Finding,
    ModuleIndex,
    ParsedModule,
    all_checkers,
    run_analysis,
)
from repro.errors import AnalysisError, ReproError


def write_tree(tmp_path: Path, files: dict) -> Path:
    root = tmp_path / "pkg"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return root


class StubChecker:
    """Flags every module-level assignment to a name in *bad_names*."""

    id = "stub"
    description = "flag configured names"

    def __init__(self, bad_names=("evil",)):
        self.bad_names = set(bad_names)

    def check(self, module):
        import ast

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name) and node.id in self.bad_names:
                yield module.finding(
                    self.id, node, f"use of {node.id}", symbol=node.id
                )


class TestFinding:
    def test_ordering_is_file_order(self):
        findings = sorted([
            Finding("b.py", 1, "x", "m"),
            Finding("a.py", 9, "x", "m"),
            Finding("a.py", 2, "z", "m"),
            Finding("a.py", 2, "a", "m"),
        ])
        assert [(f.path, f.line, f.checker) for f in findings] == [
            ("a.py", 2, "a"), ("a.py", 2, "z"),
            ("a.py", 9, "x"), ("b.py", 1, "x"),
        ]

    def test_dict_round_trip(self):
        finding = Finding("serving/router.py", 17, "lock-discipline",
                          "bare read", symbol="Router._pick")
        assert Finding.from_dict(finding.as_dict()) == finding

    def test_round_trip_survives_json(self):
        finding = Finding("a.py", 3, "determinism", "import time — no")
        payload = json.loads(json.dumps(finding.as_dict()))
        assert Finding.from_dict(payload) == finding

    def test_from_dict_rejects_junk(self):
        with pytest.raises(AnalysisError):
            Finding.from_dict({"path": "a.py"})
        with pytest.raises(AnalysisError):
            Finding.from_dict({"path": "a.py", "line": "not-a-number",
                               "checker": "x", "message": "m"})

    def test_key_excludes_line_but_not_symbol(self):
        a = Finding("a.py", 3, "x", "m", symbol="f")
        b = Finding("a.py", 99, "x", "m", symbol="f")
        c = Finding("a.py", 3, "x", "m", symbol="g")
        assert a.key == b.key
        assert a.key != c.key

    def test_analysis_error_is_a_repro_error(self):
        # the CLI maps ReproError to exit 2; driver mistakes must ride it
        assert issubclass(AnalysisError, ReproError)


class TestModuleIndex:
    def test_scan_keys_on_package_relative_paths(self, tmp_path):
        root = write_tree(tmp_path, {
            "top.py": "x = 1\n",
            "sub/mod.py": "y = 2\n",
        })
        index = ModuleIndex.scan(root)
        assert {m.rel for m in index.modules} == {"top.py", "sub/mod.py"}
        assert index.packages() == [".", "sub"]
        assert index.module("sub/mod.py").rel == "sub/mod.py"

    def test_scan_rejects_missing_root(self, tmp_path):
        with pytest.raises(AnalysisError):
            ModuleIndex.scan(tmp_path / "nope")

    def test_unknown_module_lookup_raises(self, tmp_path):
        index = ModuleIndex.scan(write_tree(tmp_path, {"a.py": "x = 1\n"}))
        with pytest.raises(AnalysisError):
            index.module("b.py")

    def test_syntax_error_is_an_analysis_error(self, tmp_path):
        root = write_tree(tmp_path, {"bad.py": "def broken(:\n"})
        with pytest.raises(AnalysisError):
            ModuleIndex.scan(root)

    def test_shipped_checkers_satisfy_the_protocol(self):
        for checker in all_checkers():
            assert isinstance(checker, Checker)


class TestPragmas:
    def test_reasoned_pragma_suppresses(self, tmp_path):
        root = write_tree(tmp_path, {
            "a.py": "evil = 1  # lint: allow[stub] a test needs this name\n",
        })
        report = run_analysis(ModuleIndex.scan(root), [StubChecker()])
        assert report.ok
        assert len(report.pragma_suppressed) == 1

    def test_pragma_on_the_line_above_counts(self, tmp_path):
        root = write_tree(tmp_path, {
            "a.py": "# lint: allow[stub] next line is fine\nevil = 1\n",
        })
        report = run_analysis(ModuleIndex.scan(root), [StubChecker()])
        assert report.ok

    def test_bare_pragma_suppresses_nothing_and_is_reported(self, tmp_path):
        root = write_tree(tmp_path, {
            "a.py": "evil = 1  # lint: allow[stub]\n",
        })
        report = run_analysis(ModuleIndex.scan(root), [StubChecker()])
        checkers = {finding.checker for finding in report.findings}
        assert checkers == {"stub", "pragma"}

    def test_pragma_for_another_checker_does_not_apply(self, tmp_path):
        root = write_tree(tmp_path, {
            "a.py": "evil = 1  # lint: allow[other] wrong id\n",
        })
        report = run_analysis(ModuleIndex.scan(root), [StubChecker()])
        assert [f.checker for f in report.findings] == ["stub"]


class TestBaseline:
    def make_report(self, tmp_path, baseline=None) -> AnalysisReport:
        root = write_tree(tmp_path, {
            "a.py": "evil = 1\n",
            "b.py": "evil = 2\nwicked = 3\n",
        })
        checker = StubChecker(bad_names=("evil", "wicked"))
        return run_analysis(
            ModuleIndex.scan(root), [checker], baseline=baseline
        )

    def test_baseline_suppresses_exactly_its_keys(self, tmp_path):
        first = self.make_report(tmp_path)
        assert len(first.findings) == 3
        # grandfather only the 'evil' findings; same name in two files
        # is two distinct keys (path is part of the key)
        baseline = Baseline.from_findings(
            [f for f in first.findings if f.symbol == "evil"],
            reason="pre-existing",
        )
        second = self.make_report(tmp_path, baseline=baseline)
        assert [f.symbol for f in second.findings] == ["wicked"]
        assert sorted(f.symbol for f in second.baselined) == ["evil", "evil"]

    def test_save_load_round_trip(self, tmp_path):
        first = self.make_report(tmp_path)
        baseline = Baseline.from_findings(first.findings, reason="debt")
        target = tmp_path / "baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        assert loaded.entries == baseline.entries
        assert self.make_report(tmp_path, baseline=loaded).ok

    def test_malformed_baselines_raise(self, tmp_path):
        target = tmp_path / "bad.json"
        with pytest.raises(AnalysisError):
            Baseline.load(target)  # missing
        target.write_text("not json", encoding="utf-8")
        with pytest.raises(AnalysisError):
            Baseline.load(target)
        target.write_text('["a list"]', encoding="utf-8")
        with pytest.raises(AnalysisError):
            Baseline.load(target)
        target.write_text(
            '{"format_version": 99, "entries": []}', encoding="utf-8"
        )
        with pytest.raises(AnalysisError):
            Baseline.load(target)
        target.write_text(
            '{"format_version": 1, "entries": [{"reason": "no key"}]}',
            encoding="utf-8",
        )
        with pytest.raises(AnalysisError):
            Baseline.load(target)


class TestRunAnalysis:
    def test_duplicate_checker_ids_rejected(self, tmp_path):
        root = write_tree(tmp_path, {"a.py": "x = 1\n"})
        with pytest.raises(AnalysisError):
            run_analysis(ModuleIndex.scan(root),
                         [StubChecker(), StubChecker()])

    def test_report_counts_and_json_shape(self, tmp_path):
        root = write_tree(tmp_path, {
            "a.py": "evil = 1\n"
                    "wicked = 2  # lint: allow[stub] fixture needs it\n",
        })
        baseline = Baseline({
            Finding("a.py", 1, "stub", "use of evil", symbol="evil").key:
                "grandfathered",
        })
        report = run_analysis(
            ModuleIndex.scan(root),
            [StubChecker(bad_names=("evil", "wicked"))],
            baseline=baseline,
        )
        payload = report.as_dict()
        assert payload["modules_scanned"] == 1
        assert payload["findings_new"] == 0
        assert payload["findings_baselined"] == 1
        assert payload["findings_allowed"] == 1
        assert payload["findings_total"] == 2
        assert payload["checkers"]["stub"] == {
            "found": 2, "baselined": 1, "allowed": 1, "new": 0,
        }
        assert report.ok
        assert "0 new finding(s)" in report.render_text()
