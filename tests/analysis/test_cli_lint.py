"""`cn-probase lint` end to end: exit codes, formats, baselines, bench."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def violating_tree(tmp_path):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "jittery.py").write_text(
        "import random\n\n\ndef jitter():\n    return random.random()\n",
        encoding="utf-8",
    )
    (root / "clean.py").write_text(
        "from random import Random\n\nrng = Random(7)\n", encoding="utf-8"
    )
    return root


def test_shipped_tree_is_clean(capsys):
    # the acceptance bar: all five checkers over the installed package,
    # exit 0 — pragmas and the shipped baseline account for everything
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 new finding(s)" in out


def test_shipped_tree_json_reports_all_five_checkers(capsys):
    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings_new"] == 0
    assert set(payload["checkers"]) >= {
        "determinism", "lock-discipline", "pickle-safety",
        "error-taxonomy", "deprecation",
    }
    assert payload["modules_scanned"] > 50


def test_synthetic_violation_fails(violating_tree, capsys):
    assert main(["lint", "--path", str(violating_tree)]) == 1
    out = capsys.readouterr().out
    assert "jittery.py" in out
    assert "unseeded global RNG" in out


def test_json_format_lists_finding_sites(violating_tree, capsys):
    assert main(["lint", "--path", str(violating_tree),
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings_new"] == 1
    (finding,) = payload["findings"]
    assert finding["path"] == "jittery.py"
    assert finding["checker"] == "determinism"


def test_select_limits_the_checkers(violating_tree, capsys):
    assert main(["lint", "--path", str(violating_tree),
                 "--select", "lock-discipline,pickle-safety"]) == 0
    assert main(["lint", "--select", "nonsense"]) == 2
    assert "unknown checker id" in capsys.readouterr().err


def test_write_baseline_then_baseline_suppresses(violating_tree, tmp_path,
                                                 capsys):
    baseline = tmp_path / "grandfathered.json"
    assert main(["lint", "--path", str(violating_tree),
                 "--write-baseline", str(baseline)]) == 1
    capsys.readouterr()
    assert main(["lint", "--path", str(violating_tree),
                 "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # a fresh violation is NOT hidden by the old baseline
    (violating_tree / "clean.py").write_text(
        "import random\nx = random.choice([1])\n", encoding="utf-8"
    )
    assert main(["lint", "--path", str(violating_tree),
                 "--baseline", str(baseline)]) == 1


def test_no_baseline_reports_grandfathered_debt(capsys):
    # the shipped tree carries baselined debt; --no-baseline exposes it
    assert main(["lint", "--no-baseline"]) == 1
    assert "error-taxonomy" in capsys.readouterr().out


def test_broken_baseline_is_a_driver_error(violating_tree, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{", encoding="utf-8")
    assert main(["lint", "--path", str(violating_tree),
                 "--baseline", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_bench_json_lands_static_analysis_section(violating_tree, tmp_path,
                                                  capsys):
    bench = tmp_path / "BENCH.json"
    bench.write_text('{"other": {"kept": true}}', encoding="utf-8")
    assert main(["lint", "--path", str(violating_tree),
                 "--bench-json", str(bench)]) == 1
    capsys.readouterr()
    data = json.loads(bench.read_text(encoding="utf-8"))
    assert data["other"] == {"kept": True}  # merged, not clobbered
    section = data["static_analysis"]
    assert section["findings_new"] == 1
    assert section["checkers"]["determinism"]["new"] == 1
    assert "findings" not in section  # the trajectory tracks counts
