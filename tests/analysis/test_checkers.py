"""Per-checker positive/negative fixtures (tmp_path-written modules)."""

from pathlib import Path

import pytest

from repro.analysis import (
    DeprecationChecker,
    DeterminismChecker,
    ErrorTaxonomyChecker,
    LockDisciplineChecker,
    ParsedModule,
    PickleSafetyChecker,
)


def check(checker, source: str, rel: str = "pkg/mod.py") -> list[str]:
    module = ParsedModule(Path(rel), rel, source)
    return [finding.message for finding in checker.check(module)]


class TestDeterminism:
    def test_flags_the_classic_traps(self):
        messages = check(DeterminismChecker(clock_exempt={}), (
            "import random\n"
            "from random import randint\n"
            "import uuid\n"
            "def f(now=uuid.uuid4()):\n"
            "    return random.random()\n"
        ))
        joined = "\n".join(messages)
        assert "randint" in joined
        assert "import uuid" in joined
        assert "default argument" in joined
        assert "unseeded global RNG" in joined

    def test_seeded_random_is_fine(self):
        assert check(DeterminismChecker(clock_exempt={}), (
            "from random import Random\n"
            "rng = Random(7)\n"
        )) == []

    def test_exemption_is_path_scoped_and_clock_only(self):
        exempt = {"pkg/mod.py": "test"}
        source = "import time\nimport random\nx = random.random()\n"
        exempted = check(DeterminismChecker(clock_exempt=exempt), source)
        assert not any("import time" in m for m in exempted)
        assert any("unseeded global RNG" in m for m in exempted)
        # same filename at a different package path: no exemption
        other = check(DeterminismChecker(clock_exempt=exempt), source,
                      rel="other/mod.py")
        assert any("import time" in m for m in other)


LOCKED_CLASS = """\
import threading

class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {{}}

    def put(self, key, value):
        with self._lock:
            self._items[key] = value

    def peek(self, key):
        {peek_body}
"""


class TestLockDiscipline:
    def test_flags_bare_access_to_guarded_attribute(self):
        messages = check(
            LockDisciplineChecker(),
            LOCKED_CLASS.format(peek_body="return self._items.get(key)"),
        )
        assert len(messages) == 1
        assert "Store.peek reads self._items" in messages[0]

    def test_locked_access_everywhere_is_clean(self):
        source = LOCKED_CLASS.format(
            peek_body="with self._lock:\n            "
                      "return self._items.get(key)"
        )
        assert check(LockDisciplineChecker(), source) == []

    def test_init_is_construction_not_a_race(self):
        # __init__'s bare writes never flag (object unpublished); a
        # guarded attr mutated bare in a normal method does
        source = LOCKED_CLASS.format(peek_body="self._items = {}")
        messages = check(LockDisciplineChecker(), source)
        assert len(messages) == 1
        assert "Store.peek mutates self._items" in messages[0]

    def test_unguarded_attributes_do_not_flag(self):
        # a class with a lock whose attribute is never written under it
        # (e.g. a plain counter) stays out of scope
        assert check(LockDisciplineChecker(), (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.hits = 0\n"
            "    def bump(self):\n"
            "        self.hits += 1\n"
        )) == []

    def test_classes_without_locks_are_ignored(self):
        assert check(LockDisciplineChecker(), (
            "class C:\n"
            "    def set(self, v):\n"
            "        self.value = v\n"
        )) == []

    def test_with_granted_lock_attribute_counts_as_a_lock(self):
        # an injected lock (never constructed in the class) still
        # establishes discipline when used as `with self._lock:`
        messages = check(LockDisciplineChecker(), (
            "class Child:\n"
            "    def __init__(self, lock):\n"
            "        self._lock = lock\n"
            "        self._n = 0\n"
            "    def inc(self):\n"
            "        with self._lock:\n"
            "            self._n += 1\n"
            "    def read(self):\n"
            "        return self._n\n"
        ))
        assert len(messages) == 1
        assert "Child.read reads self._n" in messages[0]


class TestPickleSafety:
    def test_flags_lambda_submitted_to_run(self):
        messages = check(PickleSafetyChecker(), (
            "def build(executor):\n"
            "    return executor.run(lambda x: x + 1, [1, 2])\n"
        ))
        assert len(messages) == 1
        assert "lambda" in messages[0]

    def test_flags_nested_def_submitted(self):
        messages = check(PickleSafetyChecker(), (
            "def build(pool, items):\n"
            "    def work(item):\n"
            "        return item * 2\n"
            "    return pool.submit(work, items)\n"
        ))
        assert len(messages) == 1
        assert "nested function 'work'" in messages[0]

    def test_module_level_function_is_fine(self):
        assert check(PickleSafetyChecker(), (
            "def work(item):\n"
            "    return item * 2\n"
            "def build(pool, items):\n"
            "    return pool.submit(work, items)\n"
        )) == []

    def test_flags_closure_stored_on_worker_context(self):
        messages = check(PickleSafetyChecker(), (
            "def prepare(dump):\n"
            "    return WorkerContext(resources=lambda: dump)\n"
        ))
        assert len(messages) == 1
        assert "WorkerContext" in messages[0]

    def test_worker_context_must_stay_frozen(self):
        messages = check(PickleSafetyChecker(), (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class WorkerContext:\n"
            "    seed: int = 0\n"
        ))
        assert len(messages) == 1
        assert "frozen=True" in messages[0]
        assert check(PickleSafetyChecker(), (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class WorkerContext:\n"
            "    seed: int = 0\n"
        )) == []


class TestErrorTaxonomy:
    def test_flags_bare_raise_in_public_function(self):
        messages = check(ErrorTaxonomyChecker(), (
            "def lookup(table, key):\n"
            "    raise KeyError(key)\n"
        ))
        assert len(messages) == 1
        assert "lookup raises bare KeyError" in messages[0]

    def test_private_helpers_and_dunders_are_exempt(self):
        assert check(ErrorTaxonomyChecker(), (
            "def _parse(raw):\n"
            "    raise ValueError(raw)\n"
            "class Thing:\n"
            "    def __init__(self, n):\n"
            "        if n < 0:\n"
            "            raise ValueError(n)\n"
            "class _Hidden:\n"
            "    def act(self):\n"
            "        raise RuntimeError('internal')\n"
        )) == []

    def test_repro_errors_and_reraise_pass(self):
        assert check(ErrorTaxonomyChecker(), (
            "from repro.errors import TaxonomyError\n"
            "def lookup(table, key):\n"
            "    try:\n"
            "        return table[key]\n"
            "    except KeyError:\n"
            "        raise TaxonomyError(key)\n"
            "def retry():\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:\n"
            "        raise\n"
        )) == []

    def test_module_level_raise_is_out_of_scope(self):
        assert check(ErrorTaxonomyChecker(), (
            "import sys\n"
            "if sys.version_info < (3, 9):\n"
            "    raise RuntimeError('needs 3.9')\n"
        )) == []


class TestDeprecation:
    def test_flags_workload_generator_import(self):
        messages = check(DeprecationChecker(), (
            "from repro.taxonomy import WorkloadGenerator\n"
        ))
        assert len(messages) == 1
        assert "WorkloadGenerator" in messages[0]

    def test_flags_deprecated_alias_calls_only(self):
        messages = check(DeprecationChecker(), (
            "def drive(api, name):\n"
            "    api.get_concept(name)\n"
            "    handler = api.get_concept\n"
        ))
        # the call flags; the bare attribute reference (dispatch table)
        # does not
        assert len(messages) == 1
        assert ".get_concept()" in messages[0]

    def test_canonical_accessors_pass(self):
        assert check(DeprecationChecker(), (
            "def drive(api, name):\n"
            "    api.concept_of(name)\n"
            "    api.entities_of(name)\n"
        )) == []

    def test_shim_modules_are_exempt_by_path(self):
        source = "def drive(api, n):\n    return api.get_concept(n)\n"
        assert check(DeprecationChecker(), source,
                     rel="taxonomy/api.py") == []
        assert len(check(DeprecationChecker(), source,
                         rel="serving/router.py")) == 1
