"""Open-loop runner: lateness, errors, actions, the mixed-version audit."""

import time

import pytest

from repro.errors import WorkloadError
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy
from repro.workloads import (
    ArgumentPools,
    Schedule,
    ScheduledCall,
    TableIICallStream,
    TimedAction,
    VersionAuditor,
    replay_calls,
    run_schedule,
)


class FakeFront:
    """A BatchedServingAPI-shaped front with injectable delay and faults."""

    def __init__(self, delay_s: float = 0.0, poison: str | None = None):
        self.delay_s = delay_s
        self.poison = poison
        self.calls = 0

    def _serve(self, argument: str) -> list[str]:
        self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.poison is not None and argument == self.poison:
            raise RuntimeError(f"poisoned argument {argument!r}")
        return [argument]

    def men2ent(self, argument):
        return self._serve(argument)

    def get_concepts(self, argument):
        return self._serve(argument)

    def get_entities(self, argument):
        return self._serve(argument)

    def men2ent_batch(self, arguments):
        return [self._serve(a) for a in arguments]

    def get_concepts_batch(self, arguments):
        return [self._serve(a) for a in arguments]

    def get_entities_batch(self, arguments):
        return [self._serve(a) for a in arguments]


def make_schedule(n_events: int = 6, *, at_s: float = 0.0,
                  batch: int = 1) -> Schedule:
    calls = tuple(
        ScheduledCall(
            index=i,
            at_s=at_s * (i + 1) if at_s else 0.0,
            api="men2ent",
            tenant="default",
            args=tuple(f"词{i}_{j}" for j in range(batch)),
            expected_misses=(False,) * batch,
        )
        for i in range(n_events)
    )
    return Schedule(scenario="fake", seed=0, calls=calls)


class TestRunSchedule:
    def test_every_call_served_and_counted(self):
        front = FakeFront()
        report = run_schedule(front, make_schedule(10), target_name="fake")
        assert report.n_events == 10
        assert report.n_calls == 10
        assert report.n_errors == 0
        assert front.calls == 10
        assert report.per_api["men2ent"].calls == 10
        assert report.hit_rate == 1.0

    def test_lateness_is_reported_never_absorbed(self):
        # All events scheduled at t=0 through one worker with a 5ms
        # front: events queue behind each other, so their dispatch
        # lateness MUST show up in the ledger rather than being
        # swallowed (the closed-loop co-ordinated-omission trap).
        front = FakeFront(delay_s=0.005)
        report = run_schedule(
            front, make_schedule(6), target_name="fake", workers=1
        )
        assert report.lateness.calls == report.n_events  # one obs per event
        assert report.lateness.max_seconds >= 0.015  # queued >= 3 events deep

    def test_errors_are_counted_not_raised(self):
        front = FakeFront(poison="词3_0")
        report = run_schedule(front, make_schedule(6), target_name="fake")
        assert report.n_errors == 1
        assert report.error_rate == pytest.approx(1 / 6)
        assert any("词3_0" in sample or "men2ent#3" in sample
                   for sample in report.error_samples)
        # the errored event still observed lateness
        assert report.lateness.calls == report.n_events

    def test_actions_fire_and_report_errors(self):
        front = FakeFront()
        fired = []
        actions = [
            TimedAction(at_s=0.0, label="ok", action=lambda: fired.append(1)),
            TimedAction(at_s=0.0, label="boom",
                        action=lambda: (_ for _ in ()).throw(
                            RuntimeError("publish failed"))),
        ]
        report = run_schedule(
            front, make_schedule(4), target_name="fake", actions=actions
        )
        assert fired == [1]
        by_label = {action.label: action for action in report.actions}
        assert by_label["ok"].error is None
        assert by_label["ok"].fired_at_s is not None
        assert "publish failed" in by_label["boom"].error
        assert report.n_errors == 0  # action faults never pollute call errors

    def test_time_scale_compresses_wall_clock(self):
        front = FakeFront()
        schedule = make_schedule(5, at_s=0.08)  # last event at 0.4s
        started = time.perf_counter()
        run_schedule(front, schedule, target_name="fake", time_scale=8.0)
        assert time.perf_counter() - started < 0.4

    def test_rejects_bad_arguments(self):
        front = FakeFront()
        with pytest.raises(WorkloadError, match="workers"):
            run_schedule(front, make_schedule(2), workers=0)
        with pytest.raises(WorkloadError, match="time_scale"):
            run_schedule(front, make_schedule(2), time_scale=0.0)
        with pytest.raises(WorkloadError, match="no calls"):
            run_schedule(front, Schedule("fake", 0, ()))


class TestVersionAuditor:
    def _views(self):
        v1, v2 = Taxonomy(), Taxonomy()
        for taxonomy, concept in ((v1, "歌手"), (v2, "导演")):
            taxonomy.add_entity(Entity("刘德华#0", "刘德华"))
            taxonomy.add_relation(IsARelation("刘德华#0", concept, "tag"))
        return v1.freeze(), v2.freeze()

    def _call(self):
        return ScheduledCall(
            index=0, at_s=0.0, api="getConcept", tenant="default",
            args=("刘德华#0", "刘德华#0"), expected_misses=(False, False),
        )

    def test_single_version_batches_match(self):
        view1, view2 = self._views()
        auditor = VersionAuditor([("v1", view1), ("v2", view2)])
        auditor.check(self._call(), [["歌手"], ["歌手"]])
        auditor.check(self._call(), [["导演"], ["导演"]])
        assert auditor.as_dict() == {
            "matched": {"v1": 1, "v2": 1},
            "mixed_answers": 0,
            "mixed_samples": [],
        }

    def test_torn_batch_is_mixed(self):
        view1, view2 = self._views()
        auditor = VersionAuditor([("v1", view1), ("v2", view2)])
        auditor.check(self._call(), [["歌手"], ["导演"]])  # spans versions
        result = auditor.as_dict()
        assert result["mixed_answers"] == 1
        assert result["matched"] == {"v1": 0, "v2": 0}
        assert result["mixed_samples"][0]["api"] == "getConcept"

    def test_needs_at_least_one_version(self):
        with pytest.raises(WorkloadError):
            VersionAuditor([])


class TestReplayCalls:
    def _taxonomy(self):
        t = Taxonomy()
        t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
        t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
        return t

    def test_replays_singles_and_batches(self):
        taxonomy = self._taxonomy()
        stream = TableIICallStream(ArgumentPools.from_taxonomy(taxonomy))
        front = FakeFront()
        replay_calls(front, stream.generate(40))
        assert front.calls == 40
        front = FakeFront()
        replay_calls(front, stream.generate(41), batch_size=8)
        assert front.calls == 41  # trailing partial batches flush

    def test_batch_size_validated(self):
        with pytest.raises(WorkloadError, match="batch_size"):
            replay_calls(FakeFront(), [], batch_size=0)

    def test_returns_metrics_when_present(self):
        class Ledgered(FakeFront):
            metrics = "the-ledger"

        assert replay_calls(Ledgered(), []) == "the-ledger"
        assert replay_calls(FakeFront(), []) is None
