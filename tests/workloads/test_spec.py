"""Tests for the frozen, JSON-round-trippable scenario specs."""

import json

import pytest

from repro.encyclopedia import diff_dumps
from repro.errors import WorkloadError
from repro.workloads import (
    ArrivalSpec,
    KeyPopularity,
    Scenario,
    TrafficSpec,
    WorldSpec,
)


class TestKeyPopularity:
    def test_defaults(self):
        assert KeyPopularity().kind == "uniform"

    def test_unknown_kind(self):
        with pytest.raises(WorkloadError, match="uniform|zipf"):
            KeyPopularity(kind="pareto")

    def test_zipf_exponent_must_be_positive(self):
        with pytest.raises(WorkloadError, match="zipf_exponent"):
            KeyPopularity(kind="zipf", zipf_exponent=0.0)


class TestArrivalSpec:
    def test_unknown_kind(self):
        with pytest.raises(WorkloadError, match="steady|burst|diurnal"):
            ArrivalSpec(kind="poissonish")

    def test_rate_must_be_positive(self):
        with pytest.raises(WorkloadError, match="rate_per_s"):
            ArrivalSpec(rate_per_s=0.0)

    def test_burst_window_bounds(self):
        with pytest.raises(WorkloadError, match="burst_seconds"):
            ArrivalSpec(kind="burst", burst_every_s=1.0, burst_seconds=2.0)

    def test_steady_rate_is_flat(self):
        arrival = ArrivalSpec(kind="steady", rate_per_s=100.0)
        assert arrival.rate_at(0.0) == arrival.rate_at(123.4) == 100.0

    def test_burst_rate_spikes_inside_the_window(self):
        arrival = ArrivalSpec(
            kind="burst", rate_per_s=100.0,
            burst_every_s=2.0, burst_seconds=0.5, burst_multiplier=4.0,
        )
        assert arrival.rate_at(0.25) == 400.0  # inside the burst
        assert arrival.rate_at(1.0) == 100.0   # between bursts
        assert arrival.rate_at(2.25) == 400.0  # periodic

    def test_diurnal_rate_stays_within_trough_and_peak(self):
        arrival = ArrivalSpec(
            kind="diurnal", rate_per_s=100.0,
            diurnal_period_s=4.0, diurnal_trough=0.25,
        )
        rates = [arrival.rate_at(t / 10.0) for t in range(80)]
        assert min(rates) >= 25.0 - 1e-9
        assert max(rates) <= 100.0 + 1e-9
        assert max(rates) > min(rates)  # actually modulates


class TestTrafficSpec:
    def test_mix_is_canonicalised(self):
        a = TrafficSpec(mix={"men2ent": 0.5, "getConcept": 0.2,
                             "getEntity": 0.3})
        b = TrafficSpec(mix=[("getEntity", 0.3), ("getConcept", 0.2),
                             ("men2ent", 0.5)])
        assert a.mix == b.mix
        assert a.as_dict() == b.as_dict()

    def test_mix_must_sum_to_one(self):
        with pytest.raises(WorkloadError, match="sum to 1"):
            TrafficSpec(mix={"men2ent": 0.5, "getConcept": 0.2,
                             "getEntity": 0.2})

    def test_mix_rejects_unknown_api(self):
        with pytest.raises(WorkloadError, match="unknown API"):
            TrafficSpec(mix={"men2ent": 0.5, "getAll": 0.5})

    def test_batch_sizes_must_be_positive(self):
        with pytest.raises(WorkloadError, match="batch"):
            TrafficSpec(batch_sizes=((0, 1.0),))

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            TrafficSpec(tenants=(("acme", 0.5), ("acme", 0.5)))

    def test_rates_are_probabilities(self):
        with pytest.raises(WorkloadError, match="miss_rate"):
            TrafficSpec(miss_rate=1.5)
        with pytest.raises(WorkloadError, match="adversarial_rate"):
            TrafficSpec(adversarial_rate=-0.1)


class TestWorldSpec:
    def test_knobs_are_probabilities(self):
        with pytest.raises(WorkloadError, match="alias_ambiguity"):
            WorldSpec(alias_ambiguity=2.0)

    def test_noise_scales_with_knobs(self):
        low, high = WorldSpec(alias_ambiguity=0.0), WorldSpec(
            alias_ambiguity=1.0
        )
        assert high.noise().p_alias > low.noise().p_alias
        shallow, deep = WorldSpec(chain_depth=0.0), WorldSpec(chain_depth=1.0)
        assert deep.noise().p_role_bracket > shallow.noise().p_role_bracket

    def test_build_world_is_deterministic(self):
        spec = WorldSpec(n_entities=60)
        a = spec.build_world(5).dump()
        b = spec.build_world(5).dump()
        assert [p.page_id for p in a.pages] == [p.page_id for p in b.pages]
        assert [p.tags for p in a.pages] == [p.tags for p in b.pages]

    def test_churned_dump_changes_the_churn_fraction(self):
        spec = WorldSpec(n_entities=80, churn_rate=0.25)
        world = spec.build_world(5)
        churned = spec.churned_dump(world, 6)
        diff = diff_dumps(world.dump(), churned)
        assert not diff.added and not diff.removed
        assert len(diff.changed) == round(0.25 * len(world.dump().pages))

    def test_churned_dump_is_deterministic(self):
        spec = WorldSpec(n_entities=60, churn_rate=0.3)
        world = spec.build_world(5)
        a = spec.churned_dump(world, 7)
        b = spec.churned_dump(world, 7)
        assert [p.abstract for p in a.pages] == [p.abstract for p in b.pages]
        assert [p.tags for p in a.pages] == [p.tags for p in b.pages]


class TestScenario:
    def _scenario(self, **kwargs):
        defaults = dict(
            name="round_trip",
            description="round-trip fixture",
            traffic=TrafficSpec(
                n_calls=64,
                popularity=KeyPopularity(kind="zipf", zipf_exponent=1.2),
                arrival=ArrivalSpec(kind="burst", rate_per_s=120.0),
                batch_sizes=((1, 0.5), (4, 0.5)),
                tenants=(("acme", 0.6), ("beta", 0.4)),
            ),
            world=WorldSpec(n_entities=60, churn_rate=0.2),
            seed=3,
            publish_at=0.5,
        )
        defaults.update(kwargs)
        return Scenario(**defaults)

    def test_round_trips_through_json(self):
        scenario = self._scenario()
        wire = json.dumps(scenario.as_dict(), ensure_ascii=False,
                          sort_keys=True)
        assert Scenario.from_dict(json.loads(wire)) == scenario
        # byte-stable: serialising the round-tripped spec is identical
        again = json.dumps(
            Scenario.from_dict(json.loads(wire)).as_dict(),
            ensure_ascii=False, sort_keys=True,
        )
        assert again == wire

    def test_name_must_be_identifier(self):
        with pytest.raises(WorkloadError, match="identifier"):
            self._scenario(name="no spaces allowed")

    def test_publish_requires_churn(self):
        with pytest.raises(WorkloadError, match="churn_rate"):
            self._scenario(world=WorldSpec(n_entities=60), publish_at=0.5)

    def test_unknown_keys_rejected(self):
        data = self._scenario().as_dict()
        data["surprise"] = True
        with pytest.raises(WorkloadError, match="unknown keys"):
            Scenario.from_dict(data)

    def test_newer_format_version_rejected(self):
        data = self._scenario().as_dict()
        data["format_version"] = 99
        with pytest.raises(WorkloadError, match="newer"):
            Scenario.from_dict(data)
