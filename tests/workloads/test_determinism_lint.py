"""Static lint: repro.workloads must stay seed-deterministic.

The package's backbone contract is that the same ``(Scenario, seed)``
always compiles to byte-identical schedules.  That dies quietly the
first time a module reaches for ambient entropy, so this test walks
the AST of every module in the package and forbids:

- any use of the ``random`` module other than ``random.Random`` /
  ``from random import Random`` (module-level functions share hidden
  global state seeded from the OS),
- ``Random()`` constructed without an explicit seed argument,
- ``time`` / ``datetime`` / ``uuid`` / ``secrets`` imports anywhere
  except ``runner.py`` (the open-loop dispatcher legitimately needs
  the wall clock; compilation and sampling never do),
- function-call expressions in default argument values (the classic
  ``def f(now=time.time())`` time-dependent-default trap).
"""

import ast
from pathlib import Path

import repro.core
import repro.obs
import repro.workloads

#: package directory → the single module allowed to touch the clock
#: (``runner.py`` measures open-loop latency; ``clock.py`` is the obs
#: package's sanctioned timestamp hook everything else imports;
#: ``pipeline.py`` times stages with ``perf_counter`` — but the build
#: backends in ``executors.py`` and the planner in ``stages.py`` must
#: stay entropy-free or byte-identity across backends dies quietly).
LINTED_PACKAGES = {
    Path(repro.workloads.__file__).parent: frozenset({"runner.py"}),
    Path(repro.obs.__file__).parent: frozenset({"clock.py"}),
    Path(repro.core.__file__).parent: frozenset({"pipeline.py"}),
}
ENTROPY_MODULES = {"time", "datetime", "uuid", "secrets"}


def package_modules():
    return [
        (path, clock_exempt)
        for package_dir, clock_exempt in LINTED_PACKAGES.items()
        for path in sorted(package_dir.glob("*.py"))
    ]


def lint_module(
    path: Path, clock_exempt: frozenset = frozenset({"runner.py"})
) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    problems = []

    def flag(node: ast.AST, message: str) -> None:
        problems.append(f"{path.name}:{node.lineno}: {message}")

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in ENTROPY_MODULES and path.name not in clock_exempt:
                    flag(node, f"import {alias.name} — only "
                               f"{sorted(clock_exempt)} may touch the clock")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in ENTROPY_MODULES and path.name not in clock_exempt:
                flag(node, f"from {node.module} import ... — only "
                           f"{sorted(clock_exempt)} may touch the clock")
            if root == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        flag(node, f"from random import {alias.name} — "
                                   "module-level random functions use "
                                   "hidden global state")
        elif isinstance(node, ast.Attribute):
            if (isinstance(node.value, ast.Name)
                    and node.value.id == "random"
                    and node.attr != "Random"):
                flag(node, f"random.{node.attr} — unseeded global RNG")
        elif isinstance(node, ast.Call):
            callee = node.func
            name = (callee.id if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute)
                    else None)
            if name == "Random" and not node.args and not node.keywords:
                flag(node, "Random() without a seed — OS-entropy seeded")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                for sub in ast.walk(default):
                    if isinstance(sub, ast.Call):
                        flag(default, f"def {node.name}(...): call "
                                      "expression in a default argument "
                                      "is evaluated once at import time")
    return problems


def test_no_unseeded_randomness_or_clock_leaks():
    problems = []
    for path, clock_exempt in package_modules():
        problems.extend(lint_module(path, clock_exempt))
    assert not problems, "\n".join(problems)


def test_the_lint_actually_scans_the_packages():
    names = {path.name for path, _ in package_modules()}
    assert {"spec.py", "schedule.py", "sampling.py", "runner.py",
            "registry.py", "report.py", "harness.py", "faults.py"} <= names
    # the obs package rides the same lint: metrics/trace/events must
    # never mint ids or timestamps from ambient entropy
    assert {"metrics.py", "trace.py", "events.py", "clock.py"} <= names
    # so do the build backends: scheduling order is the only thing
    # standing between "parallel" and "nondeterministic"
    assert {"executors.py", "pipeline.py", "stages.py"} <= names


def test_the_lint_catches_the_traps(tmp_path):
    bad = (
        "import random\n"
        "from random import randint\n"
        "from random import Random\n"
        "import time\n"
        "def f(now=time.time()):\n"
        "    return random.random() + Random().random()\n"
    )
    fake = tmp_path / "spec.py"  # borrow a non-clock-exempt name
    fake.write_text(bad, encoding="utf-8")
    joined = "\n".join(lint_module(fake))
    assert "randint" in joined
    assert "import time" in joined
    assert "default argument" in joined
    assert "unseeded global RNG" in joined
    assert "Random() without a seed" in joined
