"""Static lint: the whole package must stay seed-deterministic.

The backbone contract is that the same ``(Scenario, seed)`` always
compiles to byte-identical schedules and the same dump always builds
the byte-identical taxonomy.  That dies quietly the first time a
module reaches for ambient entropy, so the :mod:`repro.analysis`
determinism checker walks the AST of every module and forbids unseeded
RNG use, clock/uuid/secrets imports outside the exemption table, and
call-in-default traps (the rules are documented on the checker).

This file is the thin test driver: the lint logic itself lives in
``src/repro/analysis/determinism.py`` where ``cn-probase lint`` and
``run_smoke.sh`` run it over all of ``src/repro``, not just the three
packages the original test-local lint covered.
"""

from pathlib import Path

import repro
from repro.analysis import DeterminismChecker, ModuleIndex, ParsedModule
from repro.analysis.determinism import CLOCK_EXEMPT


def package_index() -> ModuleIndex:
    return ModuleIndex.scan(Path(repro.__file__).parent)


def lint_module(
    path: Path, clock_exempt: frozenset = frozenset()
) -> list[str]:
    """Run the determinism checker on one file outside the package.

    *clock_exempt* names package-relative paths, matching the shipped
    exemption table's keying (never bare filenames).
    """
    module = ParsedModule(path, path.name, path.read_text(encoding="utf-8"))
    checker = DeterminismChecker(
        clock_exempt={rel: "test exemption" for rel in clock_exempt}
    )
    return [finding.render() for finding in checker.check(module)]


def test_no_unseeded_randomness_or_clock_leaks():
    index = package_index()
    checker = DeterminismChecker()
    problems = [
        finding.render()
        for module in index.modules
        for finding in checker.check(module)
    ]
    assert not problems, "\n".join(problems)


def test_the_lint_actually_scans_the_packages():
    names = {module.rel for module in package_index().modules}
    assert {"workloads/spec.py", "workloads/schedule.py",
            "workloads/sampling.py", "workloads/runner.py",
            "workloads/registry.py", "workloads/report.py",
            "workloads/harness.py", "workloads/faults.py"} <= names
    # the obs package rides the same lint: metrics/trace/events must
    # never mint ids or timestamps from ambient entropy
    assert {"obs/metrics.py", "obs/trace.py", "obs/events.py",
            "obs/clock.py"} <= names
    # so do the build backends: scheduling order is the only thing
    # standing between "parallel" and "nondeterministic"
    assert {"core/executors.py", "core/pipeline.py",
            "core/stages.py"} <= names
    # the generalized lint reaches every package, serving included
    assert {"serving/router.py", "taxonomy/service.py", "cli.py"} <= names


def test_exemptions_key_on_package_relative_paths():
    # an unrelated runner.py in some future package must never inherit
    # the workload dispatcher's clock exemption by filename
    assert "workloads/runner.py" in CLOCK_EXEMPT
    assert "runner.py" not in CLOCK_EXEMPT
    assert all("/" in rel or rel == "cli.py" for rel in CLOCK_EXEMPT)


def test_the_lint_catches_the_traps(tmp_path):
    bad = (
        "import random\n"
        "from random import randint\n"
        "from random import Random\n"
        "import time\n"
        "def f(now=time.time()):\n"
        "    return random.random() + Random().random()\n"
    )
    fake = tmp_path / "spec.py"  # borrow a non-clock-exempt name
    fake.write_text(bad, encoding="utf-8")
    joined = "\n".join(lint_module(fake))
    assert "randint" in joined
    assert "import time" in joined
    assert "default argument" in joined
    assert "unseeded global RNG" in joined
    assert "Random() without a seed" in joined


def test_the_exemption_covers_only_the_clock(tmp_path):
    # an exempted module may import time, but unseeded RNG rules and
    # the default-argument trap still hold there
    bad = "import time\nimport random\nx = random.random()\n"
    fake = tmp_path / "runner.py"
    fake.write_text(bad, encoding="utf-8")
    joined = "\n".join(lint_module(fake, frozenset({"runner.py"})))
    assert "import time" not in joined
    assert "unseeded global RNG" in joined
