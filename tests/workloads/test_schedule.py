"""Schedule compilation: determinism, zipf mass, persistence."""

from collections import Counter
from random import Random

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    ArgumentPools,
    ArrivalSpec,
    KeyPopularity,
    PopularitySampler,
    Scenario,
    TrafficSpec,
    WorldSpec,
    compile_schedule,
    load_schedule,
    save_schedule,
)
from repro.workloads.schedule import dumps_schedule

POOLS = ArgumentPools(
    mentions=tuple(f"称谓{i}" for i in range(40)),
    entities=tuple(f"实体{i}#0" for i in range(40)),
    concepts=tuple(f"概念{i}" for i in range(12)),
)


def make_scenario(**kwargs):
    defaults = dict(
        name="sched_test",
        description="schedule test fixture",
        traffic=TrafficSpec(
            n_calls=120,
            arrival=ArrivalSpec(kind="steady", rate_per_s=400.0),
        ),
        world=WorldSpec(n_entities=60),
        seed=4,
    )
    defaults.update(kwargs)
    return Scenario(**defaults)


class TestDeterminism:
    def test_same_inputs_byte_identical_jsonl(self):
        scenario = make_scenario()
        a = dumps_schedule(compile_schedule(scenario, POOLS))
        b = dumps_schedule(compile_schedule(scenario, POOLS))
        assert a == b

    def test_compile_without_pools_is_deterministic(self):
        # The default pools come from the world build — still seeded.
        scenario = make_scenario(world=WorldSpec(n_entities=60))
        assert dumps_schedule(compile_schedule(scenario)) == \
            dumps_schedule(compile_schedule(scenario))

    def test_seed_changes_the_bytes(self):
        a = dumps_schedule(compile_schedule(make_scenario(seed=4), POOLS))
        b = dumps_schedule(compile_schedule(make_scenario(seed=5), POOLS))
        assert a != b

    def test_name_is_part_of_the_stream_seed(self):
        a = compile_schedule(make_scenario(name="alpha"), POOLS)
        b = compile_schedule(make_scenario(name="beta"), POOLS)
        assert [c.args for c in a.calls] != [c.args for c in b.calls]


class TestScheduleShape:
    def test_serves_exactly_n_calls(self):
        schedule = compile_schedule(make_scenario(), POOLS)
        assert schedule.n_calls == 120
        assert schedule.n_events == 120  # batch_sizes defaults to 1

    def test_offsets_are_monotonic(self):
        schedule = compile_schedule(make_scenario(), POOLS)
        offsets = [call.at_s for call in schedule.calls]
        assert offsets == sorted(offsets)
        assert offsets[0] > 0.0

    def test_batches_never_overshoot_n_calls(self):
        scenario = make_scenario(
            traffic=TrafficSpec(
                n_calls=100,
                batch_sizes=((8, 1.0),),
                arrival=ArrivalSpec(kind="steady", rate_per_s=400.0),
            )
        )
        schedule = compile_schedule(scenario, POOLS)
        assert schedule.n_calls == 100
        # 12 full batches of 8, then the remainder is clamped to 4
        assert schedule.calls[-1].batch_size == 4

    def test_tenant_namespaced_unknowns(self):
        scenario = make_scenario(
            traffic=TrafficSpec(
                n_calls=200,
                miss_rate=0.5,
                tenants=(("acme", 1.0),),
                arrival=ArrivalSpec(kind="steady", rate_per_s=400.0),
            )
        )
        schedule = compile_schedule(scenario, POOLS)
        unknowns = [
            arg
            for call in schedule.calls
            for arg, miss in zip(call.args, call.expected_misses)
            if miss
        ]
        assert unknowns
        assert all(arg.startswith("acme·") for arg in unknowns)
        assert schedule.tenants() == ("acme",)

    def test_empty_pool_forces_expected_misses(self):
        pools = ArgumentPools(mentions=(), entities=("实体0#0",),
                              concepts=("概念0",))
        scenario = make_scenario(
            traffic=TrafficSpec(
                n_calls=60, mix=(("men2ent", 1.0),), miss_rate=0.0,
                arrival=ArrivalSpec(kind="steady", rate_per_s=400.0),
            )
        )
        schedule = compile_schedule(scenario, pools)
        assert schedule.n_expected_misses == 60

    def test_adversarial_arguments_are_near_misses(self):
        scenario = make_scenario(
            traffic=TrafficSpec(
                n_calls=300, mix=(("men2ent", 1.0),),
                miss_rate=0.0, adversarial_rate=0.5,
                arrival=ArrivalSpec(kind="steady", rate_per_s=400.0),
            )
        )
        schedule = compile_schedule(scenario, POOLS)
        adversarial = [
            arg
            for call in schedule.calls
            for arg, miss in zip(call.args, call.expected_misses)
            if miss
        ]
        assert adversarial
        # a real pool key plus one perturbing suffix character
        assert all(arg[:-1] in POOLS.mentions for arg in adversarial)


class TestZipfMass:
    def test_observed_hot_key_mass_matches_theory(self):
        popularity = KeyPopularity(kind="zipf", zipf_exponent=1.3)
        sampler = PopularitySampler(POOLS.mentions, popularity, Random(11))
        draws = Counter(sampler.draw() for _ in range(20_000))
        hot = set(sampler.hot_keys[:5])
        observed = sum(draws[key] for key in hot) / 20_000
        assert observed == pytest.approx(sampler.top_mass(5), abs=0.03)
        # zipf concentrates: the top-5 of 40 keys carry far more than 5/40
        assert sampler.top_mass(5) > 0.35

    def test_uniform_mass_is_proportional(self):
        sampler = PopularitySampler(
            POOLS.mentions, KeyPopularity(kind="uniform"), Random(11)
        )
        assert sampler.top_mass(10) == pytest.approx(10 / 40)

    def test_zipf_schedule_concentrates_traffic(self):
        def top_share(popularity):
            scenario = make_scenario(
                traffic=TrafficSpec(
                    n_calls=600, mix=(("men2ent", 1.0),), miss_rate=0.0,
                    popularity=popularity,
                    arrival=ArrivalSpec(kind="steady", rate_per_s=800.0),
                )
            )
            schedule = compile_schedule(scenario, POOLS)
            counts = Counter(
                arg for call in schedule.calls for arg in call.args
            )
            return counts.most_common(1)[0][1] / 600

        zipf = top_share(KeyPopularity(kind="zipf", zipf_exponent=1.3))
        uniform = top_share(KeyPopularity(kind="uniform"))
        assert zipf > 2 * uniform


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        schedule = compile_schedule(make_scenario(), POOLS)
        path = tmp_path / "schedule.jsonl"
        save_schedule(schedule, path)
        assert load_schedule(path) == schedule
        # the saved bytes are the canonical dumps
        assert path.read_text(encoding="utf-8") == dumps_schedule(schedule)

    def test_save_is_atomic_no_temp_left(self, tmp_path):
        schedule = compile_schedule(make_scenario(), POOLS)
        path = tmp_path / "deep" / "schedule.jsonl"
        save_schedule(schedule, path)  # creates the parent dir
        assert path.exists()
        assert list(path.parent.glob("*.tmp")) == []

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(WorkloadError, match="empty"):
            load_schedule(path)

    def test_newer_format_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"format_version":99}\n', encoding="utf-8")
        with pytest.raises(WorkloadError, match="v99"):
            load_schedule(path)

    def test_call_count_mismatch_rejected(self, tmp_path):
        schedule = compile_schedule(make_scenario(), POOLS)
        path = tmp_path / "truncated.jsonl"
        lines = dumps_schedule(schedule).splitlines()
        path.write_text("\n".join(lines[:-5]) + "\n", encoding="utf-8")
        with pytest.raises(WorkloadError, match="header says"):
            load_schedule(path)
