"""The fault-injection layer: specs, the faulty wire, and chaos runs."""

import pytest

from repro.errors import APIError, ServiceUnavailableError, WorkloadError
from repro.workloads import (
    ArrivalSpec,
    FaultSpec,
    FaultyReplica,
    ReplicaCrash,
    Scenario,
    TrafficSpec,
    WireFaults,
    WorldSpec,
    build_chaos_cluster,
    fault_actions,
    prepare_scenario,
    run_scenario,
)
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


def make_taxonomy(generation: int = 0) -> Taxonomy:
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    for n in range(generation):
        page_id = f"新星{n}#0"
        t.add_entity(Entity(page_id, f"新星{n}"))
        t.add_relation(IsARelation(page_id, "歌手", "tag"))
    return t


class TestFaultSpecs:
    def test_round_trip(self):
        spec = FaultSpec(
            replicas=4,
            seed=3,
            crashes=(
                ReplicaCrash(replica=1, at=0.2, back_at=0.6),
                ReplicaCrash(replica=2, at=0.3, mode="isolate"),
            ),
            wire=WireFaults(delay_rate=0.1, drop_rate=0.05, error_rate=0.01),
            republish_at=0.8,
            probe_after=2,
        )
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_validation_catches_the_traps(self):
        with pytest.raises(WorkloadError, match=">= 1 replica"):
            FaultSpec(replicas=0)
        with pytest.raises(WorkloadError, match="only 2"):
            FaultSpec(replicas=2, crashes=(ReplicaCrash(replica=2, at=0.1),))
        with pytest.raises(WorkloadError, match="after"):
            ReplicaCrash(replica=0, at=0.5, back_at=0.4)
        with pytest.raises(WorkloadError, match="mode"):
            ReplicaCrash(replica=0, at=0.5, mode="unplug")
        with pytest.raises(WorkloadError, match="drop_rate"):
            WireFaults(drop_rate=1.5)
        with pytest.raises(WorkloadError, match="unknown keys"):
            FaultSpec.from_dict({"replicas": 2, "chaos_level": 11})

    def test_scenario_refuses_republish_without_publish(self):
        with pytest.raises(WorkloadError, match="republish"):
            Scenario(
                name="fault_test_bad",
                description="republish with nothing published",
                faults=FaultSpec(republish_at=0.5),
            )


class TestFaultyReplica:
    def make(self, **kwargs):
        from repro.serving import LocalReplica

        return FaultyReplica(
            lambda: LocalReplica(make_taxonomy(0)), name="r0", **kwargs
        )

    def test_kill_makes_every_surface_unreachable(self):
        replica = self.make()
        replica.kill()
        for call in (
            lambda: replica.men2ent("华仔"),
            replica.healthcheck,
            replica.published_version,
            lambda: replica.resync(None),
            replica.pinned,
        ):
            with pytest.raises(ServiceUnavailableError, match="unreachable"):
                call()

    def test_restart_rebuilds_stale_but_reconnect_keeps_state(self):
        from repro.serving import LocalReplica

        generations = iter((0, 0))
        replica = FaultyReplica(
            lambda: LocalReplica(make_taxonomy(next(generations))),
            name="r0",
        )
        base_hash = replica.published_content_hash()
        from repro.taxonomy.delta import TaxonomyDelta

        delta = TaxonomyDelta.compute(make_taxonomy(0), make_taxonomy(1))
        replica.publish_delta(delta, base_version="v1", version=2)
        assert replica.published_version() == "v2"
        # a partition keeps the state it had
        replica.isolate()
        replica.reconnect()
        assert replica.published_version() == "v2"
        # a process death loses it: back to the base snapshot, stale
        replica.kill()
        replica.restart()
        assert replica.published_version() == "v1"
        assert replica.published_content_hash() == base_hash
        assert replica.events == [
            "isolate", "reconnect", "kill", "restart",
        ]

    def test_wire_faults_drop_error_and_delay(self):
        slept: list[float] = []
        always_drop = self.make(wire=WireFaults(drop_rate=1.0), seed=1)
        with pytest.raises(ServiceUnavailableError, match="injected drop"):
            always_drop.men2ent("华仔")
        always_error = self.make(wire=WireFaults(error_rate=1.0), seed=1)
        with pytest.raises(APIError, match="injected server error"):
            always_error.men2ent("华仔")
        always_slow = self.make(
            wire=WireFaults(delay_rate=1.0, delay_seconds=0.5),
            seed=1,
            sleep=slept.append,
        )
        assert always_slow.men2ent("华仔") == ["刘德华#0"]
        assert slept == [0.5]
        always_slow.clear_wire_faults()
        assert always_slow.men2ent("华仔") == ["刘德华#0"]
        assert slept == [0.5]  # faults lifted: no more delays

    def test_pinned_group_survives_a_mid_group_publish(self):
        from repro.taxonomy.delta import TaxonomyDelta

        replica = self.make()
        view = replica.pinned()
        delta = TaxonomyDelta.compute(make_taxonomy(0), make_taxonomy(1))
        replica.publish_delta(delta, base_version="v1", version=2)
        # the pinned view still answers from the pre-publish snapshot
        assert view.men2ent("新星0") == []
        assert replica.men2ent("新星0") == ["新星0#0"]


class TestChaosCluster:
    def test_replicas_are_independent_stores(self):
        from repro.taxonomy.delta import TaxonomyDelta

        cluster = build_chaos_cluster(make_taxonomy(0), FaultSpec(replicas=2))
        delta = TaxonomyDelta.compute(make_taxonomy(0), make_taxonomy(1))
        cluster.replicas[0].publish_delta(
            delta, base_version="v1", version=2
        )
        assert cluster.replicas[0].inner_version() == "v2"
        assert cluster.replicas[1].inner_version() == "v1"

    def test_fault_actions_compile_offsets_and_labels(self):
        spec = FaultSpec(
            replicas=2,
            crashes=(
                ReplicaCrash(replica=0, at=0.25, back_at=0.75),
                ReplicaCrash(replica=1, at=0.5, mode="isolate"),
            ),
        )
        cluster = build_chaos_cluster(make_taxonomy(0), spec)
        actions = fault_actions(cluster, spec, duration_s=8.0)
        assert [(a.label, a.at_s) for a in actions] == [
            ("kill:replica-0", 2.0),
            ("restart:replica-0", 6.0),
            ("isolate:replica-1", 4.0),
        ]

    def test_settle_and_convergence_after_a_kill(self):
        from repro.taxonomy.delta import TaxonomyDelta

        spec = FaultSpec(replicas=3, probe_after=1)
        cluster = build_chaos_cluster(make_taxonomy(0), spec)
        cluster.replicas[2].kill()
        delta = TaxonomyDelta.compute(make_taxonomy(0), make_taxonomy(1))
        cluster.router.publish_delta(delta, base_version=1, version=2)
        cluster.replicas[2].restart()  # back, but one version behind
        assert cluster.replicas[2].inner_version() == "v1"
        assert cluster.settle() >= 1  # the probe sweep resyncs it
        verdict = cluster.convergence()
        assert verdict["converged"] is True
        assert verdict["resyncs"]["resync_chains"] == 1
        dead = cluster.convergence.__self__.replicas[0]
        dead.kill()  # a replica left dead fails the gate
        assert cluster.convergence()["converged"] is False


class TestChaosScenarioRun:
    def test_tiny_chaos_scenario_end_to_end(self):
        scenario = Scenario(
            name="fault_test_tiny",
            description="kill + restart + dual publish on a small world",
            traffic=TrafficSpec(
                n_calls=60,
                batch_sizes=((1, 0.4), (4, 0.6)),
                arrival=ArrivalSpec(kind="steady", rate_per_s=200.0),
            ),
            world=WorldSpec(n_entities=80, churn_rate=0.3),
            seed=5,
            publish_at=0.4,
            faults=FaultSpec(
                replicas=2,
                seed=5,
                crashes=(ReplicaCrash(replica=1, at=0.2, back_at=0.7),),
                republish_at=0.9,
                probe_after=2,
            ),
        )
        report = run_scenario(
            prepare_scenario(scenario), "router", workers=4, time_scale=20.0
        )
        assert report.target == "chaos"
        assert report.audit is not None
        assert report.audit["mixed_answers"] == 0
        assert report.convergence is not None
        assert report.convergence["converged"] is True
        labels = [action.label for action in report.actions]
        assert "kill:replica-1" in labels
        assert "republish_delta" in labels
        assert all(action.error is None for action in report.actions)
        # the chaos verdict flows into the bench entry
        from repro.workloads import append_scenario_entry  # noqa: F401
        from repro.workloads.report import scenario_entry

        entry = scenario_entry(report)
        assert entry["converged"] is True
        assert entry["mixed_version_answers"] == 0
        assert "resyncs" in entry
