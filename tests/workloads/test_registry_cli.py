"""Built-in scenario registry and the `cn-probase workload` CLI."""

import hashlib
import json

import pytest

from repro.cli import main
from repro.errors import WorkloadError
from repro.workloads import (
    ArrivalSpec,
    Scenario,
    TrafficSpec,
    WorldSpec,
    builtin_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.workloads import registry as registry_module

BUILTINS = (
    "steady_table2",
    "zipf_hot",
    "burst",
    "batch_heavy",
    "adversarial_miss",
    "publish_under_load",
    "multi_tenant",
    "churn_world",
    "replica_chaos",
    "dual_publisher",
)


class TestRegistry:
    def test_builtins_in_benchmark_order(self):
        assert tuple(s.name for s in builtin_scenarios()) == BUILTINS
        assert set(BUILTINS) <= set(scenario_names())

    def test_get_scenario_returns_the_registered_spec(self):
        scenario = get_scenario("zipf_hot")
        assert scenario.name == "zipf_hot"
        assert scenario.traffic.popularity.kind == "zipf"

    def test_unknown_scenario_lists_the_known_names(self):
        with pytest.raises(WorkloadError, match="steady_table2"):
            get_scenario("nope")

    def test_register_refuses_silent_redefinition(self):
        scenario = Scenario(
            name="registry_test_tmp",
            description="redefinition fixture",
            traffic=TrafficSpec(
                n_calls=10,
                arrival=ArrivalSpec(kind="steady", rate_per_s=100.0),
            ),
            world=WorldSpec(n_entities=30),
            seed=1,
        )
        try:
            register_scenario(scenario)
            with pytest.raises(WorkloadError, match="already registered"):
                register_scenario(scenario)
            replaced = register_scenario(scenario, replace=True)
            assert replaced is scenario
        finally:
            registry_module._SCENARIOS.pop("registry_test_tmp", None)

    def test_every_builtin_spec_round_trips(self):
        for scenario in builtin_scenarios():
            assert Scenario.from_dict(scenario.as_dict()) == scenario


class TestWorkloadCLI:
    def test_list_shows_all_builtins(self, capsys):
        assert main(["workload", "list"]) == 0
        out = capsys.readouterr().out
        for name in BUILTINS:
            assert name in out

    def test_compile_is_byte_deterministic(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(["workload", "compile", "zipf_hot",
                     "--out", str(a)]) == 0
        assert main(["workload", "compile", "zipf_hot",
                     "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        # the printed sha256 matches the file contents
        digest = hashlib.sha256(a.read_bytes()).hexdigest()
        assert digest[:16] in capsys.readouterr().out

    def test_compile_seed_override_changes_bytes(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(["workload", "compile", "zipf_hot",
                     "--out", str(a)]) == 0
        assert main(["workload", "compile", "zipf_hot",
                     "--out", str(b), "--seed", "99"]) == 0
        assert a.read_bytes() != b.read_bytes()

    def test_compile_unknown_scenario_fails(self, capsys):
        assert main(["workload", "compile", "nope",
                     "--out", "/tmp/never.jsonl"]) != 0

    def test_run_single_scenario_appends_bench_entry(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        assert main([
            "workload", "run", "steady_table2",
            "--target", "service",
            "--time-scale", "50",
            "--bench-json", str(bench),
        ]) == 0
        out = capsys.readouterr().out
        assert "steady_table2" in out
        data = json.loads(bench.read_text(encoding="utf-8"))
        entry = data["workload_scenarios"]["steady_table2"]["service"]
        for key in ("throughput_calls_per_s", "per_api",
                    "lateness_p95_seconds"):
            assert key in entry
        men2ent = entry["per_api"]["men2ent"]
        assert {"p50_seconds", "p95_seconds", "p99_seconds"} <= set(men2ent)

    def test_run_no_bench_skips_the_file(self, tmp_path):
        bench = tmp_path / "bench.json"
        assert main([
            "workload", "run", "steady_table2",
            "--target", "service",
            "--time-scale", "50",
            "--bench-json", str(bench),
            "--no-bench",
        ]) == 0
        assert not bench.exists()
