"""Package-level exports and noise-channel behaviour tests."""

import numpy as np
import pytest

import repro
from repro.encyclopedia import NoiseConfig, SyntheticWorld
from repro.nlp.base_lexicon import PLACE_SEEDS, THEMATIC_SEEDS


class TestLazyExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_lazy_names_resolve(self):
        assert repro.SyntheticWorld is SyntheticWorld
        assert callable(repro.build_cn_probase)
        assert repro.Taxonomy.__name__ == "Taxonomy"

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_dir_lists_exports(self):
        names = dir(repro)
        assert "build_cn_probase" in names
        assert "SyntheticWorld" in names


class TestNoiseChannels:
    """Each channel, enabled alone, injects exactly its error type."""

    def _world(self, **overrides):
        config = NoiseConfig.noiseless()
        config = NoiseConfig(**{**vars(config), **overrides})
        return SyntheticWorld.generate(seed=5, n_entities=400, noise=config)

    def test_validate_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            NoiseConfig(p_thematic_tag=1.5).validate()

    def test_thematic_channel(self):
        world = self._world(p_thematic_tag=1.0)
        thematic = set(THEMATIC_SEEDS)
        pages_with_thematic = sum(
            1 for p in world.dump() if set(p.tags) & thematic
        )
        assert pages_with_thematic > len(world.entities) * 0.8

    def test_ne_tag_channel(self):
        world = self._world(p_ne_tag=1.0)
        places = set(PLACE_SEEDS)
        entity_pages = [world.dump().get(e.page_id) for e in world.entities]
        tagged = sum(1 for p in entity_pages if set(p.tags) & places)
        assert tagged > len(entity_pages) * 0.8

    def test_ne_bracket_channel(self):
        world = self._world(p_ne_bracket=1.0, p_bracket_missing=0.0)
        places = set(PLACE_SEEDS)
        entity_pages = [world.dump().get(e.page_id) for e in world.entities]
        assert all(p.bracket in places for p in entity_pages)

    def test_tags_missing_channel(self):
        world = self._world(p_tags_missing=1.0)
        entity_pages = [world.dump().get(e.page_id) for e in world.entities]
        assert all(not p.tags for p in entity_pages)

    def test_sibling_channel_injects_non_gold_same_kind(self):
        world = self._world(p_sibling_tag=1.0)
        violations = 0
        checked = 0
        for entity in world.entities[:100]:
            page = world.dump().get(entity.page_id)
            for tag in page.tags:
                if not world.is_gold_isa(entity.page_id, tag):
                    info = world.concepts.get(tag)
                    if info is not None:
                        assert info.kind == entity.kind
                        violations += 1
            checked += 1
        assert violations > checked * 0.5

    def test_role_bracket_channel(self):
        world = self._world(p_role_bracket=1.0, p_bracket_missing=0.0)
        role_nouns = ("战略官", "执行官", "财务官", "总裁", "经理", "董事长")
        persons = [e for e in world.entities if e.kind == "person"]
        with_roles = [
            e for e in persons
            if e.bracket and e.bracket.endswith(role_nouns)
        ]
        # role brackets need an existing org name pool, so early persons
        # may fall back; the channel must still dominate
        assert len(with_roles) > len(persons) * 0.5
        sample = with_roles[0]
        assert any(r in sample.gold_hypernyms for r in role_nouns)

    def test_noiseless_tags_perfectly_gold(self):
        world = self._world()
        for entity in world.entities[:150]:
            page = world.dump().get(entity.page_id)
            for tag in page.tags:
                assert world.is_gold_isa(entity.page_id, tag)


class TestEmbeddingOOV:
    def test_extended_ids_map_to_unk_row(self):
        from repro.neural.layers import Embedding
        from repro.neural.vocab import UNK

        rng = np.random.default_rng(0)
        table = Embedding(rng, n_tokens=10, dim=4)
        regular = table(np.array([UNK]))
        extended = table(np.array([10, 57]))  # beyond-vocab ids
        np.testing.assert_array_equal(extended.data[0], regular.data[0])
        np.testing.assert_array_equal(extended.data[1], regular.data[0])


class TestTransitiveConceptQuery:
    def test_closure_via_concept_layer(self):
        from repro.taxonomy.model import Entity, IsARelation
        from repro.taxonomy.store import Taxonomy

        taxonomy = Taxonomy()
        taxonomy.add_entity(Entity("a#0", "a"))
        taxonomy.add_relation(IsARelation("a#0", "男演员", "tag"))
        taxonomy.add_relation(
            IsARelation("男演员", "演员", "tag", hyponym_kind="concept")
        )
        taxonomy.add_relation(
            IsARelation("演员", "人物", "tag", hyponym_kind="concept")
        )
        assert taxonomy.get_concepts("a#0") == ["男演员"]
        assert taxonomy.get_concepts_transitive("a#0") == [
            "人物", "演员", "男演员",
        ]
