"""Tests for the pluggable build backends: the Executor protocol, the
picklable WorkerContext, the backend x workers equivalence contract,
work floors, and worker-crash surfacing."""

import multiprocessing
import os
import pickle

import pytest

from repro.core.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerContext,
    resolve_executor,
)
from repro.core.pipeline import (
    CNProbaseBuilder,
    PipelineConfig,
    PreviousBuild,
    ResourceCache,
)
from repro.core.stages import StageTrace, default_registry, plan_execution
from repro.encyclopedia import SyntheticWorld
from repro.encyclopedia.model import EncyclopediaPage
from repro.errors import PipelineError

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAVE_FORK,
    reason="test-module stage classes only reach workers under fork",
)


def fast_config(workers: int = 1, **kwargs) -> PipelineConfig:
    kwargs.setdefault("enable_abstract", False)
    kwargs.setdefault("parallel_floor", 0)
    return PipelineConfig(workers=workers, **kwargs)


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(seed=31, n_entities=160)


def build_bytes(world, tmp_path, name, **kwargs):
    builder = CNProbaseBuilder(
        fast_config(**kwargs), resource_cache=ResourceCache()
    )
    result = builder.build(world.dump())
    path = tmp_path / f"{name}.jsonl"
    result.taxonomy.save(path)
    return path.read_bytes(), result


# -- crash/payload fixtures (module level so fork workers can pickle
# them by reference) -----------------------------------------------------------


class CrashSource:
    """Dies hard inside the worker — the OOM-kill shape."""

    name = "crash"
    requires = ()

    def generate(self, context):
        os._exit(13)


class UnpicklableReturnSource:
    name = "unpicklable"
    requires = ()

    def generate(self, context):
        return [lambda: None]  # not a relation, not picklable


class DomainErrorSource:
    name = "domainerror"
    requires = ()

    def generate(self, context):
        raise PipelineError("the stage itself objects")


class TestExecutorResolution:
    def test_backends_resolve(self):
        assert isinstance(resolve_executor("serial", 4), SerialExecutor)
        assert isinstance(resolve_executor("threads", 4), ThreadExecutor)
        assert isinstance(resolve_executor("processes", 4), ProcessExecutor)

    def test_one_worker_is_always_serial(self):
        assert isinstance(resolve_executor("processes", 1), SerialExecutor)

    def test_unknown_backend_rejected(self):
        with pytest.raises(PipelineError, match="backend"):
            resolve_executor("gpu", 4)

    def test_builder_rejects_unknown_backend(self):
        with pytest.raises(PipelineError, match="backend"):
            CNProbaseBuilder(PipelineConfig(backend="gpu"))

    def test_plan_carries_backend(self):
        plan = plan_execution(
            default_registry(), PipelineConfig(), workers=4,
            backend="processes",
        )
        assert plan.backend == "processes" and plan.parallel
        assert "backend=processes" in plan.describe()

    def test_plan_backend_serial_at_one_worker(self):
        plan = plan_execution(
            default_registry(), PipelineConfig(), workers=1,
            backend="processes",
        )
        assert plan.backend == "serial" and not plan.parallel


class TestWorkFloors:
    def test_serial_never_parallel(self):
        assert SerialExecutor().effective_workers(8, 10**9) == 1

    @pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
    def test_below_floor_runs_inline(self, cls):
        executor = cls(4)
        assert executor.effective_workers(4, executor.work_floor - 1) == 1
        assert executor.effective_workers(4, executor.work_floor) == 4

    @pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
    def test_single_task_runs_inline(self, cls):
        assert cls(4, work_floor=0).effective_workers(1, 10**9) == 1

    @pytest.mark.parametrize("cls", [ThreadExecutor, ProcessExecutor])
    def test_zero_floor_always_parallel(self, cls):
        assert cls(4, work_floor=0).effective_workers(2, 0) == 2

    def test_small_world_build_stays_inline_at_default_floor(self, world):
        # The regression the bench caught: tiny waves/chunks must not
        # pay pool overhead.  160 entities is far below every floor.
        builder = CNProbaseBuilder(
            fast_config(workers=4, parallel_floor=None),
            resource_cache=ResourceCache(),
        )
        result = builder.build(world.dump())
        assert result.stage_trace.get("syntax").workers == 1
        assert result.stage_trace.get("bracket").workers == 1

    def test_floor_zero_forces_pools(self, world):
        builder = CNProbaseBuilder(
            fast_config(workers=4), resource_cache=ResourceCache()
        )
        result = builder.build(world.dump())
        assert result.stage_trace.get("syntax").workers == 4
        assert result.stage_trace.get("syntax").backend == "threads"


class TestBackendEquivalence:
    """ISSUE tentpole contract: byte-identical Taxonomy.save output
    across serial x threads x processes at workers in {1, 2, 4}."""

    @pytest.fixture(scope="class")
    def reference(self, world, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("ref")
        data, _ = build_bytes(world, tmp, "serial", backend="serial")
        return data

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_byte_identical_output(
        self, world, tmp_path, reference, backend, workers
    ):
        data, result = build_bytes(
            world, tmp_path, f"{backend}-{workers}",
            backend=backend, workers=workers,
        )
        assert data == reference
        expected = "serial" if workers == 1 else backend
        assert result.stage_trace.get("syntax").backend == expected

    def test_processes_removed_by_matches_serial(self, world, tmp_path):
        _, serial = build_bytes(world, tmp_path, "s", backend="serial")
        _, processes = build_bytes(
            world, tmp_path, "p", backend="processes", workers=2
        )
        for name, removed in serial.removed_by.items():
            assert [r.key for r in removed] == \
                [r.key for r in processes.removed_by[name]]

    def test_infobox_discovery_survives_process_boundary(
        self, world, tmp_path
    ):
        # InfoboxSource mutates context.discovery inside the worker;
        # the outcome must carry it back to the parent's result.
        _, serial = build_bytes(world, tmp_path, "s2", backend="serial")
        _, processes = build_bytes(
            world, tmp_path, "p2", backend="processes", workers=2
        )
        assert serial.discovery is not None
        assert processes.discovery is not None
        assert processes.discovery.selected == serial.discovery.selected
        assert processes.discovery.n_candidates == \
            serial.discovery.n_candidates

    def test_incremental_processes_byte_identical_to_full_serial(
        self, world, tmp_path
    ):
        old_dump = world.dump()
        new_dump = world.dump()
        new_dump.add(EncyclopediaPage(
            page_id="新城#0", title="新城", tags=("城市",)
        ))
        serial = CNProbaseBuilder(
            fast_config(), resource_cache=ResourceCache()
        ).build(new_dump)
        previous = PreviousBuild.from_result(
            old_dump,
            CNProbaseBuilder(
                fast_config(), resource_cache=ResourceCache()
            ).build(old_dump),
        )
        incremental = CNProbaseBuilder(
            fast_config(workers=2, backend="processes"),
            resource_cache=ResourceCache(),
        ).build_incremental(new_dump, previous)
        a, b = tmp_path / "full.jsonl", tmp_path / "incr.jsonl"
        serial.taxonomy.save(a)
        incremental.taxonomy.save(b)
        assert a.read_bytes() == b.read_bytes()


class TestWorkerContext:
    @pytest.fixture()
    def context(self, world):
        builder = CNProbaseBuilder(
            fast_config(), resource_cache=ResourceCache()
        )
        return builder._prepare_context(
            world.dump(), StageTrace(), SerialExecutor()
        )

    def test_pickle_round_trip(self, context):
        """The regression net for the next contributor who closes a
        stage over a lock, an open file, or the live registry."""
        state = WorkerContext.from_context(context)
        clone = pickle.loads(pickle.dumps(state))
        materialized = clone.materialize()
        text = "上海是一座城市"
        assert materialized.segmenter.segment(text) == \
            context.segmenter.segment(text)
        assert materialized.tagger.tag("上海") == \
            context.tagger.tag("上海")
        assert materialized.titles == context.titles
        assert len(materialized.corpus) == len(context.corpus)

    def test_materialize_contexts_are_independent(self, context):
        state = WorkerContext.from_context(context)
        first, second = state.materialize(), state.materialize()
        first.per_source["x"] = []
        assert "x" not in second.per_source
        assert first.segmenter is second.segmenter  # shared, not copied

    def test_extra_sources_carried(self, context):
        from repro.taxonomy.model import is_known_source

        registry = default_registry()
        registry.register_source("custom-src", CrashSource)
        state = WorkerContext.from_context(context)
        assert "custom-src" in state.extra_sources
        clone = pickle.loads(pickle.dumps(state))
        clone.materialize()
        assert is_known_source("custom-src")


@needs_fork
class TestWorkerCrashes:
    """ISSUE satellite: worker death surfaces as PipelineError naming
    the stage and wave — never a deadlock or a bare traceback."""

    def crashing_builder(self, factory):
        registry = default_registry()
        registry.register_source(factory.name, factory)
        return CNProbaseBuilder(
            fast_config(workers=2, backend="processes"),
            registry=registry,
            resource_cache=ResourceCache(),
        )

    def test_worker_death_names_stage_and_wave(self, world):
        builder = self.crashing_builder(CrashSource)
        with pytest.raises(PipelineError) as err:
            builder.build(world.dump())
        message = str(err.value)
        assert "crash" in message and "wave 1" in message
        assert "processes backend" in message

    def test_builder_usable_after_crash(self, world):
        builder = self.crashing_builder(CrashSource)
        with pytest.raises(PipelineError):
            builder.build(world.dump())
        builder.registry.disable("crash")
        result = builder.build(world.dump())
        assert len(result.taxonomy) > 0

    def test_unpicklable_return_names_stage(self, world):
        builder = self.crashing_builder(UnpicklableReturnSource)
        with pytest.raises(PipelineError) as err:
            builder.build(world.dump())
        assert "unpicklable" in str(err.value)

    def test_unpicklable_task_names_stage(self, world):
        class LocalSource:  # unpicklable by reference: defined locally
            name = "local"
            requires = ()

            def generate(self, context):
                return []

        builder = self.crashing_builder(LocalSource)
        with pytest.raises(PipelineError) as err:
            builder.build(world.dump())
        assert "local" in str(err.value)

    def test_domain_errors_propagate_unwrapped(self, world):
        builder = self.crashing_builder(DomainErrorSource)
        with pytest.raises(PipelineError, match="the stage itself objects"):
            builder.build(world.dump())
