"""Tests for the pluggable stage architecture (repro.core.stages)."""

import pytest

from repro.core.pipeline import (
    CNProbaseBuilder,
    PipelineConfig,
    build_cn_probase,
)
from repro.core.stages import (
    GenerationSource,
    StageRegistry,
    Verifier,
    default_registry,
)
from repro.core.verification.incompatible import FilterDecision
from repro.encyclopedia import SyntheticWorld
from repro.errors import PipelineError
from repro.taxonomy.model import IsARelation

DEMO_CONCEPT = "演示概念"


def fast_config() -> PipelineConfig:
    return PipelineConfig(enable_abstract=False)


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(seed=11, n_entities=250)


class DemoSource:
    """Third-party generation stage: first pages isA 演示概念."""

    name = "demo"

    def generate(self, context):
        pages = list(context.dump)[:3]
        return [
            IsARelation(page.page_id, DEMO_CONCEPT, source="demo")
            for page in pages
        ]


class DemoVerifier:
    """Third-party verifier: vetoes every demo-concept candidate."""

    name = "demo-veto"

    def verify(self, context, relations):
        removed = [r for r in relations if r.hypernym == DEMO_CONCEPT]
        kept = [r for r in relations if r.hypernym != DEMO_CONCEPT]
        return FilterDecision(kept=kept, removed=removed)


class TestProtocols:
    def test_builtin_and_custom_stages_satisfy_protocols(self):
        registry = default_registry()
        for entry in registry.sources():
            assert isinstance(entry.factory(), GenerationSource)
        for entry in registry.verifiers():
            assert isinstance(entry.factory(), Verifier)
        assert isinstance(DemoSource(), GenerationSource)
        assert isinstance(DemoVerifier(), Verifier)


class TestRegistry:
    def test_default_order_matches_figure2(self):
        registry = default_registry()
        assert [e.name for e in registry.sources()] == [
            "bracket", "abstract", "infobox", "tag",
        ]
        assert [e.name for e in registry.verifiers()] == [
            "syntax", "ner", "incompatible",
        ]

    def test_registration_order_preserved(self):
        registry = StageRegistry()
        registry.register_source("a", DemoSource)
        registry.register_source("b", DemoSource)
        registry.register_source("front", DemoSource, index=0)
        assert [e.name for e in registry.sources()] == ["front", "a", "b"]

    def test_duplicate_name_rejected(self):
        registry = default_registry()
        with pytest.raises(PipelineError, match="already registered"):
            registry.register_source("bracket", DemoSource)
        with pytest.raises(PipelineError, match="already registered"):
            registry.register_verifier("bracket", DemoVerifier)

    def test_unknown_stage_rejected(self):
        registry = default_registry()
        with pytest.raises(PipelineError, match="unknown stage"):
            registry.disable("bogus")

    def test_origin_recorded(self):
        registry = default_registry()
        assert registry.get("bracket").origin == "builtin"
        entry = registry.register_source("demo3p", DemoSource)
        assert entry.origin == __name__

    def test_default_registries_are_independent(self):
        one, two = default_registry(), default_registry()
        one.disable("ner")
        assert not one.is_enabled("ner")
        assert two.is_enabled("ner")

    def test_copy_is_independent(self):
        registry = default_registry()
        duplicate = registry.copy()
        duplicate.disable("tag")
        assert registry.is_enabled("tag")
        assert [e.name for e in duplicate.entries()] == [
            e.name for e in registry.entries()
        ]


class TestCustomStages:
    def test_custom_source_flows_into_taxonomy(self, world):
        registry = default_registry()
        registry.register_source("demo", DemoSource)
        result = build_cn_probase(
            world.dump(), fast_config(), registry=registry
        )
        assert len(result.per_source_relations["demo"]) == 3
        assert result.taxonomy.get_entities(DEMO_CONCEPT)
        record = result.stage_trace.get("demo")
        assert record is not None and record.ran and record.count == 3

    def test_custom_verifier_vetoes(self, world):
        registry = default_registry()
        registry.register_source("demo", DemoSource)
        registry.register_verifier("demo-veto", DemoVerifier)
        result = build_cn_probase(
            world.dump(), fast_config(), registry=registry
        )
        assert len(result.removed_by["demo-veto"]) == 3
        assert not result.taxonomy.get_entities(DEMO_CONCEPT)
        assert result.stage_trace.get("demo-veto").count == 3

    def test_registry_disable_of_custom_stage(self, world):
        registry = default_registry()
        registry.register_source("demo", DemoSource)
        registry.disable("demo")
        result = build_cn_probase(
            world.dump(), fast_config(), registry=registry
        )
        assert "demo" not in result.per_source_relations
        assert result.stage_trace.get("demo").ran is False


class TestConfigRegistryEquivalence:
    @pytest.mark.parametrize("stage,flag", [
        ("infobox", "enable_infobox"),
        ("tag", "enable_tag"),
        ("ner", "enable_ner"),
        ("syntax", "enable_syntax"),
    ])
    def test_flag_equals_registry_disable(self, world, stage, flag):
        by_flag = build_cn_probase(
            world.dump(), PipelineConfig(enable_abstract=False, **{flag: False})
        )
        registry = default_registry()
        registry.disable(stage)
        by_registry = build_cn_probase(
            world.dump(), fast_config(), registry=registry
        )
        flag_keys = {r.key for r in by_flag.taxonomy.relations()}
        registry_keys = {r.key for r in by_registry.taxonomy.relations()}
        assert flag_keys == registry_keys
        assert set(by_flag.per_source_relations) == set(
            by_registry.per_source_relations
        )


class TestStageTrace:
    @pytest.fixture(scope="class")
    def result(self, world):
        return build_cn_probase(world.dump(), fast_config())

    def test_all_enabled_stages_traced(self, result):
        for name in ("bracket", "infobox", "tag",
                     "syntax", "ner", "incompatible"):
            record = result.stage_trace.get(name)
            assert record is not None and record.ran, name
            assert record.seconds >= 0.0

    def test_disabled_stage_traced_as_skipped(self, result):
        record = result.stage_trace.get("abstract")
        assert record is not None and record.ran is False

    def test_counts_match_result(self, result):
        for name, relations in result.per_source_relations.items():
            assert result.stage_trace.get(name).count == len(relations)
        for name, removed in result.removed_by.items():
            assert result.stage_trace.get(name).count == len(removed)

    def test_driver_steps_traced(self, result):
        for name in ("resources", "merge", "assemble"):
            record = result.stage_trace.get(name)
            assert record is not None and record.kind == "driver"

    def test_total_covers_stages(self, result):
        trace = result.stage_trace
        assert trace.total_seconds > 0.0
        assert trace.stage_seconds <= trace.total_seconds + 1e-6

    def test_builder_registry_is_per_instance(self, world):
        builder = CNProbaseBuilder(fast_config())
        builder.registry.disable("tag")
        result = builder.build(world.dump())
        assert "tag" not in result.per_source_relations
        other = CNProbaseBuilder(fast_config())
        assert other.registry.is_enabled("tag")
