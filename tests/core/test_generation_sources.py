"""Tests for tag extraction, predicate discovery and candidate merging."""

import pytest

from repro.core.generation.merge import CandidatePool
from repro.core.generation.predicates import PredicateDiscovery
from repro.core.generation.tags import TagExtractor
from repro.encyclopedia.model import EncyclopediaDump, EncyclopediaPage, Triple
from repro.taxonomy.model import IsARelation


def page(page_id, title, tags=(), infobox=(), bracket=None, abstract=""):
    return EncyclopediaPage(
        page_id=page_id, title=title, bracket=bracket,
        abstract=abstract, infobox=tuple(infobox), tags=tuple(tags),
    )


class TestTagExtractor:
    def test_tags_become_hypernyms(self):
        relations = TagExtractor().extract_from_page(
            page("刘德华#0", "刘德华", tags=("人物", "演员"))
        )
        assert {(r.hyponym, r.hypernym) for r in relations} == {
            ("刘德华#0", "人物"), ("刘德华#0", "演员"),
        }
        assert all(r.source == "tag" for r in relations)

    def test_self_tag_skipped(self):
        relations = TagExtractor().extract_from_page(
            page("演员#c", "演员", tags=("演员", "人物"))
        )
        assert [r.hypernym for r in relations] == ["人物"]

    def test_duplicates_and_empties_skipped(self):
        relations = TagExtractor().extract_from_page(
            page("a#0", "a", tags=("人物", "人物", " "))
        )
        assert len(relations) == 1

    def test_overlong_tag_skipped(self):
        relations = TagExtractor().extract_from_page(
            page("a#0", "a", tags=("这是一个特别长的标签字符串",))
        )
        assert relations == []

    def test_extract_many_pages(self):
        pages = [page("a#0", "a", tags=("人物",)), page("b#0", "b", tags=("作品",))]
        assert len(TagExtractor().extract(pages)) == 2


@pytest.fixture
def infobox_dump():
    pages = [
        page(
            "周杰伦#0", "周杰伦",
            infobox=[
                Triple("周杰伦#0", "职业", "歌手"),
                Triple("周杰伦#0", "出生地", "台湾"),
            ],
        ),
        page(
            "刘德华#0", "刘德华",
            infobox=[
                Triple("刘德华#0", "职业", "演员"),
                Triple("刘德华#0", "体重", "63"),
            ],
        ),
        page(
            "忘情水#0", "忘情水",
            infobox=[
                Triple("忘情水#0", "类型", "歌曲"),
                Triple("忘情水#0", "出生地", "歌曲"),  # accidental alignment
            ],
        ),
    ]
    return EncyclopediaDump(pages)


@pytest.fixture
def prior_relations():
    return [
        IsARelation("周杰伦#0", "歌手", "bracket"),
        IsARelation("刘德华#0", "演员", "bracket"),
        IsARelation("忘情水#0", "歌曲", "bracket"),
    ]


class TestPredicateDiscovery:
    def test_discovers_aligned_predicates(self, infobox_dump, prior_relations):
        result = PredicateDiscovery(min_aligned=1).discover(
            infobox_dump, prior_relations
        )
        names = {c.name for c in result.candidates}
        assert {"职业", "类型", "出生地"} <= names

    def test_support_ranks_true_predicates_first(self, infobox_dump, prior_relations):
        result = PredicateDiscovery(min_aligned=1).discover(
            infobox_dump, prior_relations
        )
        occupation = result.candidate("职业")
        birthplace = result.candidate("出生地")
        assert occupation.support == 1.0
        assert birthplace.support == 0.5
        assert result.candidates.index(occupation) < result.candidates.index(
            birthplace
        )

    def test_selection_respects_min_support(self, infobox_dump, prior_relations):
        result = PredicateDiscovery(min_aligned=1, min_support=0.9).discover(
            infobox_dump, prior_relations
        )
        assert "出生地" not in result.selected
        assert "职业" in result.selected

    def test_selection_respects_max(self, infobox_dump, prior_relations):
        result = PredicateDiscovery(min_aligned=1, max_selected=1).discover(
            infobox_dump, prior_relations
        )
        assert len(result.selected) == 1

    def test_extract_emits_relations(self, infobox_dump):
        relations = PredicateDiscovery().extract(infobox_dump, ["职业"])
        assert {(r.hyponym, r.hypernym) for r in relations} == {
            ("周杰伦#0", "歌手"), ("刘德华#0", "演员"),
        }
        assert all(r.source == "infobox" for r in relations)

    def test_extract_skips_non_cjk_values(self, infobox_dump):
        relations = PredicateDiscovery().extract(infobox_dump, ["体重"])
        assert relations == []

    def test_invalid_min_support(self):
        with pytest.raises(ValueError):
            PredicateDiscovery(min_support=1.5)

    def test_no_priors_no_candidates(self, infobox_dump):
        result = PredicateDiscovery().discover(infobox_dump, [])
        assert result.n_candidates == 0
        assert result.selected == []


class TestCandidatePool:
    def test_dedupes_across_sources(self):
        pool = CandidatePool()
        pool.add([IsARelation("a#0", "歌手", "tag")])
        pool.add([IsARelation("a#0", "歌手", "bracket")])
        assert len(pool) == 1
        # bracket has priority for provenance
        assert pool.relations()[0].source == "bracket"
        assert pool.sources_of(("a#0", "歌手")) == {"tag", "bracket"}

    def test_stats(self):
        pool = CandidatePool()
        pool.add([
            IsARelation("a#0", "歌手", "tag"),
            IsARelation("a#0", "歌手", "bracket"),
            IsARelation("b#0", "演员", "tag"),
        ])
        stats = pool.stats()
        assert stats.added == 3
        assert stats.unique == 2
        assert stats.per_source == {"tag": 2, "bracket": 1}

    def test_from_source_uses_provenance(self):
        pool = CandidatePool()
        pool.add([IsARelation("a#0", "歌手", "tag")])
        pool.add([IsARelation("a#0", "歌手", "bracket")])
        assert len(pool.from_source("tag")) == 1
        assert len(pool.from_source("bracket")) == 1
        assert pool.from_source("abstract") == []

    def test_reclassify_concept_pages(self):
        dump = EncyclopediaDump([
            page("男演员#c", "男演员", tags=("演员",)),
            page("刘德华#0", "刘德华", tags=("男演员",), bracket="男演员"),
        ])
        pool = CandidatePool()
        pool.add([
            IsARelation("男演员#c", "演员", "tag"),
            IsARelation("刘德华#0", "男演员", "tag"),
        ])
        rewritten = pool.reclassify_concept_pages(dump)
        assert rewritten == 1
        assert ("男演员", "演员") in pool
        assert ("男演员#c", "演员") not in pool
        rewritten_relation = next(
            r for r in pool.relations() if r.key == ("男演员", "演员")
        )
        assert rewritten_relation.hyponym_kind == "concept"

    def test_reclassify_keeps_bracketed_pages_as_entities(self):
        dump = EncyclopediaDump([
            page("苹果#1", "苹果", tags=("公司",), bracket="科技公司"),
            page("红富士#0", "红富士", tags=("苹果",)),
        ])
        pool = CandidatePool()
        pool.add([
            IsARelation("苹果#1", "公司", "tag"),
            IsARelation("红富士#0", "苹果", "tag"),
        ])
        assert pool.reclassify_concept_pages(dump) == 0
        assert ("苹果#1", "公司") in pool

    def test_reclassify_drops_self_loops(self):
        dump = EncyclopediaDump([
            page("演员#c", "演员", tags=()),
            page("a#0", "a", tags=("演员",)),
        ])
        pool = CandidatePool()
        pool.add([
            IsARelation("演员#c", "演员", "tag"),  # would become 演员→演员
            IsARelation("a#0", "演员", "tag"),
        ])
        pool.reclassify_concept_pages(dump)
        assert ("演员", "演员") not in pool
        assert ("演员#c", "演员") not in pool
