"""Tests for parallel execution: ExecutionPlan, worker equivalence,
verifier sharding and the build-context resource cache."""

import pytest

from repro.core.pipeline import (
    CNProbaseBuilder,
    PipelineConfig,
    ResourceCache,
    _split_chunks,
)
from repro.core.generation.neural_gen import NeuralGenConfig
from repro.core.stages import StageRegistry, default_registry, plan_execution
from repro.encyclopedia import SyntheticWorld
from repro.errors import PipelineError
from repro.nlp.lexicon import Lexicon


class StubSource:
    name = "stub"

    def generate(self, context):
        return []


def fast_config(workers: int = 1, **kwargs) -> PipelineConfig:
    kwargs.setdefault("enable_abstract", False)
    # The test world is tiny — force pools on so these tests keep
    # exercising the real parallel paths past the work floor.
    kwargs.setdefault("parallel_floor", 0)
    return PipelineConfig(workers=workers, **kwargs)


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(seed=17, n_entities=250)


def build_pair(world, **kwargs):
    """The same dump built serially and with four workers, isolated caches."""
    results = []
    for workers in (1, 4):
        builder = CNProbaseBuilder(
            fast_config(workers=workers, **kwargs),
            resource_cache=ResourceCache(),
        )
        results.append(builder.build(world.dump()))
    return results


class TestExecutionPlan:
    def test_default_waves(self):
        plan = plan_execution(default_registry(), PipelineConfig(), workers=4)
        waves = [[e.name for e in wave] for wave in plan.source_waves]
        assert waves == [["bracket", "tag"], ["abstract", "infobox"]]
        assert [e.name for e in plan.verifiers] == [
            "syntax", "ner", "incompatible",
        ]
        assert plan.parallel and plan.max_wave_width == 2

    def test_disabled_requirement_does_not_block(self):
        plan = plan_execution(
            default_registry(),
            PipelineConfig(enable_bracket=False),
            workers=4,
        )
        waves = [[e.name for e in wave] for wave in plan.source_waves]
        # abstract/infobox still run (and will see empty priors), in wave 1
        assert waves == [["abstract", "infobox", "tag"]]

    def test_unregistered_requirement_does_not_block(self):
        registry = StageRegistry()
        registry.register_source("stub", StubSource, requires=("missing",))
        plan = plan_execution(registry, PipelineConfig(), workers=2)
        assert [[e.name for e in w] for w in plan.source_waves] == [["stub"]]

    def test_cycle_detected(self):
        registry = StageRegistry()
        registry.register_source("a", StubSource, requires=("b",))
        registry.register_source("b", StubSource, requires=("a",))
        with pytest.raises(PipelineError, match="cycle"):
            plan_execution(registry, PipelineConfig())

    def test_self_requirement_rejected_at_registration(self):
        registry = StageRegistry()
        with pytest.raises(PipelineError, match="require itself"):
            registry.register_source("a", StubSource, requires=("a",))

    def test_requires_read_from_factory_attribute(self):
        registry = default_registry()
        assert registry.get("abstract").requires == ("bracket",)
        assert registry.get("infobox").requires == ("bracket",)
        assert registry.get("bracket").requires == ()

    def test_unannotated_source_scheduled_fully_sequentially(self):
        # A stage that declares nothing keeps the pre-planner serial
        # contract: it runs after every source registered before it.
        registry = default_registry()
        registry.register_source("legacy", StubSource)
        plan = plan_execution(registry, PipelineConfig(), workers=4)
        waves = [[e.name for e in w] for w in plan.source_waves]
        assert waves == [
            ["bracket", "tag"], ["abstract", "infobox"], ["legacy"],
        ]
        assert registry.get("legacy").requires is None

    def test_explicit_empty_requires_opts_into_first_wave(self):
        registry = default_registry()
        registry.register_source("eager", StubSource, requires=())
        plan = plan_execution(registry, PipelineConfig(), workers=4)
        assert "eager" in [e.name for e in plan.source_waves[0]]

    def test_unannotated_source_sees_predecessor_output(self, world):
        # Even at workers=4, a legacy source reading relations_from on a
        # source it never declared must observe its output.
        class TagReader:
            name = "tag-reader"

            def generate(self, context):
                from repro.taxonomy.model import IsARelation

                priors = context.relations_from("tag")
                if not priors:
                    return []
                return [IsARelation(
                    "阅读概念", "人物", source="tag-reader",
                    hyponym_kind="concept",
                )]

        from repro.core.stages import default_registry as make_registry

        registry = make_registry()
        registry.register_source("tag-reader", TagReader)
        builder = CNProbaseBuilder(
            fast_config(workers=4), registry=registry,
            resource_cache=ResourceCache(),
        )
        result = builder.build(world.dump())
        assert result.stage_trace.get("tag-reader").count == 1

    def test_copy_preserves_requires(self):
        duplicate = default_registry().copy()
        assert duplicate.get("abstract").requires == ("bracket",)

    def test_describe_lists_waves(self):
        plan = plan_execution(default_registry(), PipelineConfig(), workers=4)
        text = plan.describe()
        assert "workers=4" in text and "wave 1: bracket, tag" in text

    def test_invalid_workers_rejected(self):
        with pytest.raises(PipelineError, match="workers"):
            CNProbaseBuilder(PipelineConfig(workers=0))


class TestSplitChunks:
    def test_near_equal_contiguous(self):
        chunks = _split_chunks(list(range(10)), 4)
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7], [8, 9]]
        assert sum(chunks, []) == list(range(10))

    def test_fewer_items_than_chunks(self):
        assert _split_chunks([1, 2], 4) == [[1], [2]]

    def test_empty(self):
        assert _split_chunks([], 3) == []


class TestParallelEquivalence:
    """ISSUE satellite: workers=1 vs workers=4 on the same dump."""

    @pytest.fixture(scope="class")
    def pair(self, world):
        return build_pair(world)

    def test_save_output_identical(self, pair, tmp_path):
        serial, parallel = pair
        a, b = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
        serial.taxonomy.save(a)
        parallel.taxonomy.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_removed_by_counts_identical(self, pair):
        serial, parallel = pair
        assert {k: len(v) for k, v in serial.removed_by.items()} == \
            {k: len(v) for k, v in parallel.removed_by.items()}

    def test_removed_relations_identical_and_ordered(self, pair):
        serial, parallel = pair
        for name, removed in serial.removed_by.items():
            assert [r.key for r in removed] == \
                [r.key for r in parallel.removed_by[name]]

    def test_stage_trace_order_deterministic(self, pair):
        serial, parallel = pair
        assert [r.name for r in serial.stage_trace.records] == \
            [r.name for r in parallel.stage_trace.records]

    def test_per_source_relations_identical(self, pair):
        serial, parallel = pair
        assert list(serial.per_source_relations) == \
            list(parallel.per_source_relations)
        for name, relations in serial.per_source_relations.items():
            assert [r.key for r in relations] == \
                [r.key for r in parallel.per_source_relations[name]]

    def test_sources_merge_in_registration_order(self, pair):
        # Wave grouping runs tag before infobox, but the merge order fed
        # to the candidate pool must stay the registered one — that is
        # what keeps any-workers output bit-for-bit equal to the seed
        # pipeline's.
        for result in pair:
            assert list(result.per_source_relations) == [
                "bracket", "infobox", "tag",
            ]

    def test_sharded_verifier_traced_with_workers(self, pair):
        _, parallel = pair
        assert parallel.stage_trace.get("syntax").workers == 4
        # ner fits on the full relation list, so it must not shard
        assert parallel.stage_trace.get("ner").workers == 1

    def test_wave_members_share_worker_count(self, pair):
        _, parallel = pair
        assert parallel.stage_trace.get("bracket").workers == 2
        assert parallel.stage_trace.get("tag").workers == 2


class TestParallelEquivalenceWithNeural:
    def test_neural_wave_identical(self, world, tmp_path):
        serial, parallel = build_pair(
            world,
            enable_abstract=True,
            neural=NeuralGenConfig(epochs=2, embed_dim=12, hidden_dim=12),
            max_generation_pages=60,
        )
        a, b = tmp_path / "serial.jsonl", tmp_path / "parallel.jsonl"
        serial.taxonomy.save(a)
        parallel.taxonomy.save(b)
        assert a.read_bytes() == b.read_bytes()
        if serial.stage_trace.get("abstract").ran:
            assert parallel.stage_trace.get("abstract").ran


class TestResourceCache:
    def test_rebuild_hits_cache(self, world):
        cache = ResourceCache()
        builder = CNProbaseBuilder(fast_config(), resource_cache=cache)
        first = builder.build(world.dump())
        second = builder.build(world.dump())
        assert not first.stage_trace.get("resources").cache_hit
        assert second.stage_trace.get("resources").cache_hit
        assert cache.hits == 1 and cache.misses == 1
        assert [r.key for r in first.taxonomy.relations()] == \
            [r.key for r in second.taxonomy.relations()]

    def test_cache_shared_across_builders(self, world):
        cache = ResourceCache()
        CNProbaseBuilder(fast_config(), resource_cache=cache).build(world.dump())
        other = CNProbaseBuilder(fast_config(), resource_cache=cache)
        assert other.build(world.dump()).stage_trace.get("resources").cache_hit

    def test_changed_dump_misses(self, world):
        cache = ResourceCache()
        builder = CNProbaseBuilder(fast_config(), resource_cache=cache)
        builder.build(world.dump())
        other_dump = SyntheticWorld.generate(seed=23, n_entities=120).dump()
        result = builder.build(other_dump)
        assert not result.stage_trace.get("resources").cache_hit

    def test_resource_config_keys_cache(self, world):
        cache = ResourceCache()
        CNProbaseBuilder(
            fast_config(), resource_cache=cache
        ).build(world.dump())
        result = CNProbaseBuilder(
            fast_config(harvest_lexicon=False), resource_cache=cache
        ).build(world.dump())
        assert not result.stage_trace.get("resources").cache_hit

    def test_opt_out_flag(self, world):
        cache = ResourceCache()
        builder = CNProbaseBuilder(
            fast_config(resource_cache=False), resource_cache=cache
        )
        builder.build(world.dump())
        second = builder.build(world.dump())
        assert not second.stage_trace.get("resources").cache_hit
        assert len(cache) == 0

    def test_external_lexicon_not_cached(self, world):
        cache = ResourceCache()
        builder = CNProbaseBuilder(
            fast_config(), lexicon=Lexicon.base(), resource_cache=cache
        )
        builder.build(world.dump())
        assert len(cache) == 0

    def test_bounded_lru_evicts_oldest(self):
        cache = ResourceCache(maxsize=2)
        cache.put(("a",), "A")
        cache.put(("b",), "B")
        assert cache.get(("a",)) == "A"  # refresh a
        cache.put(("c",), "C")  # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "A" and cache.get(("c",)) == "C"

    def test_invalid_maxsize(self):
        with pytest.raises(PipelineError):
            ResourceCache(maxsize=0)


class TestDumpFingerprint:
    def test_stable_and_order_sensitive(self, world):
        dump = world.dump()
        assert dump.fingerprint() == dump.fingerprint()
        assert dump.fingerprint() == world.dump().fingerprint()

    def test_changes_on_add(self, world):
        from repro.encyclopedia.model import EncyclopediaPage

        dump = world.dump()
        before = dump.fingerprint()
        dump.add(EncyclopediaPage(page_id="新页#0", title="新页"))
        assert dump.fingerprint() != before
