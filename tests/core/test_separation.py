"""Tests for the PMI separation algorithm (Section II, Figure 3)."""

import pytest

from repro.core.generation.separation import (
    BracketExtractor,
    SeparationAlgorithm,
    SeparationNode,
)
from repro.encyclopedia.model import EncyclopediaPage
from repro.errors import SegmentationError
from repro.nlp.lexicon import Lexicon
from repro.nlp.pmi import PMIStatistics
from repro.nlp.segmentation import Segmenter


@pytest.fixture(scope="module")
def pmi():
    """Statistics reproducing the Figure 3 collocation structure."""
    stats = PMIStatistics()
    for _ in range(60):
        stats.add_sequence(["蚂蚁", "金服"])
    for _ in range(40):
        stats.add_sequence(["首席", "战略官"])
    for _ in range(25):
        stats.add_sequence(["著名", "歌手"])
    for _ in range(25):
        stats.add_sequence(["中国", "香港"])
    for _ in range(15):
        stats.add_sequence(["香港", "男演员"])
    return stats


@pytest.fixture(scope="module")
def algorithm(pmi):
    return SeparationAlgorithm(pmi)


class TestNode:
    def test_leaf(self):
        node = SeparationNode.leaf("歌手")
        assert node.is_leaf
        assert node.text == "歌手"

    def test_merge(self):
        merged = SeparationNode.merge(
            SeparationNode.leaf("著名"), SeparationNode.leaf("歌手")
        )
        assert not merged.is_leaf
        assert merged.text == "著名歌手"
        assert merged.words == ("著名", "歌手")


class TestFigure3:
    def test_tree_structure(self, algorithm):
        # 蚂蚁金服首席战略官 must bracket as ((蚂蚁⊕金服)(首席⊕战略官)).
        tree = algorithm.build_tree(["蚂蚁", "金服", "首席", "战略官"])
        assert tree.left.text == "蚂蚁金服"
        assert tree.right.text == "首席战略官"
        assert tree.right.right.text == "战略官"

    def test_hypernyms_are_rightmost_path(self, algorithm):
        hypernyms = algorithm.hypernyms(["蚂蚁", "金服", "首席", "战略官"])
        # Figure 3's blue phrases.
        assert hypernyms == ["首席战略官", "战略官"]

    def test_two_word_compound(self, algorithm):
        assert algorithm.hypernyms(["著名", "歌手"]) == ["歌手"]

    def test_single_word_is_its_own_hypernym(self, algorithm):
        assert algorithm.hypernyms(["歌手"]) == ["歌手"]

    def test_three_word_left_collocation(self, algorithm):
        # 中国香港男演员 → (中国⊕香港) ⊕ 男演员: hypernym is 男演员.
        hypernyms = algorithm.hypernyms(["中国", "香港", "男演员"])
        assert hypernyms[-1] == "男演员"
        assert "香港男演员" not in hypernyms[:1] or len(hypernyms) <= 2

    def test_empty_compound_raises(self, algorithm):
        with pytest.raises(SegmentationError):
            algorithm.build_tree([])

    def test_terminates_on_uniform_pmi(self):
        # All-unseen words: PMI is flat; fallback merging must terminate.
        algorithm = SeparationAlgorithm(PMIStatistics())
        tree = algorithm.build_tree(list("abcdef"))
        assert tree.text == "abcdef"

    def test_agglomerative_mode(self, pmi):
        algorithm = SeparationAlgorithm(pmi, agglomerative=True)
        tree = algorithm.build_tree(["蚂蚁", "金服", "首席", "战略官"])
        assert tree.left.text == "蚂蚁金服"

    def test_agglomerative_vs_sliding_on_figure3(self, pmi):
        sliding = SeparationAlgorithm(pmi)
        agglom = SeparationAlgorithm(pmi, agglomerative=True)
        words = ["蚂蚁", "金服", "首席", "战略官"]
        assert sliding.hypernyms(words) == agglom.hypernyms(words)


class TestBracketExtractor:
    @pytest.fixture(scope="class")
    def extractor(self, pmi):
        lexicon = Lexicon.base()
        lexicon.add("蚂蚁", 500, "n")
        lexicon.add("金服", 300, "n")
        lexicon.add("男演员", 400, "n")
        return BracketExtractor(Segmenter(lexicon), pmi)

    def test_figure3_page(self, extractor):
        page = EncyclopediaPage(
            page_id="陈龙#0", title="陈龙", bracket="蚂蚁金服首席战略官"
        )
        relations = extractor.extract_from_page(page)
        hypernyms = {r.hypernym for r in relations}
        assert "战略官" in hypernyms
        assert "首席战略官" in hypernyms
        assert all(r.source == "bracket" for r in relations)
        assert all(r.hyponym == "陈龙#0" for r in relations)

    def test_multi_phrase_bracket(self, extractor):
        page = EncyclopediaPage(
            page_id="刘德华#0", title="刘德华", bracket="男演员、歌手"
        )
        hypernyms = {r.hypernym for r in extractor.extract_from_page(page)}
        assert {"男演员", "歌手"} <= hypernyms

    def test_no_bracket_no_relations(self, extractor):
        page = EncyclopediaPage(page_id="a#0", title="a")
        assert extractor.extract_from_page(page) == []

    def test_numeric_bracket_filtered(self, extractor):
        page = EncyclopediaPage(page_id="a#0", title="a", bracket="1984")
        assert extractor.extract_from_page(page) == []

    def test_single_char_hypernym_filtered(self, extractor):
        page = EncyclopediaPage(page_id="a#0", title="a", bracket="鸟")
        assert extractor.extract_from_page(page) == []

    def test_duplicate_hypernyms_deduped(self, extractor):
        page = EncyclopediaPage(
            page_id="a#0", title="a", bracket="歌手、歌手"
        )
        relations = extractor.extract_from_page(page)
        assert len(relations) == 1

    def test_extract_over_pages(self, extractor):
        pages = [
            EncyclopediaPage(page_id="a#0", title="a", bracket="歌手"),
            EncyclopediaPage(page_id="b#0", title="b", bracket="男演员"),
        ]
        relations = extractor.extract(pages)
        assert len(relations) == 2
