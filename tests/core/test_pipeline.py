"""Integration tests for the end-to-end build pipeline (Figure 2)."""

import pytest

from repro.core.generation.neural_gen import NeuralGenConfig
from repro.core.pipeline import (
    BuildResult,
    CNProbaseBuilder,
    PipelineConfig,
    build_cn_probase,
)
from repro.encyclopedia import SyntheticWorld
from repro.encyclopedia.model import EncyclopediaDump
from repro.errors import PipelineError
from repro.eval.metrics import make_oracle, sample_precision


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(seed=17, n_entities=700)


@pytest.fixture(scope="module")
def result(world) -> BuildResult:
    config = PipelineConfig(
        neural=NeuralGenConfig(epochs=3, embed_dim=16, hidden_dim=20),
        max_generation_pages=120,
    )
    return build_cn_probase(world.dump(), config)


class TestBuild:
    def test_empty_dump_rejected(self):
        with pytest.raises(PipelineError):
            CNProbaseBuilder().build(EncyclopediaDump())

    def test_all_sources_contribute(self, result):
        for source in ("bracket", "tag", "infobox", "abstract"):
            assert source in result.per_source_relations, source
            assert result.per_source_relations[source], source

    def test_verifiers_all_fire(self, result):
        for verifier in ("syntax", "ner", "incompatible"):
            assert verifier in result.removed_by
            assert result.removed_by[verifier], verifier

    def test_precision_in_paper_band(self, result, world):
        oracle = make_oracle(world)
        estimate = sample_precision(
            result.taxonomy.relations(), oracle, 2000, seed=5
        )
        assert 0.92 <= estimate.precision <= 0.99, str(estimate)

    def test_verification_improves_over_pool(self, world, result):
        oracle = make_oracle(world)
        unverified = build_cn_probase(
            world.dump(),
            PipelineConfig(
                enable_syntax=False, enable_ner=False,
                enable_incompatible=False, enable_abstract=False,
            ),
        )
        raw = sample_precision(unverified.taxonomy.relations(), oracle, 2000, 5)
        verified = sample_precision(result.taxonomy.relations(), oracle, 2000, 5)
        assert verified.precision > raw.precision + 0.03

    def test_bracket_source_highly_precise(self, result, world):
        oracle = make_oracle(world)
        estimate = sample_precision(
            result.per_source_relations["bracket"], oracle, 2000, seed=5
        )
        # Paper: 96.2% raw bracket precision.
        assert estimate.precision >= 0.93, str(estimate)

    def test_discovery_selected_subset_of_candidates(self, result):
        discovery = result.discovery
        assert discovery is not None
        assert discovery.n_candidates > len(discovery.selected)
        candidate_names = {c.name for c in discovery.candidates}
        assert set(discovery.selected) <= candidate_names

    def test_selected_predicates_are_genuine(self, result):
        from repro.encyclopedia.synthesis.inventory import PREDICATE_WHITELIST

        assert set(result.discovery.selected) <= PREDICATE_WHITELIST

    def test_taxonomy_has_both_relation_kinds(self, result):
        stats = result.taxonomy.stats()
        assert stats.n_entity_concept > 0
        assert stats.n_subconcept_concept > 0
        assert stats.n_entity_concept > stats.n_subconcept_concept

    def test_concept_layer_is_acyclic(self, result):
        assert result.taxonomy.graph.is_dag()

    def test_mention_index_serves_entities(self, result, world):
        entity = world.entities[0]
        if result.taxonomy.has_entity(entity.page_id):
            assert entity.page_id in result.taxonomy.men2ent(entity.name)

    def test_training_report_present(self, result):
        assert result.training_report is not None
        assert result.training_report.epoch_losses

    def test_reclassified_concept_pages(self, result):
        assert result.reclassified > 0


class TestAblationSwitches:
    def test_disable_all_sources_yields_empty(self, world):
        config = PipelineConfig(
            enable_bracket=False, enable_abstract=False,
            enable_infobox=False, enable_tag=False,
        )
        result = build_cn_probase(world.dump(), config)
        assert len(result.taxonomy) == 0

    def test_tag_only_build(self, world):
        config = PipelineConfig(
            enable_bracket=False, enable_abstract=False, enable_infobox=False,
        )
        result = build_cn_probase(world.dump(), config)
        assert set(result.per_source_relations) == {"tag"}
        assert len(result.taxonomy) > 0

    def test_abstract_requires_bracket_priors(self, world):
        config = PipelineConfig(
            enable_bracket=False, enable_infobox=False, enable_tag=False,
        )
        result = build_cn_probase(world.dump(), config)
        # no bracket priors → no distant supervision → no abstract source
        assert "abstract" not in result.per_source_relations

    def test_each_verifier_removes_something(self, result):
        assert result.n_removed == sum(
            len(v) for v in result.removed_by.values()
        )
