"""Incremental rebuild tests: the delta equivalence contract end to end.

The non-negotiable contract: ``build_incremental(dump, previous)``
produces a taxonomy byte-identical (saved JSONL) to a full ``build`` on
the same dump, in every reuse mode — and applying its ``TaxonomyDelta``
to the previous taxonomy reproduces it exactly.
"""

import dataclasses

import pytest

from repro.core.pipeline import (
    CNProbaseBuilder,
    PipelineConfig,
    PreviousBuild,
    ResourceCache,
)
from repro.encyclopedia import SyntheticWorld
from repro.encyclopedia.model import (
    EncyclopediaDump,
    EncyclopediaPage,
    Triple,
    diff_dumps,
)
from repro.errors import PipelineError


def small_config(**overrides) -> PipelineConfig:
    return PipelineConfig(enable_abstract=False, **overrides)


@pytest.fixture(scope="module")
def base_dump():
    return SyntheticWorld.generate(seed=21, n_entities=250).dump()


def perturb(dump, *, bracket_every=40, drop=None, add=0):
    """A new dump with bracket edits, optional removals and additions."""
    pages = []
    for i, page in enumerate(dump.pages):
        if drop is not None and i in drop:
            continue
        if i % bracket_every == 5 and page.bracket:
            page = dataclasses.replace(
                page, bracket="中国著名" + page.bracket
            )
        pages.append(page)
    for i in range(add):
        pages.append(EncyclopediaPage(
            page_id=f"新增{i}#0",
            title=f"新增{i}",
            bracket="中国当代歌手",
            abstract=f"新增{i}是一位歌手。",
            infobox=(Triple(f"新增{i}#0", "职业", "歌手"),),
            tags=("人物", "歌手"),
        ))
    return EncyclopediaDump(pages)


def assert_equivalent(builder, dump_old, dump_new, tmp_path, label):
    """Core contract: incremental == full bytes, delta applies exactly."""
    previous_result = builder.build(dump_old)
    incremental = builder.build_incremental(
        dump_new, PreviousBuild.from_result(dump_old, previous_result)
    )
    full = CNProbaseBuilder(
        builder.config, registry=builder.registry.copy(),
        resource_cache=ResourceCache(),
    ).build(dump_new)

    inc_path = tmp_path / f"{label}-inc.jsonl"
    full_path = tmp_path / f"{label}-full.jsonl"
    applied_path = tmp_path / f"{label}-applied.jsonl"
    incremental.taxonomy.save(inc_path)
    full.taxonomy.save(full_path)
    assert inc_path.read_bytes() == full_path.read_bytes()

    previous_result.taxonomy.apply_delta(incremental.delta)
    previous_result.taxonomy.save(applied_path)
    assert applied_path.read_bytes() == full_path.read_bytes()
    return incremental


class TestEquivalenceContract:
    def test_lexicon_stable_change_uses_incremental_resources(
        self, base_dump, tmp_path
    ):
        builder = CNProbaseBuilder(
            small_config(), resource_cache=ResourceCache()
        )
        dump_new = perturb(base_dump)  # bracket edits keep the lexicon
        incremental = assert_equivalent(
            builder, base_dump, dump_new, tmp_path, "stable"
        )
        assert incremental.resource_mode == "incremental"
        assert incremental.stage_trace.get("resources").cache_hit
        assert not incremental.diff.is_empty
        assert incremental.diff.added == () and incremental.diff.removed == ()

    def test_added_and_removed_pages_fall_back_but_stay_exact(
        self, base_dump, tmp_path
    ):
        builder = CNProbaseBuilder(
            small_config(), resource_cache=ResourceCache()
        )
        dump_new = perturb(base_dump, drop={17, 99}, add=3)
        incremental = assert_equivalent(
            builder, base_dump, dump_new, tmp_path, "fallback"
        )
        # new titles harvest into the lexicon → conservative full re-derive
        assert incremental.resource_mode == "full"
        assert len(incremental.diff.added) == 3
        assert len(incremental.diff.removed) == 2
        assert incremental.delta.summary()["entities_removed"] >= 1

    def test_surfaces_moved_between_pages_still_fast_path(
        self, base_dump, tmp_path
    ):
        """Per-page contributions differ but the lexicon nets out equal:
        the re-harvest second chance keeps the fast path engaged."""
        pages = list(base_dump.pages)
        donor = next(i for i, p in enumerate(pages) if p.tags)
        receiver = next(
            i for i, p in enumerate(pages)
            if i != donor and pages[donor].tags[0] not in p.tags
        )
        moved = pages[donor].tags[0]
        pages[donor] = dataclasses.replace(
            pages[donor], tags=pages[donor].tags[1:]
        )
        pages[receiver] = dataclasses.replace(
            pages[receiver], tags=pages[receiver].tags + (moved,)
        )
        dump_new = EncyclopediaDump(pages)
        builder = CNProbaseBuilder(
            small_config(), resource_cache=ResourceCache()
        )
        incremental = assert_equivalent(
            builder, base_dump, dump_new, tmp_path, "moved"
        )
        assert incremental.resource_mode == "incremental"
        assert len(incremental.diff.changed) == 2

    def test_unchanged_dump_yields_empty_delta(self, base_dump, tmp_path):
        builder = CNProbaseBuilder(
            small_config(), resource_cache=ResourceCache()
        )
        same = EncyclopediaDump(list(base_dump.pages))
        incremental = assert_equivalent(
            builder, base_dump, same, tmp_path, "noop"
        )
        assert incremental.diff.is_empty
        assert incremental.delta.is_empty
        assert incremental.resource_mode == "cache"  # same fingerprint

    def test_parallel_incremental_build_is_identical(
        self, base_dump, tmp_path
    ):
        serial = CNProbaseBuilder(
            small_config(workers=1), resource_cache=ResourceCache()
        )
        parallel = CNProbaseBuilder(
            small_config(workers=4), resource_cache=ResourceCache()
        )
        dump_new = perturb(base_dump)
        a = assert_equivalent(serial, base_dump, dump_new, tmp_path, "w1")
        b = assert_equivalent(parallel, base_dump, dump_new, tmp_path, "w4")
        assert a.delta == b.delta

    def test_cold_previous_without_per_source_is_exact(
        self, base_dump, tmp_path
    ):
        """The CLI path: only the previous taxonomy + dump files exist."""
        config = small_config()
        previous_taxonomy = CNProbaseBuilder(
            config, resource_cache=ResourceCache()
        ).build(base_dump).taxonomy
        dump_new = perturb(base_dump)
        builder = CNProbaseBuilder(config, resource_cache=ResourceCache())
        incremental = builder.build_incremental(
            dump_new,
            PreviousBuild(dump=base_dump, taxonomy=previous_taxonomy),
        )
        full = CNProbaseBuilder(
            config, resource_cache=ResourceCache()
        ).build(dump_new)
        a, b = tmp_path / "cold.jsonl", tmp_path / "coldfull.jsonl"
        incremental.taxonomy.save(a)
        full.taxonomy.save(b)
        assert a.read_bytes() == b.read_bytes()
        # no per_source candidates → the tag stage could not replay
        assert not incremental.stage_trace.get("tag").cache_hit

    def test_empty_dump_rejected(self, base_dump):
        builder = CNProbaseBuilder(small_config())
        with pytest.raises(PipelineError):
            builder.build_incremental(
                EncyclopediaDump(),
                PreviousBuild(dump=base_dump, taxonomy=None),
            )


class TestGenerationReplay:
    def test_tag_stage_replays_for_unchanged_pages(self, base_dump):
        builder = CNProbaseBuilder(
            small_config(), resource_cache=ResourceCache()
        )
        previous = builder.build(base_dump)
        incremental = builder.build_incremental(
            perturb(base_dump),
            PreviousBuild.from_result(base_dump, previous),
        )
        tag_record = incremental.stage_trace.get("tag")
        assert tag_record.ran and tag_record.cache_hit
        # globally-coupled sources re-run in full, no replay flag
        assert not incremental.stage_trace.get("bracket").cache_hit

    def test_replayed_tag_candidates_match_full_run(self, base_dump):
        builder = CNProbaseBuilder(
            small_config(), resource_cache=ResourceCache()
        )
        previous = builder.build(base_dump)
        dump_new = perturb(base_dump, drop={10}, add=2)
        incremental = builder.build_incremental(
            dump_new, PreviousBuild.from_result(base_dump, previous)
        )
        full = CNProbaseBuilder(
            small_config(), resource_cache=ResourceCache()
        ).build(dump_new)
        assert incremental.per_source_relations["tag"] == \
            full.per_source_relations["tag"]


class TestResourceSignature:
    """Satellite: the cache key covers exactly the resource-shaping flags."""

    def test_non_resource_flag_still_hits_the_cache(self, base_dump):
        cache = ResourceCache()
        CNProbaseBuilder(small_config(), resource_cache=cache).build(
            base_dump
        )
        flipped = CNProbaseBuilder(
            small_config(enable_ner=False, enable_syntax=False, workers=2),
            resource_cache=cache,
        ).build(base_dump)
        assert flipped.stage_trace.get("resources").cache_hit

    @pytest.mark.parametrize(
        "overrides",
        [{"harvest_lexicon": False}, {"pmi_smoothing": 0.4}],
        ids=["harvest_lexicon", "pmi_smoothing"],
    )
    def test_resource_flag_misses_the_cache(self, base_dump, overrides):
        cache = ResourceCache(maxsize=4)
        CNProbaseBuilder(small_config(), resource_cache=cache).build(
            base_dump
        )
        flipped = CNProbaseBuilder(
            small_config(**overrides), resource_cache=cache
        ).build(base_dump)
        assert not flipped.stage_trace.get("resources").cache_hit

    def test_signature_lists_every_declared_resource_field(self):
        builder = CNProbaseBuilder(small_config())
        assert builder._resource_signature() == tuple(
            getattr(builder.config, name)
            for name in PipelineConfig.RESOURCE_FIELDS
        )
        assert "harvest_lexicon" in PipelineConfig.RESOURCE_FIELDS
        assert "pmi_smoothing" in PipelineConfig.RESOURCE_FIELDS

    def test_pmi_smoothing_actually_shapes_resources(self, base_dump):
        """The widened field is real: it changes the derived statistics."""
        cache_a, cache_b = ResourceCache(), ResourceCache()
        CNProbaseBuilder(
            small_config(), resource_cache=cache_a
        ).build(base_dump)
        CNProbaseBuilder(
            small_config(pmi_smoothing=0.9), resource_cache=cache_b
        ).build(base_dump)
        (key_a,) = cache_a._entries
        (key_b,) = cache_b._entries
        pmi_a = cache_a._entries[key_a].pmi
        pmi_b = cache_b._entries[key_b].pmi
        assert pmi_a.pmi("中国", "著名") != pmi_b.pmi("中国", "著名")
