"""Tests for the three verification heuristics (Section III)."""

import pytest

from repro.core.verification.incompatible import (
    IncompatibleConceptFilter,
    cosine,
    jaccard,
    kl_divergence,
)
from repro.core.verification.ner_filter import NEHypernymFilter, noisy_or
from repro.core.verification.syntax_rules import SyntaxRuleFilter
from repro.core.verification.thematic import THEMATIC_WORDS
from repro.encyclopedia.model import EncyclopediaDump, EncyclopediaPage, Triple
from repro.errors import PipelineError
from repro.nlp.lexicon import Lexicon
from repro.nlp.ner import NamedEntityRecognizer
from repro.nlp.segmentation import Segmenter
from repro.taxonomy.model import IsARelation


class TestThematicLexicon:
    def test_exactly_184_entries(self):
        assert len(THEMATIC_WORDS) == 184

    def test_contains_paper_examples(self):
        assert "政治" in THEMATIC_WORDS
        assert "军事" in THEMATIC_WORDS
        assert "音乐" in THEMATIC_WORDS

    def test_no_taxonomic_concepts(self):
        for concept in ("歌手", "演员", "公司", "水果"):
            assert concept not in THEMATIC_WORDS


def _person_page(page_id, name):
    return EncyclopediaPage(
        page_id=page_id, title=name,
        infobox=(
            Triple(page_id, "职业", "歌手"),
            Triple(page_id, "出生日期", "1990年1月1日"),
            Triple(page_id, "代表作品", "忘情水"),
        ),
    )


def _song_page(page_id, name):
    return EncyclopediaPage(
        page_id=page_id, title=name,
        infobox=(
            Triple(page_id, "类型", "歌曲"),
            Triple(page_id, "发行时间", "2001年2月2日"),
            Triple(page_id, "作者", "王伟"),
        ),
    )


class TestIncompatibleConcepts:
    @pytest.fixture
    def fitted(self):
        pages = [_person_page(f"p{i}#0", f"歌星{i}") for i in range(5)]
        pages += [_song_page(f"s{i}#0", f"曲子{i}") for i in range(5)]
        dump = EncyclopediaDump(pages)
        relations = [
            IsARelation(f"p{i}#0", "歌手", "tag") for i in range(5)
        ] + [
            IsARelation(f"s{i}#0", "歌曲", "tag") for i in range(5)
        ]
        filt = IncompatibleConceptFilter(min_concept_entities=3)
        filt.fit(relations, dump)
        return filt, relations, dump

    def test_person_vs_song_incompatible(self, fitted):
        filt, _, _ = fitted
        assert filt.incompatible("歌手", "歌曲")

    def test_concept_compatible_with_itself_entities(self, fitted):
        filt, _, _ = fitted
        assert not filt.incompatible("歌手", "歌手")

    def test_small_concepts_never_incompatible(self, fitted):
        filt, _, _ = fitted
        assert not filt.incompatible("歌手", "冷门概念")

    def test_kl_arbitration_removes_wrong_concept(self, fitted):
        filt, relations, dump = fitted
        # 歌星0 (a person) wrongly also claimed as 歌曲 (cross-sense leak).
        noisy = relations + [IsARelation("p0#0", "歌曲", "tag")]
        decision = filt.filter(noisy)
        removed_pairs = {(r.hyponym, r.hypernym) for r in decision.removed}
        assert ("p0#0", "歌曲") in removed_pairs
        assert ("p0#0", "歌手") not in removed_pairs

    def test_compatible_concepts_pass(self, fitted):
        filt, relations, _ = fitted
        decision = filt.filter(relations)
        assert decision.removed == []

    def test_filter_before_fit_raises(self):
        with pytest.raises(PipelineError):
            IncompatibleConceptFilter().filter([])

    def test_concept_relations_pass_through(self, fitted):
        filt, _, _ = fitted
        concept_rel = IsARelation("男歌手", "歌手", "tag", hyponym_kind="concept")
        decision = filt.filter([concept_rel])
        assert decision.kept == [concept_rel]


class TestMathHelpers:
    def test_jaccard(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)
        assert jaccard(set(), set()) == 0.0

    def test_cosine_identical(self):
        d = {"x": 0.5, "y": 0.5}
        assert cosine(d, d) == pytest.approx(1.0)

    def test_cosine_orthogonal(self):
        assert cosine({"x": 1.0}, {"y": 1.0}) == 0.0

    def test_kl_zero_for_identical(self):
        d = {"x": 0.5, "y": 0.5}
        assert kl_divergence(d, d) == pytest.approx(0.0, abs=1e-6)

    def test_kl_larger_for_disjoint(self):
        p = {"x": 1.0}
        close = {"x": 0.9, "y": 0.1}
        far = {"y": 1.0}
        assert kl_divergence(p, far) > kl_divergence(p, close)

    def test_noisy_or(self):
        assert noisy_or(0.0, 0.0) == 0.0
        assert noisy_or(1.0, 0.0) == 1.0
        assert noisy_or(0.5, 0.5) == pytest.approx(0.75)


class TestNEFilter:
    @pytest.fixture
    def fitted(self):
        recognizer = NamedEntityRecognizer()
        corpus = [["美国", "歌手"], ["美国", "出生"], ["歌手", "演唱"]]
        relations = [
            IsARelation("iPhone#0", "美国", "tag"),
            IsARelation("iPhone#0", "手机", "tag"),
            IsARelation("王伟#0", "歌手", "tag"),
        ]
        titles = {"iPhone#0": "iPhone", "王伟#0": "王伟"}
        filt = NEHypernymFilter(recognizer, threshold=0.55)
        filt.fit(corpus, relations, titles)
        return filt

    def test_paper_example_iphone_america(self, fitted):
        decision = fitted.filter([IsARelation("iPhone#0", "美国", "tag")])
        assert decision.n_removed == 1

    def test_common_concept_kept(self, fitted):
        decision = fitted.filter([IsARelation("iPhone#0", "手机", "tag")])
        assert decision.removed == []

    def test_entity_title_as_hypernym_removed(self, fitted):
        # 王伟 occurs as a hyponym title, so s2 flags it as an instance.
        decision = fitted.filter([IsARelation("iPhone#0", "王伟", "tag")])
        assert decision.n_removed == 1

    def test_s1_from_corpus(self, fitted):
        assert fitted.s1("美国") > 0.9
        assert fitted.s1("歌手") == 0.0

    def test_s2_balance(self, fitted):
        assert fitted.s2("歌手") == 0.0  # only ever a hypernym
        assert fitted.s2("王伟") == 1.0  # only ever a hyponym

    def test_support_combines(self, fitted):
        support = fitted.support("美国")
        assert support.combined >= support.s1

    def test_unfitted_raises(self):
        filt = NEHypernymFilter(NamedEntityRecognizer())
        with pytest.raises(PipelineError):
            filt.filter([])

    def test_bad_threshold_rejected(self):
        with pytest.raises(PipelineError):
            NEHypernymFilter(NamedEntityRecognizer(), threshold=0.0)


class TestSyntaxRules:
    @pytest.fixture(scope="class")
    def filt(self):
        lexicon = Lexicon.base()
        lexicon.add("教育机构", 300, "n")
        lexicon.add("机构", 500, "n")
        return SyntaxRuleFilter(Segmenter(lexicon))

    def test_thematic_hypernym_removed(self, filt):
        decision = filt.filter([IsARelation("a#0", "政治", "tag")], {"a#0": "某人"})
        assert decision.n_removed == 1
        assert filt.last_counts.thematic == 1

    def test_paper_head_stem_example(self, filt):
        # isA(教育机构, 教育) must be rejected by rule 2.
        decision = filt.filter(
            [IsARelation("教育机构", "教育", "tag", hyponym_kind="concept")]
        )
        # 教育 is thematic too; ensure removal happened either way
        assert decision.n_removed == 1

    def test_head_stem_non_thematic(self, filt):
        decision = filt.filter(
            [IsARelation("战略研究所", "战略官", "tag", hyponym_kind="concept")]
        )
        assert decision.n_removed == 1
        assert filt.last_counts.head_stem == 1

    def test_identity_removed(self, filt):
        decision = filt.filter(
            [IsARelation("a#0", "歌手", "tag")], {"a#0": "歌手"}
        )
        assert decision.n_removed == 1
        assert filt.last_counts.identity == 1

    def test_good_relation_kept(self, filt):
        decision = filt.filter(
            [IsARelation("a#0", "歌手", "tag")], {"a#0": "刘德华"}
        )
        assert decision.removed == []

    def test_valid_compound_kept(self, filt):
        # isA(流行歌手, 歌手) — stem in head position is fine.
        decision = filt.filter(
            [IsARelation("流行歌手", "歌手", "tag", hyponym_kind="concept")]
        )
        assert decision.removed == []
