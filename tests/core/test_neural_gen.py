"""Tests for the distant-supervision neural generation source."""

import pytest

from repro.core.generation.neural_gen import NeuralGenConfig, NeuralGenerator
from repro.core.generation.separation import BracketExtractor
from repro.encyclopedia import SyntheticWorld
from repro.errors import PipelineError
from repro.nlp.pmi import PMIStatistics
from repro.nlp.segmentation import Segmenter


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(seed=21, n_entities=400)


@pytest.fixture(scope="module")
def segmenter(world):
    return Segmenter(world.build_lexicon())


@pytest.fixture(scope="module")
def bracket_relations(world, segmenter):
    pmi = PMIStatistics()
    pmi.add_corpus(segmenter.segment_corpus(world.dump().text_corpus()))
    return BracketExtractor(segmenter, pmi).extract(world.dump())


class TestDatasetBuilding:
    def test_dataset_pairs_abstract_with_hypernym(
        self, world, segmenter, bracket_relations
    ):
        generator = NeuralGenerator(segmenter)
        dataset = generator.build_dataset(world.dump(), bracket_relations)
        assert len(dataset) > 50
        example = dataset[0]
        assert example.source
        assert example.target

    def test_pages_without_abstract_skipped(self, world, segmenter, bracket_relations):
        generator = NeuralGenerator(segmenter)
        dataset = generator.build_dataset(world.dump(), bracket_relations)
        # every source sequence is non-trivial (came from a real abstract)
        assert all(len(e.source) >= 3 for e in dataset)

    def test_non_bracket_relations_ignored(self, world, segmenter):
        from repro.taxonomy.model import IsARelation

        generator = NeuralGenerator(segmenter)
        dataset = generator.build_dataset(
            world.dump(), [IsARelation("x#0", "歌手", "tag")]
        )
        assert len(dataset) == 0


class TestTrainingAndExtraction:
    @pytest.fixture(scope="class")
    def trained(self, world, segmenter, bracket_relations):
        config = NeuralGenConfig(
            epochs=6, embed_dim=16, hidden_dim=20, lr=1e-2, min_confidence=0.2
        )
        generator = NeuralGenerator(segmenter, config)
        dataset = generator.build_dataset(world.dump(), bracket_relations)
        generator.train(dataset)
        return generator

    def test_training_improves_loss(self, trained):
        report = trained.last_report
        assert report.improved

    def test_is_trained_flag(self, segmenter):
        assert not NeuralGenerator(segmenter).is_trained

    def test_untrained_generation_raises(self, world, segmenter):
        generator = NeuralGenerator(segmenter)
        with pytest.raises(PipelineError):
            generator.generate_for_page(world.dump().pages[0])

    def test_extract_emits_abstract_relations(self, trained, world):
        pages = [p for p in world.dump() if p.has_abstract][:30]
        relations = trained.extract(pages)
        assert relations, "trained generator produced nothing"
        assert all(r.source == "abstract" for r in relations)
        assert all(r.hypernym != "" for r in relations)

    def test_generated_hypernyms_mostly_sensible(self, trained, world):
        from repro.eval.metrics import make_oracle, relation_precision

        oracle = make_oracle(world)
        pages = [p for p in world.dump() if p.has_abstract][:60]
        relations = trained.extract(pages)
        estimate = relation_precision(relations, oracle)
        assert estimate.precision >= 0.5, str(estimate)

    def test_train_on_too_small_dataset_raises(self, segmenter):
        from repro.neural.dataset import Seq2SeqDataset, Seq2SeqExample

        generator = NeuralGenerator(segmenter)
        tiny = Seq2SeqDataset(
            [Seq2SeqExample(source=("a",), target=("b",))]
        )
        with pytest.raises(PipelineError):
            generator.train(tiny)
