"""Tests for the synthetic world generator."""

import pytest

from repro.encyclopedia.synthesis.inventory import (
    CONCEPT_BY_NAME,
    CONCEPTS,
    ISA_PREDICATES_BY_KIND,
    PREDICATE_WHITELIST,
    concept_ancestors,
    leaf_concepts,
)
from repro.encyclopedia.synthesis.noise import NoiseConfig
from repro.encyclopedia.synthesis.world import SyntheticWorld


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(seed=11, n_entities=600)


class TestInventory:
    def test_every_parent_is_declared(self):
        for spec in CONCEPTS:
            for parent in spec.parents:
                assert parent in CONCEPT_BY_NAME, f"{spec.name}: {parent}"

    def test_leaves_have_weight(self):
        assert all(spec.weight > 0 for spec in leaf_concepts())

    def test_roots_exist_per_kind(self):
        roots = {spec.name for spec in CONCEPTS if not spec.parents}
        assert {"人物", "组织", "地点", "作品", "生物", "食品"} <= roots

    def test_concept_ancestors_transitive(self):
        assert concept_ancestors("物理学家") == {"科学家", "人物"}

    def test_twelve_whitelisted_predicates(self):
        assert len(PREDICATE_WHITELIST) == 12

    def test_every_kind_has_isa_predicates(self):
        kinds = {spec.kind for spec in CONCEPTS}
        for kind in kinds:
            assert ISA_PREDICATES_BY_KIND.get(kind), kind

    def test_isa_predicates_by_kind_are_whitelisted(self):
        for preds in ISA_PREDICATES_BY_KIND.values():
            for pred in preds:
                assert pred in PREDICATE_WHITELIST


class TestGeneration:
    def test_entity_count(self, world):
        assert len(world.entities) == 600

    def test_page_count_includes_concept_pages(self, world):
        assert len(world.dump()) == 600 + len(world.concept_page_ids)

    def test_deterministic(self):
        a = SyntheticWorld.generate(seed=3, n_entities=50)
        b = SyntheticWorld.generate(seed=3, n_entities=50)
        assert [p.to_dict() for p in a.dump()] == [p.to_dict() for p in b.dump()]

    def test_seeds_differ(self):
        a = SyntheticWorld.generate(seed=3, n_entities=50)
        b = SyntheticWorld.generate(seed=4, n_entities=50)
        assert [p.to_dict() for p in a.dump()] != [p.to_dict() for p in b.dump()]

    def test_invalid_entity_count(self):
        with pytest.raises(ValueError):
            SyntheticWorld.generate(seed=1, n_entities=0)

    def test_every_entity_has_a_leaf_concept(self, world):
        for entity in world.entities:
            assert entity.leaf_concepts
            for concept in entity.leaf_concepts:
                assert concept in world.concepts

    def test_gold_hypernyms_include_ancestors(self, world):
        for entity in world.entities[:50]:
            for leaf in entity.leaf_concepts:
                assert leaf in entity.gold_hypernyms
                for ancestor in world.concept_ancestors(leaf):
                    assert ancestor in entity.gold_hypernyms

    def test_some_entities_are_ambiguous(self, world):
        senses = world.mention_senses()
        assert any(len(ids) > 1 for ids in senses.values())

    def test_pages_have_four_sources(self, world):
        dump = world.dump()
        assert any(p.bracket for p in dump)
        assert any(p.has_abstract for p in dump)
        assert any(p.infobox for p in dump)
        assert all(isinstance(p.tags, tuple) for p in dump)

    def test_abstract_rate_matches_noise(self, world):
        dump = world.dump()
        rate = sum(1 for p in dump if p.has_abstract) / len(dump)
        assert 0.45 <= rate <= 0.75  # 1 - p_abstract_missing, roughly

    def test_noiseless_world_tags_are_all_gold(self):
        clean = SyntheticWorld.generate(
            seed=5, n_entities=300, noise=NoiseConfig.noiseless()
        )
        for entity in clean.entities:
            page = clean.dump().get(entity.page_id)
            for tag in page.tags:
                assert clean.is_gold_isa(entity.page_id, tag), (
                    entity.page_id, tag,
                )


class TestGoldOracle:
    def test_entity_gold_positive(self, world):
        entity = world.entities[0]
        assert world.is_gold_isa(entity.page_id, entity.leaf_concepts[0])

    def test_entity_gold_negative(self, world):
        entity = next(e for e in world.entities if e.kind == "person")
        assert not world.is_gold_isa(entity.page_id, "水果")

    def test_reflexive_is_false(self, world):
        assert not world.is_gold_isa("演员", "演员")

    def test_concept_pair_via_dag(self, world):
        assert world.is_gold_isa("物理学家", "人物")

    def test_concept_pair_via_suffix(self, world):
        assert world.is_gold_isa("男演员", "演员")

    def test_suffix_rule_requires_known_hypernym(self, world):
        assert not world.is_gold_isa("男演员", "员")

    def test_role_compound_chain_is_gold(self, world):
        # Role brackets register 首席战略官 isA 战略官 isA 人物 chains.
        if "战略官" in world.concepts:
            assert world.is_gold_isa("首席战略官", "战略官")

    def test_unknown_suffix_pair_not_gold(self, world):
        # A compound whose head is not a world concept stays non-gold.
        assert not world.is_gold_isa("某某奇词", "奇词")

    def test_empty_inputs(self, world):
        assert not world.is_gold_isa("", "演员")
        assert not world.is_gold_isa("演员", "")


class TestIntegrations:
    def test_ne_gazetteer_covers_people(self, world):
        gazetteer = world.ne_gazetteer()
        person = next(e for e in world.entities if e.kind == "person")
        assert gazetteer[person.name] == "person"

    def test_ne_gazetteer_excludes_biology(self, world):
        gazetteer = world.ne_gazetteer()
        bio = [e for e in world.entities if e.kind == "biology"]
        # biology titles may collide with other kinds; check one clean one
        clean = [e for e in bio if len(world.mention_senses()[e.name]) == 1]
        if clean:
            assert clean[0].name not in gazetteer

    def test_lexicon_contains_world_words(self, world):
        lexicon = world.build_lexicon()
        entity = world.entities[0]
        assert entity.name in lexicon
        for concept in world.concepts:
            assert concept in lexicon

    def test_infobox_isa_predicates_present(self, world):
        dump = world.dump()
        seen = set()
        for page in dump:
            for triple in page.infobox:
                if triple.predicate in PREDICATE_WHITELIST:
                    seen.add(triple.predicate)
        assert len(seen) >= 6

    def test_concept_pages_tag_parents(self, world):
        for page_id in world.concept_page_ids[:10]:
            page = world.dump().get(page_id)
            info = world.concepts[page.title]
            assert any(tag in info.parents for tag in page.tags)
