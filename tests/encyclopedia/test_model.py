"""Tests for the encyclopedia page/dump model and JSONL persistence."""

import pytest

from repro.encyclopedia.corpus import load_dump, save_dump
from repro.encyclopedia.model import (
    DumpDiff,
    EncyclopediaDump,
    EncyclopediaPage,
    Triple,
    diff_dumps,
)
from repro.errors import CorpusError


@pytest.fixture
def page():
    return EncyclopediaPage(
        page_id="刘德华#0",
        title="刘德华",
        bracket="中国香港男演员",
        abstract="刘德华，1961年出生于香港，著名演员、歌手。",
        infobox=(
            Triple("刘德华#0", "职业", "演员"),
            Triple("刘德华#0", "职业", "歌手"),
            Triple("刘德华#0", "体重", "63"),
        ),
        tags=("人物", "演员", "音乐"),
    )


class TestPage:
    def test_full_title_with_bracket(self, page):
        assert page.full_title == "刘德华（中国香港男演员）"

    def test_full_title_without_bracket(self):
        plain = EncyclopediaPage(page_id="a#0", title="a")
        assert plain.full_title == "a"

    def test_has_abstract(self, page):
        assert page.has_abstract
        assert not EncyclopediaPage(page_id="a#0", title="a").has_abstract

    def test_infobox_values(self, page):
        assert page.infobox_values("职业") == ["演员", "歌手"]
        assert page.infobox_values("missing") == []

    def test_empty_page_id_rejected(self):
        with pytest.raises(CorpusError):
            EncyclopediaPage(page_id="", title="a")

    def test_empty_title_rejected(self):
        with pytest.raises(CorpusError):
            EncyclopediaPage(page_id="a#0", title="")

    def test_round_trip_dict(self, page):
        assert EncyclopediaPage.from_dict(page.to_dict()) == page

    def test_from_dict_missing_key(self):
        with pytest.raises(CorpusError):
            EncyclopediaPage.from_dict({"title": "a"})

    def test_triple_round_trip(self):
        t = Triple("a", "b", "c")
        assert Triple.from_dict(t.to_dict()) == t

    def test_triple_from_bad_dict(self):
        with pytest.raises(CorpusError):
            Triple.from_dict({"s": "a"})


class TestDump:
    def test_add_and_get(self, page):
        dump = EncyclopediaDump([page])
        assert dump.get("刘德华#0") is page
        assert dump.get("missing") is None
        assert "刘德华#0" in dump
        assert len(dump) == 1

    def test_duplicate_id_rejected(self, page):
        dump = EncyclopediaDump([page])
        with pytest.raises(CorpusError):
            dump.add(page)

    def test_stats(self, page):
        dump = EncyclopediaDump([page, EncyclopediaPage(page_id="b#0", title="b")])
        stats = dump.stats()
        assert stats.n_pages == 2
        assert stats.n_abstracts == 1
        assert stats.n_triples == 3
        assert stats.n_tags == 3
        assert stats.as_dict()["pages"] == 2

    def test_text_corpus_contains_all_sources(self, page):
        dump = EncyclopediaDump([page])
        corpus = list(dump.text_corpus())
        assert page.abstract in corpus
        assert page.bracket in corpus
        assert "人物" in corpus

    def test_iteration_preserves_order(self, page):
        second = EncyclopediaPage(page_id="b#0", title="b")
        dump = EncyclopediaDump([page, second])
        assert [p.page_id for p in dump] == ["刘德华#0", "b#0"]


class TestDumpDiff:
    def _dump(self, *pages):
        return EncyclopediaDump(list(pages))

    def test_page_digest_is_content_addressed(self, page):
        import dataclasses

        same = EncyclopediaPage.from_dict(page.to_dict())
        assert page.digest() == same.digest()
        edited = dataclasses.replace(page, abstract=page.abstract + "！")
        assert edited.digest() != page.digest()

    def test_dump_fingerprint_derives_from_page_digests(self, page):
        dump = self._dump(page)
        assert dump.page_digests() == {page.page_id: page.digest()}
        fingerprint = dump.fingerprint()
        dump.add(EncyclopediaPage(page_id="b#0", title="b"))
        assert dump.fingerprint() != fingerprint  # memo invalidated by add
        assert set(dump.page_digests()) == {page.page_id, "b#0"}

    def test_identical_dumps_diff_empty(self, page):
        diff = diff_dumps(self._dump(page), self._dump(page))
        assert diff.is_empty
        assert diff.n_touched == 0
        assert diff.regenerate_ids() == frozenset()

    def test_added_changed_removed(self, page):
        import dataclasses

        kept = EncyclopediaPage(page_id="kept#0", title="kept")
        gone = EncyclopediaPage(page_id="gone#0", title="gone")
        old = self._dump(page, kept, gone)
        new = self._dump(
            dataclasses.replace(page, tags=page.tags + ("新标签",)),
            kept,
            EncyclopediaPage(page_id="new#0", title="new"),
        )
        diff = old.diff(new)
        assert diff.added == ("new#0",)
        assert diff.changed == (page.page_id,)
        assert diff.removed == ("gone#0",)
        assert diff.regenerate_ids() == {"new#0", page.page_id}

    def test_reordering_pages_is_not_a_change(self, page):
        other = EncyclopediaPage(page_id="b#0", title="b")
        assert diff_dumps(
            self._dump(page, other), self._dump(other, page)
        ).is_empty

    def test_round_trips_through_dict(self, page):
        old = self._dump(page)
        new = self._dump(EncyclopediaPage(page_id="n#0", title="n"))
        diff = diff_dumps(old, new)
        assert DumpDiff.from_dict(diff.as_dict()) == diff


class TestPersistence:
    def test_round_trip(self, page, tmp_path):
        dump = EncyclopediaDump([page])
        path = tmp_path / "dump.jsonl"
        assert save_dump(dump, path) == 1
        loaded = load_dump(path)
        assert loaded.pages == dump.pages

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CorpusError):
            load_dump(tmp_path / "nope.jsonl")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(CorpusError):
            load_dump(path)

    def test_blank_lines_skipped(self, page, tmp_path):
        path = tmp_path / "dump.jsonl"
        save_dump(EncyclopediaDump([page]), path)
        path.write_text(path.read_text(encoding="utf-8") + "\n\n", encoding="utf-8")
        assert len(load_dump(path)) == 1
