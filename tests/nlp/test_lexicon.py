"""Tests for the frequency lexicon."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LexiconError
from repro.nlp.lexicon import Lexicon

_CJK = st.text(alphabet="中美日歌手演员学家金服蚂蚁", min_size=1, max_size=6)


@pytest.fixture
def lex():
    lexicon = Lexicon()
    lexicon.add("歌手", 100, "n")
    lexicon.add("演员", 80, "n")
    lexicon.add("著名", 50, "a")
    return lexicon


class TestAdd:
    def test_contains(self, lex):
        assert "歌手" in lex
        assert "作家" not in lex

    def test_freq(self, lex):
        assert lex.freq("歌手") == 100
        assert lex.freq("missing") == 0

    def test_duplicate_accumulates(self, lex):
        lex.add("歌手", 20)
        assert lex.freq("歌手") == 120

    def test_pos_kept_on_duplicate(self, lex):
        lex.add("著名", 1, "n")
        assert lex.pos_of("著名") == "a"

    def test_default_pos_upgraded(self):
        lexicon = Lexicon()
        lexicon.add("北京", 1, "n")
        lexicon.add("北京", 1, "ns")
        assert lexicon.pos_of("北京") == "ns"

    def test_empty_word_rejected(self, lex):
        with pytest.raises(LexiconError):
            lex.add("")

    def test_non_positive_freq_rejected(self, lex):
        with pytest.raises(LexiconError):
            lex.add("词", 0)

    def test_total_tracks_weights(self, lex):
        assert lex.total == 230

    def test_len(self, lex):
        assert len(lex) == 3

    def test_add_all(self, lex):
        lex.add_all(["作家", "诗人"], freq=5)
        assert lex.freq("作家") == 5
        assert lex.freq("诗人") == 5

    def test_merge(self, lex):
        other = Lexicon()
        other.add("歌手", 10, "n")
        other.add("作家", 7, "n")
        lex.merge(other)
        assert lex.freq("歌手") == 110
        assert lex.freq("作家") == 7


class TestPrefixLookup:
    def test_words_starting_at(self):
        lexicon = Lexicon()
        lexicon.add("战略")
        lexicon.add("战略官")
        words = lexicon.words_starting_at("战略官员", 0)
        assert words == ["战略", "战略官"]

    def test_words_starting_at_no_match(self, lex):
        assert lex.words_starting_at("作家", 0) == []

    def test_words_starting_mid_string(self, lex):
        assert lex.words_starting_at("著名歌手", 2) == ["歌手"]

    def test_is_prefix(self, lex):
        assert lex.is_prefix("歌")
        assert not lex.is_prefix("歌手")  # full word, not a proper prefix

    def test_max_word_len(self):
        lexicon = Lexicon()
        lexicon.add("战略官")
        assert lexicon.max_word_len == 3


class TestLogProb:
    def test_known_word_beats_unknown(self, lex):
        assert lex.log_prob("歌手") > lex.log_prob("冷僻")

    def test_higher_freq_higher_prob(self, lex):
        assert lex.log_prob("歌手") > lex.log_prob("演员")

    def test_unknown_is_finite(self, lex):
        assert lex.log_prob("冷") > float("-inf")


class TestBase:
    def test_base_lexicon_nonempty(self):
        base = Lexicon.base()
        assert len(base) > 400

    def test_base_contains_core_concepts(self):
        base = Lexicon.base()
        for word in ("歌手", "演员", "公司", "大学", "水果", "战略官"):
            assert word in base, word

    def test_base_thematic_pos(self):
        base = Lexicon.base()
        assert base.pos_of("音乐") == "t"
        assert base.pos_of("政治") == "t"

    def test_base_returns_fresh_copy(self):
        a = Lexicon.base()
        b = Lexicon.base()
        a.add("新词", 1)
        assert "新词" not in b


@given(st.lists(st.tuples(_CJK, st.integers(1, 50)), min_size=1, max_size=30))
def test_total_equals_sum_of_weights(entries):
    lexicon = Lexicon()
    for word, freq in entries:
        lexicon.add(word, freq)
    assert lexicon.total == sum(freq for _, freq in entries)


@given(st.lists(_CJK, min_size=1, max_size=20))
def test_every_added_word_is_found_at_its_position(words):
    lexicon = Lexicon()
    for word in words:
        lexicon.add(word)
    text = "".join(words)
    pos = 0
    for word in words:
        assert word in lexicon.words_starting_at(text, pos)
        pos += len(word)
