"""Tests for the DAG-Viterbi segmenter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SegmentationError
from repro.nlp.lexicon import Lexicon
from repro.nlp.segmentation import Segmenter


@pytest.fixture(scope="module")
def segmenter():
    lexicon = Lexicon.base()
    lexicon.add("蚂蚁", 500, "n")
    lexicon.add("金服", 300, "n")
    lexicon.add("刘德华", 400, "nr")
    return Segmenter(lexicon)


class TestSegment:
    def test_figure3_compound(self, segmenter):
        # The paper's Figure 3 example: the bracket compound of 陈龙.
        assert segmenter.segment("蚂蚁金服首席战略官") == [
            "蚂蚁", "金服", "首席", "战略官",
        ]

    def test_simple_compound(self, segmenter):
        assert segmenter.segment("著名歌手") == ["著名", "歌手"]

    def test_prefers_long_known_words(self, segmenter):
        assert segmenter.segment("刘德华") == ["刘德华"]

    def test_unknown_chars_fall_back_to_singles(self, segmenter):
        tokens = segmenter.segment("囍囍")
        assert tokens == ["囍", "囍"]

    def test_latin_run_kept_whole(self, segmenter):
        assert "iPhone" in segmenter.segment("iPhone手机")

    def test_digits_kept_whole(self, segmenter):
        assert "1961" in segmenter.segment("1961年出生")

    def test_whitespace_dropped(self, segmenter):
        tokens = segmenter.segment("著名 歌手")
        assert tokens == ["著名", "歌手"]

    def test_punctuation_dropped_by_default(self, segmenter):
        tokens = segmenter.segment("演员、歌手")
        assert "、" not in tokens

    def test_punctuation_kept_on_request(self, segmenter):
        tokens = segmenter.segment("演员、歌手", keep_punctuation=True)
        assert "、" in tokens

    def test_empty_raises(self, segmenter):
        with pytest.raises(SegmentationError):
            segmenter.segment("")

    def test_whitespace_only_raises(self, segmenter):
        with pytest.raises(SegmentationError):
            segmenter.segment("   ")

    def test_fullwidth_normalised_before_segmenting(self, segmenter):
        assert "ABC" in segmenter.segment("ＡＢＣ公司")

    def test_mixed_sentence(self, segmenter):
        tokens = segmenter.segment("刘德华是中国香港著名歌手")
        assert "刘德华" in tokens
        assert "歌手" in tokens

    def test_default_lexicon_used_when_none(self):
        seg = Segmenter()
        assert seg.segment("著名歌手") == ["著名", "歌手"]


class TestSegmentCorpus:
    def test_skips_empty_texts(self, segmenter):
        corpus = segmenter.segment_corpus(["著名歌手", "", "演员"])
        assert len(corpus) == 2

    def test_returns_token_lists(self, segmenter):
        corpus = segmenter.segment_corpus(["著名歌手"])
        assert corpus == [["著名", "歌手"]]


@given(st.text(alphabet="中美日本歌手演员著名公司大学", min_size=1, max_size=12))
def test_segmentation_is_lossless_for_cjk(text):
    seg = Segmenter()
    assert "".join(seg.segment(text)) == text


@given(st.text(alphabet="中abc1 ，。", min_size=1, max_size=12))
def test_segmentation_never_crashes_on_mixed_text(text):
    seg = Segmenter()
    try:
        tokens = seg.segment(text)
    except SegmentationError:
        return
    assert all(tokens)


class TestViterbiCache:
    def test_repeated_segment_hits_cache(self):
        segmenter = Segmenter()
        first = segmenter.segment("中国人民大学")
        info = segmenter.cache_info()
        assert info.misses >= 1
        again = segmenter.segment("中国人民大学")
        assert again == first
        assert segmenter.cache_info().hits > info.hits

    def test_cached_results_are_fresh_lists(self):
        segmenter = Segmenter()
        first = segmenter.segment("中国人民大学")
        first.append("垃圾")
        assert segmenter.segment("中国人民大学") != first

    def test_lexicon_mutation_invalidates(self):
        lexicon = Lexicon.base()
        segmenter = Segmenter(lexicon)
        before = segmenter.segment("蚂蚁金服")
        lexicon.add("蚂蚁金服", 10_000, "n")
        after = segmenter.segment("蚂蚁金服")
        assert after == ["蚂蚁金服"]
        assert before != after

    def test_cache_can_be_disabled(self):
        segmenter = Segmenter(cache_size=0)
        segmenter.segment("中国人民大学")
        segmenter.segment("中国人民大学")
        assert segmenter.cache_info().currsize == 0

    def test_cache_matches_uncached_segmentation(self):
        lexicon = Lexicon.base()
        cached = Segmenter(lexicon)
        uncached = Segmenter(lexicon, cache_size=0)
        texts = ["中国人民大学", "蚂蚁金服首席战略官", "刘德华是演员",
                 "中国人民大学", "蚂蚁金服首席战略官"]
        for text in texts:
            assert cached.segment(text) == uncached.segment(text)
