"""Tests for the DAG-Viterbi segmenter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SegmentationError
from repro.nlp.lexicon import Lexicon
from repro.nlp.segmentation import Segmenter


@pytest.fixture(scope="module")
def segmenter():
    lexicon = Lexicon.base()
    lexicon.add("蚂蚁", 500, "n")
    lexicon.add("金服", 300, "n")
    lexicon.add("刘德华", 400, "nr")
    return Segmenter(lexicon)


class TestSegment:
    def test_figure3_compound(self, segmenter):
        # The paper's Figure 3 example: the bracket compound of 陈龙.
        assert segmenter.segment("蚂蚁金服首席战略官") == [
            "蚂蚁", "金服", "首席", "战略官",
        ]

    def test_simple_compound(self, segmenter):
        assert segmenter.segment("著名歌手") == ["著名", "歌手"]

    def test_prefers_long_known_words(self, segmenter):
        assert segmenter.segment("刘德华") == ["刘德华"]

    def test_unknown_chars_fall_back_to_singles(self, segmenter):
        tokens = segmenter.segment("囍囍")
        assert tokens == ["囍", "囍"]

    def test_latin_run_kept_whole(self, segmenter):
        assert "iPhone" in segmenter.segment("iPhone手机")

    def test_digits_kept_whole(self, segmenter):
        assert "1961" in segmenter.segment("1961年出生")

    def test_whitespace_dropped(self, segmenter):
        tokens = segmenter.segment("著名 歌手")
        assert tokens == ["著名", "歌手"]

    def test_punctuation_dropped_by_default(self, segmenter):
        tokens = segmenter.segment("演员、歌手")
        assert "、" not in tokens

    def test_punctuation_kept_on_request(self, segmenter):
        tokens = segmenter.segment("演员、歌手", keep_punctuation=True)
        assert "、" in tokens

    def test_empty_raises(self, segmenter):
        with pytest.raises(SegmentationError):
            segmenter.segment("")

    def test_whitespace_only_raises(self, segmenter):
        with pytest.raises(SegmentationError):
            segmenter.segment("   ")

    def test_fullwidth_normalised_before_segmenting(self, segmenter):
        assert "ABC" in segmenter.segment("ＡＢＣ公司")

    def test_mixed_sentence(self, segmenter):
        tokens = segmenter.segment("刘德华是中国香港著名歌手")
        assert "刘德华" in tokens
        assert "歌手" in tokens

    def test_default_lexicon_used_when_none(self):
        seg = Segmenter()
        assert seg.segment("著名歌手") == ["著名", "歌手"]


class TestSegmentCorpus:
    def test_skips_empty_texts(self, segmenter):
        corpus = segmenter.segment_corpus(["著名歌手", "", "演员"])
        assert len(corpus) == 2

    def test_returns_token_lists(self, segmenter):
        corpus = segmenter.segment_corpus(["著名歌手"])
        assert corpus == [["著名", "歌手"]]


@given(st.text(alphabet="中美日本歌手演员著名公司大学", min_size=1, max_size=12))
def test_segmentation_is_lossless_for_cjk(text):
    seg = Segmenter()
    assert "".join(seg.segment(text)) == text


@given(st.text(alphabet="中abc1 ，。", min_size=1, max_size=12))
def test_segmentation_never_crashes_on_mixed_text(text):
    seg = Segmenter()
    try:
        tokens = seg.segment(text)
    except SegmentationError:
        return
    assert all(tokens)
