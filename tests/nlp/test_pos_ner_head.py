"""Tests for POS tagging, NER and lexical-head rules."""

import pytest

from repro.nlp.head import head_stem_violates, lexical_head, stem
from repro.nlp.lexicon import Lexicon
from repro.nlp.ner import NamedEntityRecognizer
from repro.nlp.pos import POSTagger


@pytest.fixture(scope="module")
def tagger():
    return POSTagger()


@pytest.fixture
def ner():
    return NamedEntityRecognizer()


class TestPOS:
    def test_lexicon_noun(self, tagger):
        assert tagger.tag("歌手") == "n"

    def test_lexicon_adjective(self, tagger):
        assert tagger.tag("著名") == "a"

    def test_lexicon_verb(self, tagger):
        assert tagger.tag("出生") == "v"

    def test_thematic(self, tagger):
        assert tagger.tag("音乐") == "t"
        assert tagger.is_thematic("政治")

    def test_place(self, tagger):
        assert tagger.tag("北京") == "ns"

    def test_digits_are_numeral(self, tagger):
        assert tagger.tag("1961") == "m"

    def test_latin_is_x(self, tagger):
        assert tagger.tag("iPhone") == "x"

    def test_suffix_rule_noun(self, tagger):
        assert tagger.tag("雕刻家") == "n"

    def test_surname_pattern(self, tagger):
        assert tagger.tag("王伟") == "nr"

    def test_unknown_cjk_defaults_to_noun(self, tagger):
        assert tagger.tag("冷僻词") == "n"

    def test_empty_is_x(self, tagger):
        assert tagger.tag("") == "x"

    def test_is_noun_accepts_ns(self, tagger):
        assert tagger.is_noun("北京")

    def test_is_noun_rejects_thematic(self, tagger):
        assert not tagger.is_noun("音乐")

    def test_tag_sequence(self, tagger):
        assert tagger.tag_sequence(["著名", "歌手"]) == ["a", "n"]


class TestNER:
    def test_gazetteer_hit(self, ner):
        ner.register("刘德华", "person")
        assert ner.classify("刘德华") == ("person", 1.0)

    def test_gazetteer_size(self, ner):
        ner.register_all(["刘德华", "周杰伦"], "person")
        assert ner.gazetteer_size == 2

    def test_lexicon_place(self, ner):
        netype, conf = ner.classify("美国")
        assert netype == "place"
        assert conf >= 0.9

    def test_place_suffix_pattern(self, ner):
        netype, _ = ner.classify("临安市")
        assert netype == "place"

    def test_org_suffix_pattern(self, ner):
        netype, _ = ner.classify("复旦大学")
        assert netype == "organisation"

    def test_bare_org_suffix_is_not_ne(self, ner):
        # 大学 alone is a concept, not a named entity.
        assert ner.classify("大学") is None

    def test_person_name_pattern(self, ner):
        netype, conf = ner.classify("王伟")
        assert netype == "person"
        assert conf == pytest.approx(0.7)

    def test_common_noun_is_not_ne(self, ner):
        assert ner.classify("歌手") is None

    def test_thematic_word_is_not_ne(self, ner):
        assert ner.classify("音乐") is None

    def test_latin_token_is_weak_ne(self, ner):
        netype, conf = ner.classify("iPhone")
        assert netype == "other"
        assert conf < 0.9

    def test_pure_digits_are_not_ne(self, ner):
        assert ner.classify("1961") is None

    def test_empty_is_none(self, ner):
        assert ner.classify("") is None

    def test_is_named_entity_threshold(self, ner):
        assert ner.is_named_entity("美国")
        assert not ner.is_named_entity("王伟", min_confidence=0.9)

    def test_corpus_support_ratio(self, ner):
        corpus = [["美国", "歌手"], ["美国", "演员"], ["歌手"]]
        support = ner.corpus_support(corpus)
        assert support["美国"].ratio > 0.9
        assert support["歌手"].ratio == 0.0
        assert support["美国"].total == 2
        assert support["歌手"].total == 2

    def test_corpus_support_graded_for_person_pattern(self, ner):
        support = ner.corpus_support([["王伟"]])
        assert 0.5 < support["王伟"].ratio < 1.0

    def test_registered_word_in_lexicon_still_ne(self):
        lexicon = Lexicon.base()
        recognizer = NamedEntityRecognizer(lexicon)
        recognizer.register("音乐", "work")  # pathological but allowed
        assert recognizer.classify("音乐") == ("work", 1.0)


class TestHead:
    def test_lexical_head_is_rightmost(self):
        assert lexical_head(["教育", "机构"]) == "机构"

    def test_lexical_head_empty_raises(self):
        with pytest.raises(ValueError):
            lexical_head([])

    def test_stem_strips_role_suffix(self):
        assert stem("战略官") == "战略"
        assert stem("教育家") == "教育"

    def test_stem_keeps_short_words(self):
        assert stem("歌手") == "歌手"

    def test_paper_example_violation(self):
        # isA(教育机构, 教育) must be rejected.
        assert head_stem_violates(["教育", "机构"], ["教育"])

    def test_single_token_hyponym_violation(self):
        assert head_stem_violates(["教育机构"], ["教育"])

    def test_valid_pair_passes(self):
        # isA(流行歌手, 歌手) is fine: the stem occurs in head position.
        assert not head_stem_violates(["流行", "歌手"], ["歌手"])

    def test_role_suffix_hypernym(self):
        # isA(战略研究所, 战略官) → stem 战略 occurs in non-head position.
        assert head_stem_violates(["战略", "研究所"], ["战略官"])

    def test_unrelated_pair_passes(self):
        assert not head_stem_violates(["蚂蚁", "金服"], ["公司"])

    def test_empty_inputs_pass(self):
        assert not head_stem_violates([], ["歌手"])
        assert not head_stem_violates(["歌手"], [])
