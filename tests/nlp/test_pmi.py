"""Tests for PMI statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nlp.pmi import PMIStatistics

_WORDS = st.sampled_from(["蚂蚁", "金服", "首席", "战略官", "歌手", "演员"])


@pytest.fixture
def stats():
    s = PMIStatistics()
    # 蚂蚁金服 is a strong collocation; 金服+首席 never co-occur.
    for _ in range(50):
        s.add_sequence(["蚂蚁", "金服"])
    for _ in range(30):
        s.add_sequence(["首席", "战略官"])
    for _ in range(20):
        s.add_sequence(["著名", "歌手"])
    s.add_sequence(["蚂蚁", "歌手"])
    return s


class TestCounts:
    def test_unigram_count(self, stats):
        assert stats.unigram_count("蚂蚁") == 51

    def test_bigram_count(self, stats):
        assert stats.bigram_count("蚂蚁", "金服") == 50

    def test_bigram_is_directional(self, stats):
        assert stats.bigram_count("金服", "蚂蚁") == 0

    def test_totals(self, stats):
        assert stats.total_unigrams == 202
        assert stats.total_bigrams == 101

    def test_vocabulary_size(self, stats):
        # 蚂蚁 金服 首席 战略官 著名 歌手
        assert stats.vocabulary_size == 6

    def test_single_word_sequence_adds_no_bigram(self):
        s = PMIStatistics()
        s.add_sequence(["蚂蚁"])
        assert s.total_bigrams == 0
        assert s.total_unigrams == 1

    def test_add_corpus(self):
        s = PMIStatistics()
        s.add_corpus([["a", "b"], ["a", "b"]])
        assert s.bigram_count("a", "b") == 2


class TestPMI:
    def test_collocation_beats_non_collocation(self, stats):
        assert stats.pmi("蚂蚁", "金服") > stats.pmi("金服", "首席")

    def test_figure3_comparison_chain(self, stats):
        # PMI(金服, 首席) < PMI(首席, 战略官) drives the first merge of the
        # separation algorithm on 蚂蚁金服首席战略官.
        assert stats.pmi("金服", "首席") < stats.pmi("首席", "战略官")
        # PMI(蚂蚁, 金服) > PMI(金服, 首席战略官-boundary 首席) drives step 4.
        assert stats.pmi("蚂蚁", "金服") > stats.pmi("金服", "首席")

    def test_rare_pair_still_positive_association(self, stats):
        assert stats.pmi("蚂蚁", "歌手") < stats.pmi("蚂蚁", "金服")

    def test_unseen_pair_is_finite(self, stats):
        value = stats.pmi("歌手", "战略官")
        assert value < 0
        assert value != float("-inf")

    def test_unseen_words_are_finite(self, stats):
        assert stats.pmi("新词", "另词") != float("-inf")

    def test_empty_stats_return_zero(self):
        assert PMIStatistics().pmi("a", "b") == 0.0

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError):
            PMIStatistics(smoothing=0)


class TestCohesion:
    def test_single_word_is_zero(self, stats):
        assert stats.cohesion(["蚂蚁"]) == 0.0

    def test_collocation_has_higher_cohesion(self, stats):
        assert stats.cohesion(["蚂蚁", "金服"]) > stats.cohesion(["金服", "首席"])


@given(st.lists(st.lists(_WORDS, min_size=1, max_size=5), min_size=1, max_size=20))
def test_totals_are_consistent(sequences):
    s = PMIStatistics()
    s.add_corpus(sequences)
    assert s.total_unigrams == sum(len(seq) for seq in sequences)
    assert s.total_bigrams == sum(len(seq) - 1 for seq in sequences)


@given(_WORDS, _WORDS)
def test_pmi_symmetric_inputs_do_not_crash(a, b):
    s = PMIStatistics()
    s.add_sequence(["蚂蚁", "金服", "首席", "战略官"])
    assert isinstance(s.pmi(a, b), float)


class TestIncrementalCounts:
    """clone / remove_sequence: the incremental build's PMI advance."""

    def test_remove_undoes_add_exactly(self):
        from repro.nlp.pmi import PMIStatistics

        base = [["中国", "歌手"], ["著名", "演员", "歌手"]]
        extra = ["中国", "著名", "歌手"]
        never = PMIStatistics()
        never.add_corpus(base)
        undone = PMIStatistics()
        undone.add_corpus(base)
        undone.add_sequence(extra)
        undone.remove_sequence(extra)
        assert undone.same_counts(never)
        assert undone.vocabulary_size == never.vocabulary_size  # no zeros
        assert undone.pmi("中国", "歌手") == never.pmi("中国", "歌手")

    def test_clone_is_independent(self):
        from repro.nlp.pmi import PMIStatistics

        original = PMIStatistics()
        original.add_sequence(["中国", "歌手"])
        copy = original.clone()
        assert copy.same_counts(original)
        copy.add_sequence(["著名", "演员"])
        assert not copy.same_counts(original)
        assert original.unigram_count("著名") == 0

    def test_subtract_add_matches_fresh_recount(self):
        from repro.nlp.pmi import PMIStatistics

        old_corpus = [["中国", "歌手"], ["旧", "文本"], ["著名", "演员"]]
        new_corpus = [["中国", "歌手"], ["新", "文本", "内容"], ["著名", "演员"]]
        fresh = PMIStatistics()
        fresh.add_corpus(new_corpus)
        advanced = PMIStatistics()
        advanced.add_corpus(old_corpus)
        advanced = advanced.clone()
        advanced.remove_sequence(old_corpus[1])
        advanced.add_sequence(new_corpus[1])
        assert advanced.same_counts(fresh)
