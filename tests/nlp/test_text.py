"""Tests for repro.nlp.text utilities."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nlp.text import (
    char_ngrams,
    is_cjk_char,
    is_cjk_word,
    iter_cjk_runs,
    normalize_text,
    split_phrases,
    strip_brackets,
)


class TestIsCjk:
    def test_common_ideograph(self):
        assert is_cjk_char("中")

    def test_latin_is_not_cjk(self):
        assert not is_cjk_char("a")

    def test_digit_is_not_cjk(self):
        assert not is_cjk_char("9")

    def test_chinese_punctuation_is_not_cjk(self):
        assert not is_cjk_char("，")

    def test_multi_char_string_is_not_a_char(self):
        assert not is_cjk_char("中国")

    def test_empty_string(self):
        assert not is_cjk_char("")

    def test_extension_a(self):
        assert is_cjk_char(chr(0x3400))

    def test_cjk_word(self):
        assert is_cjk_word("蚂蚁金服")

    def test_mixed_word_is_not_cjk(self):
        assert not is_cjk_word("iPhone手机")

    def test_empty_word_is_not_cjk(self):
        assert not is_cjk_word("")


class TestNormalize:
    def test_fullwidth_ascii_becomes_halfwidth(self):
        assert normalize_text("ＡＢＣ１２３") == "ABC123"

    def test_ideographic_space_becomes_space(self):
        assert normalize_text("刘德华　歌手") == "刘德华 歌手"

    def test_strips_outer_whitespace(self):
        assert normalize_text("  刘德华  ") == "刘德华"

    def test_cjk_untouched(self):
        assert normalize_text("蚂蚁金服") == "蚂蚁金服"

    def test_chinese_punctuation_untouched(self):
        assert normalize_text("演员、歌手") == "演员、歌手"

    @given(st.text(alphabet="abc中美日123", max_size=20))
    def test_idempotent(self, text):
        once = normalize_text(text)
        assert normalize_text(once) == once


class TestStripBrackets:
    def test_fullwidth_bracket(self):
        name, bracket = strip_brackets("刘德华（中国香港男演员）")
        assert name == "刘德华"
        assert bracket == "中国香港男演员"

    def test_halfwidth_bracket(self):
        name, bracket = strip_brackets("刘德华(歌手)")
        assert name == "刘德华"
        assert bracket == "歌手"

    def test_no_bracket(self):
        assert strip_brackets("刘德华") == ("刘德华", None)

    def test_bracket_not_at_end_is_ignored(self):
        name, bracket = strip_brackets("（注）刘德华")
        assert bracket is None

    def test_bracket_only_title_is_not_split(self):
        name, bracket = strip_brackets("（全部）")
        assert bracket is None

    def test_empty_bracket_is_ignored(self):
        assert strip_brackets("刘德华（）") == ("刘德华（）", None)

    def test_square_bracket(self):
        name, bracket = strip_brackets("苹果【水果】")
        assert name == "苹果"
        assert bracket == "水果"


class TestRunsAndPhrases:
    def test_iter_cjk_runs_splits_on_latin(self):
        assert list(iter_cjk_runs("刘德华Andy歌手")) == ["刘德华", "歌手"]

    def test_iter_cjk_runs_empty(self):
        assert list(iter_cjk_runs("abc 123")) == []

    def test_split_phrases_on_enumeration_comma(self):
        assert split_phrases("演员、歌手、词作人") == ["演员", "歌手", "词作人"]

    def test_split_phrases_mixed_delimiters(self):
        assert split_phrases("演员，歌手；作家") == ["演员", "歌手", "作家"]

    def test_split_phrases_no_delimiter(self):
        assert split_phrases("演员") == ["演员"]

    def test_split_phrases_empty(self):
        assert split_phrases("") == []

    def test_char_ngrams(self):
        assert list(char_ngrams("刘德华", 2)) == ["刘德", "德华"]

    def test_char_ngrams_longer_than_text(self):
        assert list(char_ngrams("刘", 2)) == []

    def test_char_ngrams_invalid_n(self):
        with pytest.raises(ValueError):
            list(char_ngrams("刘德华", 0))

    @given(st.text(alphabet="中美日korea123", min_size=1, max_size=15))
    def test_cjk_runs_are_pure_cjk(self, text):
        for run in iter_cjk_runs(text):
            assert is_cjk_word(run)
