"""Tests for the cn-probase command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    """One generate→build flow shared by the query/stats tests."""
    root = tmp_path_factory.mktemp("cli")
    dump_path = root / "dump.jsonl"
    taxonomy_path = root / "taxonomy.jsonl"
    assert main([
        "generate", "--entities", "300", "--seed", "3",
        "--out", str(dump_path),
    ]) == 0
    assert main([
        "build", "--dump", str(dump_path), "--out", str(taxonomy_path),
        "--no-abstract",
    ]) == 0
    return dump_path, taxonomy_path


class TestGenerate:
    def test_writes_dump(self, artefacts):
        dump_path, _ = artefacts
        assert dump_path.exists()
        assert dump_path.stat().st_size > 0

    def test_generate_output_loadable(self, artefacts):
        from repro.encyclopedia import load_dump

        dump_path, _ = artefacts
        assert len(load_dump(dump_path)) >= 300


class TestBuild:
    def test_writes_taxonomy(self, artefacts):
        _, taxonomy_path = artefacts
        from repro.taxonomy import Taxonomy

        taxonomy = Taxonomy.load(taxonomy_path)
        assert taxonomy.stats().n_isa_total > 0

    def test_build_missing_dump_fails_cleanly(self, tmp_path, capsys):
        code = main([
            "build", "--dump", str(tmp_path / "nope.jsonl"),
            "--out", str(tmp_path / "t.jsonl"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestStats:
    def test_prints_counts(self, artefacts, capsys):
        _, taxonomy_path = artefacts
        assert main(["stats", "--taxonomy", str(taxonomy_path)]) == 0
        out = capsys.readouterr().out
        assert "isa_relations_total" in out


class TestQuery:
    def test_get_entity(self, artefacts, capsys):
        _, taxonomy_path = artefacts
        code = main([
            "query", "--taxonomy", str(taxonomy_path), "getEntity", "人物",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out.strip()

    def test_men2ent_round_trip(self, artefacts, capsys):
        _, taxonomy_path = artefacts
        main(["query", "--taxonomy", str(taxonomy_path), "getEntity", "人物"])
        page_id = capsys.readouterr().out.splitlines()[0]
        mention = page_id.split("#")[0]
        code = main([
            "query", "--taxonomy", str(taxonomy_path), "men2ent", mention,
        ])
        assert code == 0
        assert page_id in capsys.readouterr().out

    def test_unknown_argument_returns_nonzero(self, artefacts, capsys):
        _, taxonomy_path = artefacts
        code = main([
            "query", "--taxonomy", str(taxonomy_path), "men2ent", "不存在词",
        ])
        assert code == 1
        assert "(no results)" in capsys.readouterr().out

    def test_get_concept(self, artefacts, capsys):
        _, taxonomy_path = artefacts
        main(["query", "--taxonomy", str(taxonomy_path), "getEntity", "人物"])
        page_id = capsys.readouterr().out.splitlines()[0]
        code = main([
            "query", "--taxonomy", str(taxonomy_path), "getConcept", page_id,
        ])
        assert code == 0
        assert "人物" in capsys.readouterr().out


class TestParser:
    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_api_name_exits(self, artefacts):
        _, taxonomy_path = artefacts
        with pytest.raises(SystemExit):
            main(["query", "--taxonomy", str(taxonomy_path), "badApi", "x"])


class TestStages:
    def test_lists_all_builtin_stages(self, capsys):
        assert main(["stages"]) == 0
        out = capsys.readouterr().out
        for name in ("bracket", "abstract", "infobox", "tag",
                     "syntax", "ner", "incompatible"):
            assert name in out
        assert "builtin" in out
        assert "yes" in out

    def test_build_disable_stage(self, artefacts, tmp_path, capsys):
        dump_path, _ = artefacts
        out_path = tmp_path / "t.jsonl"
        code = main([
            "build", "--dump", str(dump_path), "--out", str(out_path),
            "--no-abstract", "--disable-stage", "ner",
            "--disable-stage", "infobox",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out_path.exists()
        assert "stage bracket (source)" in out
        assert "stage ner" not in out
        assert "stage infobox" not in out

    def test_build_unknown_stage_fails_cleanly(self, artefacts, tmp_path,
                                               capsys):
        dump_path, _ = artefacts
        code = main([
            "build", "--dump", str(dump_path),
            "--out", str(tmp_path / "t.jsonl"),
            "--no-abstract", "--disable-stage", "bogus",
        ])
        assert code == 2
        assert "unknown stage" in capsys.readouterr().err


class TestParallelBuildCLI:
    def test_workers_build_identical_output(self, artefacts, tmp_path):
        dump_path, taxonomy_path = artefacts
        out_path = tmp_path / "parallel.jsonl"
        code = main([
            "build", "--dump", str(dump_path), "--out", str(out_path),
            "--no-abstract", "--workers", "4",
        ])
        assert code == 0
        assert out_path.read_bytes() == taxonomy_path.read_bytes()

    def test_invalid_workers_fails_cleanly(self, artefacts, tmp_path, capsys):
        dump_path, _ = artefacts
        code = main([
            "build", "--dump", str(dump_path),
            "--out", str(tmp_path / "t.jsonl"),
            "--no-abstract", "--workers", "0",
        ])
        assert code == 2
        assert "workers" in capsys.readouterr().err

    def test_no_resource_cache_flag(self, artefacts, tmp_path):
        dump_path, taxonomy_path = artefacts
        out_path = tmp_path / "uncached.jsonl"
        code = main([
            "build", "--dump", str(dump_path), "--out", str(out_path),
            "--no-abstract", "--no-resource-cache",
        ])
        assert code == 0
        assert out_path.read_bytes() == taxonomy_path.read_bytes()


class TestTraceSidecar:
    def test_build_writes_trace(self, artefacts):
        import json

        _, taxonomy_path = artefacts
        trace_path = taxonomy_path.parent / (taxonomy_path.name + ".trace.json")
        assert trace_path.exists()
        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        assert "bracket" in trace["stages"]
        record = trace["stages"]["bracket"]
        assert {"kind", "seconds", "count", "ran", "workers",
                "cache_hit"} <= set(record)

    def test_stages_prints_trace_columns(self, artefacts, capsys):
        _, taxonomy_path = artefacts
        trace_path = taxonomy_path.parent / (taxonomy_path.name + ".trace.json")
        assert main(["stages", "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "workers" in out and "cache" in out
        assert "bracket" in out and "total:" in out

    def test_stages_missing_trace_fails_cleanly(self, tmp_path, capsys):
        code = main(["stages", "--trace", str(tmp_path / "nope.json")])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_stages_non_trace_json_fails_cleanly(self, artefacts, capsys):
        _, taxonomy_path = artefacts
        # pointing --trace at the taxonomy itself (the easy slip)
        code = main(["stages", "--trace", str(taxonomy_path)])
        assert code == 2
        assert "not a build trace sidecar" in capsys.readouterr().err


class TestServe:
    """cn-probase serve + TaxonomyClient: the acceptance round trip."""

    def test_serve_query_swap_query_shutdown(self, artefacts, tmp_path):
        import threading
        import time

        from repro.serving import TaxonomyClient
        from repro.taxonomy import Taxonomy

        _, taxonomy_path = artefacts
        taxonomy = Taxonomy.load(taxonomy_path)
        mention = sorted(taxonomy.freeze().as_indexes()[0])[0]
        ready_file = tmp_path / "ready"
        exit_codes: list[int] = []

        def run_cli() -> None:
            exit_codes.append(main([
                "serve", str(taxonomy_path),
                "--shards", "2", "--replicas", "2",
                "--port", "0",
                "--admin-token", "cli-test-token",
                "--ready-file", str(ready_file),
            ]))

        # a stale marker from a "crashed" predecessor: the real server
        # must overwrite it, and readers must not trust it (wrong pid)
        import json
        import os
        ready_file.write_text(
            json.dumps({"pid": 999999999, "host": "127.0.0.1", "port": 1})
        )

        # daemon: a failed assertion below must not leave a live serve
        # thread blocking interpreter exit
        thread = threading.Thread(target=run_cli, daemon=True)
        thread.start()
        client = None
        try:
            deadline = time.monotonic() + 30

            def ready_payload():
                if not ready_file.exists():
                    return None
                try:
                    payload = json.loads(ready_file.read_text())
                except (ValueError, OSError):
                    return None  # mid-write or garbage: keep waiting
                # the CLI runs in-process here, so a valid marker names
                # our own pid — the stale seed above never does
                if payload.get("pid") != os.getpid():
                    return None
                return payload

            while ready_payload() is None:
                assert time.monotonic() < deadline, "server never came up"
                assert thread.is_alive(), f"serve exited: {exit_codes}"
                time.sleep(0.02)
            payload = ready_payload()
            host, port = payload["host"], payload["port"]
            client = TaxonomyClient(
                f"http://{host}:{port}", admin_token="cli-test-token"
            )

            # query (v1)
            assert client.healthz() == {
                "status": "ok", "version": "v1", "shards": 2,
            }
            v1_answer = client.men2ent(mention)
            assert v1_answer == taxonomy.men2ent(mention)

            # swap to a taxonomy where the mention answers differently
            rebuilt = Taxonomy()
            rebuilt_path = tmp_path / "rebuilt.jsonl"
            rebuilt.save(rebuilt_path)
            assert client.swap(str(rebuilt_path)) == {
                "swapped": True, "version": "v2",
            }

            # query (v2): all shards republished, answers flipped
            assert client.version()["shard_versions"] == ["v2", "v2"]
            assert client.men2ent(mention) == []

            # shutdown ends the foreground CLI cleanly and removes the
            # readiness marker, so orchestration never sees a dead
            # server as ready
            client.shutdown_server()
            thread.join(timeout=15)
            assert not ready_file.exists()
        finally:
            if thread.is_alive() and client is not None:
                try:  # best-effort teardown after a mid-test failure
                    client.shutdown_server()
                except Exception:
                    pass
                thread.join(timeout=15)
        assert not thread.is_alive()
        assert exit_codes == [0]


class TestDiff:
    def test_identical_dumps(self, artefacts, capsys):
        dump_path, _ = artefacts
        assert main(["diff", str(dump_path), str(dump_path)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_reports_changes_and_writes_json(self, artefacts, tmp_path, capsys):
        import dataclasses
        import json

        from repro.encyclopedia import (
            EncyclopediaDump,
            load_dump,
            save_dump,
        )

        dump_path, _ = artefacts
        dump = load_dump(dump_path)
        pages = list(dump.pages)
        pages[0] = dataclasses.replace(pages[0], abstract="改动后的摘要。")
        edited_path = tmp_path / "edited.jsonl"
        save_dump(EncyclopediaDump(pages[:-1]), edited_path)
        json_path = tmp_path / "diff.json"
        assert main([
            "diff", str(dump_path), str(edited_path),
            "--json", str(json_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "changed: 1" in out
        assert "removed: 1" in out
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["changed"] == [pages[0].page_id]
        assert len(payload["removed"]) == 1

    def test_missing_dump_fails_cleanly(self, artefacts, tmp_path, capsys):
        dump_path, _ = artefacts
        code = main(["diff", str(dump_path), str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestIncrementalBuild:
    def test_incremental_matches_full_and_writes_delta(
        self, artefacts, tmp_path, capsys
    ):
        import dataclasses

        from repro.encyclopedia import EncyclopediaDump, load_dump, save_dump
        from repro.taxonomy import Taxonomy

        dump_path, taxonomy_path = artefacts
        dump = load_dump(dump_path)
        pages = [
            dataclasses.replace(p, bracket="中国著名" + p.bracket)
            if i % 60 == 3 and p.bracket else p
            for i, p in enumerate(dump.pages)
        ]
        new_dump_path = tmp_path / "new-dump.jsonl"
        save_dump(EncyclopediaDump(pages), new_dump_path)

        incremental_path = tmp_path / "incremental.jsonl"
        assert main([
            "build", "--dump", str(new_dump_path),
            "--out", str(incremental_path), "--no-abstract",
            "--incremental", "--previous", str(taxonomy_path),
            "--previous-dump", str(dump_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "dump diff:" in out
        assert "wrote delta to" in out

        full_path = tmp_path / "full.jsonl"
        assert main([
            "build", "--dump", str(new_dump_path),
            "--out", str(full_path), "--no-abstract",
        ]) == 0
        assert incremental_path.read_bytes() == full_path.read_bytes()

        delta_path = incremental_path.with_name(
            incremental_path.name + ".delta.jsonl"
        )
        assert delta_path.exists()
        previous = Taxonomy.load(taxonomy_path)
        previous.apply_delta(Taxonomy.load_delta(delta_path))
        applied_path = tmp_path / "applied.jsonl"
        previous.save(applied_path)
        assert applied_path.read_bytes() == full_path.read_bytes()

    def test_incremental_without_previous_fails_cleanly(
        self, artefacts, tmp_path, capsys
    ):
        dump_path, _ = artefacts
        code = main([
            "build", "--dump", str(dump_path),
            "--out", str(tmp_path / "t.jsonl"), "--no-abstract",
            "--incremental",
        ])
        assert code == 2
        assert "--previous" in capsys.readouterr().err


class TestDeltaSquash:
    def _worlds(self):
        from repro.taxonomy.model import Entity, IsARelation
        from repro.taxonomy import Taxonomy

        def world(generation):
            t = Taxonomy()
            t.add_entity(Entity("刘德华#0", "刘德华"))
            t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
            for n in range(generation):
                t.add_entity(Entity(f"新星{n}#0", f"新星{n}"))
                t.add_relation(IsARelation(f"新星{n}#0", "歌手", "tag"))
            return t

        return [world(g) for g in range(3)]

    def test_squash_round_trip(self, tmp_path, capsys):
        from repro.taxonomy.delta import TaxonomyDelta, load_delta, save_delta

        w0, w1, w2 = self._worlds()
        d1_path, d2_path = tmp_path / "n1.jsonl", tmp_path / "n2.jsonl"
        save_delta(TaxonomyDelta.compute(w0, w1), d1_path)
        save_delta(TaxonomyDelta.compute(w1, w2), d2_path)
        out_path = tmp_path / "squashed.jsonl"

        code = main([
            "delta-squash", str(d1_path), str(d2_path),
            "-o", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "squashed 2 deltas" in out

        applied = w0
        applied.apply_delta(load_delta(out_path))
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        applied.save(a)
        w2.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_unchained_inputs_fail_cleanly(self, tmp_path, capsys):
        from repro.taxonomy.delta import TaxonomyDelta, save_delta

        w0, w1, _ = self._worlds()
        d1_path = tmp_path / "n1.jsonl"
        save_delta(TaxonomyDelta.compute(w0, w1), d1_path)
        code = main([  # the same night twice: the second add cannot
            # apply to the state the first one leaves
            "delta-squash", str(d1_path), str(d1_path),
            "-o", str(tmp_path / "out.jsonl"),
        ])
        assert code == 2
        assert "do not chain" in capsys.readouterr().err
        assert not (tmp_path / "out.jsonl").exists()
