"""Tests for the cn-probase command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    """One generate→build flow shared by the query/stats tests."""
    root = tmp_path_factory.mktemp("cli")
    dump_path = root / "dump.jsonl"
    taxonomy_path = root / "taxonomy.jsonl"
    assert main([
        "generate", "--entities", "300", "--seed", "3",
        "--out", str(dump_path),
    ]) == 0
    assert main([
        "build", "--dump", str(dump_path), "--out", str(taxonomy_path),
        "--no-abstract",
    ]) == 0
    return dump_path, taxonomy_path


class TestGenerate:
    def test_writes_dump(self, artefacts):
        dump_path, _ = artefacts
        assert dump_path.exists()
        assert dump_path.stat().st_size > 0

    def test_generate_output_loadable(self, artefacts):
        from repro.encyclopedia import load_dump

        dump_path, _ = artefacts
        assert len(load_dump(dump_path)) >= 300


class TestBuild:
    def test_writes_taxonomy(self, artefacts):
        _, taxonomy_path = artefacts
        from repro.taxonomy import Taxonomy

        taxonomy = Taxonomy.load(taxonomy_path)
        assert taxonomy.stats().n_isa_total > 0

    def test_build_missing_dump_fails_cleanly(self, tmp_path, capsys):
        code = main([
            "build", "--dump", str(tmp_path / "nope.jsonl"),
            "--out", str(tmp_path / "t.jsonl"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestStats:
    def test_prints_counts(self, artefacts, capsys):
        _, taxonomy_path = artefacts
        assert main(["stats", "--taxonomy", str(taxonomy_path)]) == 0
        out = capsys.readouterr().out
        assert "isa_relations_total" in out


class TestQuery:
    def test_get_entity(self, artefacts, capsys):
        _, taxonomy_path = artefacts
        code = main([
            "query", "--taxonomy", str(taxonomy_path), "getEntity", "人物",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out.strip()

    def test_men2ent_round_trip(self, artefacts, capsys):
        _, taxonomy_path = artefacts
        main(["query", "--taxonomy", str(taxonomy_path), "getEntity", "人物"])
        page_id = capsys.readouterr().out.splitlines()[0]
        mention = page_id.split("#")[0]
        code = main([
            "query", "--taxonomy", str(taxonomy_path), "men2ent", mention,
        ])
        assert code == 0
        assert page_id in capsys.readouterr().out

    def test_unknown_argument_returns_nonzero(self, artefacts, capsys):
        _, taxonomy_path = artefacts
        code = main([
            "query", "--taxonomy", str(taxonomy_path), "men2ent", "不存在词",
        ])
        assert code == 1
        assert "(no results)" in capsys.readouterr().out

    def test_get_concept(self, artefacts, capsys):
        _, taxonomy_path = artefacts
        main(["query", "--taxonomy", str(taxonomy_path), "getEntity", "人物"])
        page_id = capsys.readouterr().out.splitlines()[0]
        code = main([
            "query", "--taxonomy", str(taxonomy_path), "getConcept", page_id,
        ])
        assert code == 0
        assert "人物" in capsys.readouterr().out


class TestParser:
    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_api_name_exits(self, artefacts):
        _, taxonomy_path = artefacts
        with pytest.raises(SystemExit):
            main(["query", "--taxonomy", str(taxonomy_path), "badApi", "x"])
