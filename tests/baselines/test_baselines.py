"""Tests for the three Table I baselines."""

import pytest

from repro.baselines import (
    Bigcilin,
    ChineseWikiTaxonomy,
    NoisyTranslator,
    ProbaseTran,
    TranslationConfig,
)
from repro.encyclopedia import SyntheticWorld
from repro.eval.metrics import make_oracle, sample_precision


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld.generate(seed=31, n_entities=900)


@pytest.fixture(scope="module")
def oracle(world):
    return make_oracle(world)


@pytest.fixture(scope="module")
def wiki(world):
    return ChineseWikiTaxonomy().build(world.dump())


@pytest.fixture(scope="module")
def bigcilin(world):
    return Bigcilin().build(world.dump())


@pytest.fixture(scope="module")
def probase_tran(world):
    return ProbaseTran().build(world)


class TestWikiTaxonomy:
    def test_high_precision(self, wiki, oracle):
        estimate = sample_precision(wiki.relations(), oracle, 2000, seed=1)
        assert estimate.precision >= 0.95, str(estimate)

    def test_low_coverage(self, wiki, world):
        assert wiki.stats().n_entities < len(world.entities) * 0.2

    def test_single_source(self, wiki):
        assert all(r.source == "baseline" for r in wiki.relations())

    def test_deterministic(self, world):
        a = ChineseWikiTaxonomy().build(world.dump())
        b = ChineseWikiTaxonomy().build(world.dump())
        assert a.stats() == b.stats()


class TestBigcilin:
    def test_mid_precision(self, bigcilin, oracle):
        estimate = sample_precision(bigcilin.relations(), oracle, 2000, seed=1)
        assert 0.82 <= estimate.precision <= 0.95, str(estimate)

    def test_larger_than_wiki(self, bigcilin, wiki):
        assert bigcilin.stats().n_isa_total > 5 * wiki.stats().n_isa_total

    def test_covers_most_sampled_pages(self, bigcilin, world):
        # page_fraction 0.6 of entities, most yielding relations
        assert bigcilin.stats().n_entities > len(world.entities) * 0.4


class TestTranslationChannel:
    def test_correct_translation_probability(self):
        translator = NoisyTranslator(TranslationConfig(seed=3))
        outcomes = [translator.translate_concept("歌手") for _ in range(500)]
        correct = sum(1 for o in outcomes if o == "歌手")
        assert 0.2 < correct / 500 < 0.65

    def test_sense_errors_are_real_words(self):
        translator = NoisyTranslator(
            TranslationConfig(p_sense_error=1.0, p_drop=0.0, seed=1)
        )
        from repro.nlp.lexicon import Lexicon

        lexicon = Lexicon.base()
        for _ in range(50):
            wrong = translator.translate_concept("歌手")
            assert wrong != "歌手"
            assert wrong in lexicon

    def test_drop_returns_none(self):
        translator = NoisyTranslator(TranslationConfig(p_drop=1.0))
        assert translator.translate_concept("歌手") is None
        assert translator.translate_entity("刘德华") is None

    def test_garbled_entities_differ(self):
        translator = NoisyTranslator(
            TranslationConfig(p_entity_garbled=1.0, p_drop=0.0, seed=2)
        )
        assert translator.translate_entity("刘德华") != "刘德华"

    def test_pair_identity_dropped(self):
        translator = NoisyTranslator(
            TranslationConfig(
                p_sense_error=0.0, p_thematic_drift=0.0,
                p_ne_confusion=0.0, p_entity_garbled=0.0, p_drop=0.0,
            )
        )
        assert translator.translate_pair("歌手", "歌手") is None

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            TranslationConfig(p_sense_error=1.5).validate()


class TestProbaseTran:
    def test_low_precision(self, probase_tran, oracle):
        estimate = sample_precision(
            probase_tran.relations(), oracle, 2000, seed=1
        )
        assert 0.40 <= estimate.precision <= 0.70, str(estimate)

    def test_small_coverage(self, probase_tran, world):
        assert probase_tran.stats().n_entities < len(world.entities) * 0.3

    def test_filters_reduce_size(self, world):
        baseline = ProbaseTran()
        raw_pairs = []
        translator = NoisyTranslator(baseline.config.translation)
        for entity, concept in baseline.source_pairs(world):
            if translator.translate_pair(entity, concept):
                raw_pairs.append(1)
        built = baseline.build(world)
        assert built.stats().n_isa_total < len(raw_pairs)

    def test_deterministic(self, world):
        a = ProbaseTran().build(world)
        b = ProbaseTran().build(world)
        assert a.stats() == b.stats()


class TestTableOneShape:
    """The orderings the paper's Table I reports."""

    def test_precision_ordering(self, wiki, bigcilin, probase_tran, oracle):
        p_wiki = sample_precision(wiki.relations(), oracle, 2000, 1).precision
        p_big = sample_precision(bigcilin.relations(), oracle, 2000, 1).precision
        p_tran = sample_precision(
            probase_tran.relations(), oracle, 2000, 1
        ).precision
        assert p_wiki > p_big > p_tran

    def test_size_ordering(self, wiki, bigcilin, probase_tran):
        assert bigcilin.stats().n_isa_total > probase_tran.stats().n_isa_total
        assert bigcilin.stats().n_isa_total > wiki.stats().n_isa_total
