"""Cross-module property-based tests and failure injection.

These guard the invariants the pipeline relies on rather than individual
behaviours: suffix structure of separation output, dedup idempotence of
the candidate pool, persistence round-trips, filter partition laws, and
graceful degradation on hostile inputs.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generation.merge import CandidatePool
from repro.core.generation.separation import SeparationAlgorithm
from repro.core.verification.incompatible import kl_divergence
from repro.core.verification.ner_filter import noisy_or
from repro.encyclopedia.model import EncyclopediaDump, EncyclopediaPage, Triple
from repro.errors import CorpusError, TaxonomyError
from repro.nlp.pmi import PMIStatistics
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy

_WORDS = st.sampled_from(
    ["蚂蚁", "金服", "首席", "战略官", "著名", "歌手", "中国", "演员"]
)
_SOURCES = st.sampled_from(["bracket", "abstract", "infobox", "tag"])


class TestSeparationInvariants:
    @given(st.lists(_WORDS, min_size=1, max_size=7))
    @settings(max_examples=60)
    def test_hypernyms_are_proper_suffixes(self, words):
        pmi = PMIStatistics()
        pmi.add_sequence(["蚂蚁", "金服", "首席", "战略官", "歌手"])
        compound = "".join(words)
        for hypernym in SeparationAlgorithm(pmi).hypernyms(words):
            assert compound.endswith(hypernym) or hypernym == compound

    @given(st.lists(_WORDS, min_size=2, max_size=7))
    @settings(max_examples=60)
    def test_tree_preserves_word_sequence(self, words):
        pmi = PMIStatistics()
        tree = SeparationAlgorithm(pmi).build_tree(words)
        assert list(tree.words) == words
        assert tree.text == "".join(words)

    @given(st.lists(_WORDS, min_size=1, max_size=7))
    @settings(max_examples=40)
    def test_hypernym_count_bounded_by_length(self, words):
        pmi = PMIStatistics()
        hypernyms = SeparationAlgorithm(pmi).hypernyms(words)
        assert 1 <= len(hypernyms) <= len(words)


class TestPoolInvariants:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a#0", "b#0", "c#0"]),
                st.sampled_from(["歌手", "演员", "作品"]),
                _SOURCES,
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_unique_keys_and_add_count(self, triples):
        pool = CandidatePool()
        pool.add([
            IsARelation(hypo, hyper, source) for hypo, hyper, source in triples
        ])
        stats = pool.stats()
        assert stats.added == len(triples)
        assert stats.unique == len({(h, y) for h, y, _ in triples})
        keys = [r.key for r in pool.relations()]
        assert len(keys) == len(set(keys))

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a#0", "b#0"]),
                st.sampled_from(["歌手", "演员"]),
                _SOURCES,
            ),
            max_size=15,
        )
    )
    @settings(max_examples=40)
    def test_adding_twice_is_idempotent_on_relations(self, triples):
        relations = [
            IsARelation(h, y, s) for h, y, s in triples
        ]
        once = CandidatePool()
        once.add(relations)
        twice = CandidatePool()
        twice.add(relations)
        twice.add(relations)
        assert {r.key for r in once.relations()} == {
            r.key for r in twice.relations()
        }


class TestScoreFunctions:
    @given(st.floats(0, 1), st.floats(0, 1))
    def test_noisy_or_bounds_and_amplification(self, s1, s2):
        combined = noisy_or(s1, s2)
        assert 0.0 <= combined <= 1.0
        assert combined >= max(s1, s2) - 1e-12

    @given(st.floats(0, 1))
    def test_noisy_or_identity(self, s):
        assert noisy_or(s, 0.0) == pytest.approx(s)

    @given(
        st.dictionaries(
            st.sampled_from("abcde"), st.floats(0.01, 1.0),
            min_size=1, max_size=5,
        )
    )
    @settings(max_examples=60)
    def test_kl_nonnegative_on_normalised(self, raw):
        total = sum(raw.values())
        dist = {k: v / total for k, v in raw.items()}
        assert kl_divergence(dist, dist) == pytest.approx(0.0, abs=1e-6)
        other = {k: 1.0 / len(dist) for k in dist}
        # epsilon smoothing can dip microscopically below zero
        assert kl_divergence(dist, other) >= -1e-6


class TestPersistenceRoundTrips:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["刘#0", "周#0", "王#1"]),
                st.sampled_from(["歌手", "演员", "人物"]),
                _SOURCES,
                st.floats(0.1, 2.0),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=30)
    def test_taxonomy_round_trip(self, tmp_path_factory, rows):
        taxonomy = Taxonomy()
        for hypo, hyper, source, score in rows:
            taxonomy.add_entity(Entity(hypo, hypo.split("#")[0]))
            taxonomy.add_relation(
                IsARelation(hypo, hyper, source, score=score)
            )
        path = tmp_path_factory.mktemp("tx") / "t.jsonl"
        taxonomy.save(path)
        loaded = Taxonomy.load(path)
        assert loaded.stats() == taxonomy.stats()
        assert {r.key for r in loaded.relations()} == {
            r.key for r in taxonomy.relations()
        }

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["刘#0", "周#0", "王#1", "陈#2"]),
                st.sampled_from(["歌手", "演员", "人物", "公司"]),
                _SOURCES,
                st.floats(0.1, 2.0),
                st.sampled_from(["", "华仔", "Ａｎｄｙ", "天王"]),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=30)
    def test_save_load_save_is_byte_stable(self, tmp_path_factory, rows):
        """Canonical JSONL: persistence round-trips byte-for-byte.

        ``save`` orders records canonically, so a loaded-then-resaved
        taxonomy (whatever insertion order the load used) reproduces
        the original file exactly — including non-ASCII mentions and
        aliases, which must survive un-escaped (``ensure_ascii=False``).
        """
        taxonomy = Taxonomy()
        for hypo, hyper, source, score, alias in rows:
            aliases = (alias,) if alias else ()
            if not taxonomy.has_entity(hypo):
                taxonomy.add_entity(
                    Entity(hypo, hypo.split("#")[0], aliases=aliases)
                )
            taxonomy.add_relation(
                IsARelation(hypo, hyper, source, score=score)
            )
        root = tmp_path_factory.mktemp("stable")
        first, second = root / "first.jsonl", root / "second.jsonl"
        taxonomy.save(first)
        Taxonomy.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()
        # non-ASCII mentions stay human-readable (no \uXXXX escapes)
        assert rows[0][0].split("#")[0] in first.read_text(encoding="utf-8")

    def test_dump_round_trip_preserves_unicode(self, tmp_path):
        from repro.encyclopedia.corpus import load_dump, save_dump

        page = EncyclopediaPage(
            page_id="刘德华#0", title="刘德华",
            bracket="中国香港男演员",
            abstract="刘德华（Andy Lau），1961年出生。",
            infobox=(Triple("刘德华#0", "体重", "63KG"),),
            tags=("人物", "演员"),
        )
        path = tmp_path / "dump.jsonl"
        save_dump(EncyclopediaDump([page]), path)
        raw = path.read_text(encoding="utf-8")
        assert "刘德华" in raw  # ensure_ascii=False: human-readable dumps
        assert load_dump(path).pages[0] == page


class TestFailureInjection:
    def test_crashed_save_leaves_previous_file_intact(self, tmp_path, monkeypatch):
        """Atomic save: a failure mid-write never tears the target."""
        import json as json_module

        import repro.taxonomy.store as store_module

        taxonomy = Taxonomy()
        taxonomy.add_entity(Entity("a#0", "a"))
        taxonomy.add_relation(IsARelation("a#0", "歌手", "tag"))
        path = tmp_path / "t.jsonl"
        taxonomy.save(path)
        good_bytes = path.read_bytes()

        calls = {"n": 0}
        real_dumps = json_module.dumps

        def exploding_dumps(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 1:  # header written, then crash mid-records
                raise OSError("disk full")
            return real_dumps(*args, **kwargs)

        taxonomy.add_relation(IsARelation("a#0", "演员", "tag"))
        monkeypatch.setattr(store_module.json, "dumps", exploding_dumps)
        with pytest.raises(OSError):
            taxonomy.save(path)
        monkeypatch.undo()
        # target untouched by the torn write, and still loadable
        assert path.read_bytes() == good_bytes
        assert len(Taxonomy.load(path).relations()) == 1
        # no stray temp files left behind
        assert [p.name for p in tmp_path.iterdir()] == ["t.jsonl"]

    def test_future_taxonomy_format_version_is_refused(self, tmp_path):
        taxonomy = Taxonomy()
        taxonomy.add_entity(Entity("a#0", "a"))
        taxonomy.add_relation(IsARelation("a#0", "歌手", "tag"))
        path = tmp_path / "t.jsonl"
        taxonomy.save(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        assert header["format_version"] >= 1  # save stamps the version
        header["format_version"] = 99
        lines[0] = json.dumps(header, ensure_ascii=False)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(TaxonomyError, match="format_version 99"):
            Taxonomy.load(path)

    def test_legacy_header_without_format_version_loads(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            '{"kind": "header", "name": "旧版"}\n'
            '{"kind": "entity", "page_id": "a#0", "name": "a", "aliases": []}\n'
            '{"kind": "relation", "hyponym": "a#0", "hypernym": "歌手", '
            '"source": "tag", "hyponym_kind": "entity", "score": 1.0}\n',
            encoding="utf-8",
        )
        loaded = Taxonomy.load(path)
        assert loaded.name == "旧版"
        assert loaded.men2ent("a") == ["a#0"]

    def test_truncated_taxonomy_file(self, tmp_path):
        taxonomy = Taxonomy()
        taxonomy.add_entity(Entity("a#0", "a"))
        taxonomy.add_relation(IsARelation("a#0", "b", "tag"))
        path = tmp_path / "t.jsonl"
        taxonomy.save(path)
        content = path.read_text(encoding="utf-8")
        path.write_text(content[: len(content) // 2], encoding="utf-8")
        with pytest.raises((TaxonomyError, KeyError)):
            Taxonomy.load(path)

    def test_dump_with_corrupt_middle_line(self, tmp_path):
        from repro.encyclopedia.corpus import load_dump, save_dump

        pages = [
            EncyclopediaPage(page_id=f"p{i}#0", title=f"p{i}")
            for i in range(3)
        ]
        path = tmp_path / "d.jsonl"
        save_dump(EncyclopediaDump(pages), path)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = "{broken json"
        path.write_text("\n".join(lines), encoding="utf-8")
        with pytest.raises(CorpusError) as excinfo:
            load_dump(path)
        assert ":2:" in str(excinfo.value)  # error names the line

    def test_relation_with_entity_missing_from_store(self):
        taxonomy = Taxonomy()
        with pytest.raises(TaxonomyError):
            taxonomy.add_relation(IsARelation("ghost#0", "概念", "tag"))

    def test_pipeline_survives_sparse_pages(self):
        from repro.core.pipeline import PipelineConfig, build_cn_probase

        dump = EncyclopediaDump([
            EncyclopediaPage(page_id=f"e{i}#0", title=f"词{i}",
                             tags=("人物",))
            for i in range(5)
        ])
        result = build_cn_probase(
            dump, PipelineConfig(enable_abstract=False)
        )
        # 5 pages, tag source only: builds a tiny but valid taxonomy
        assert result.taxonomy.stats().n_entities <= 5
        assert result.taxonomy.graph.is_dag()

    def test_pipeline_with_relationless_pages(self):
        from repro.core.pipeline import PipelineConfig, build_cn_probase

        dump = EncyclopediaDump([
            EncyclopediaPage(page_id="bare#0", title="空页")
        ])
        result = build_cn_probase(
            dump, PipelineConfig(enable_abstract=False)
        )
        assert len(result.taxonomy) == 0

    def test_workload_generator_on_empty_taxonomy(self):
        import warnings

        from repro.taxonomy.api import TaxonomyAPI, WorkloadGenerator

        taxonomy = Taxonomy()
        api = TaxonomyAPI(taxonomy)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            usage = WorkloadGenerator(taxonomy, seed=1).run(api, 50)
        assert usage.total_calls == 50  # misses, but no crashes
        # every empty-pool draw is a counted unknown, not a silent "空"
        assert usage.total_unknown == 50

    def test_filters_on_empty_relation_lists(self):
        from repro.core.verification.incompatible import (
            IncompatibleConceptFilter,
        )
        from repro.core.verification.ner_filter import NEHypernymFilter
        from repro.core.verification.syntax_rules import SyntaxRuleFilter
        from repro.nlp.ner import NamedEntityRecognizer
        from repro.nlp.segmentation import Segmenter

        dump = EncyclopediaDump(
            [EncyclopediaPage(page_id="a#0", title="a")]
        )
        incompatible = IncompatibleConceptFilter().fit([], dump)
        assert incompatible.filter([]).kept == []
        ner = NEHypernymFilter(NamedEntityRecognizer()).fit([], [])
        assert ner.filter([]).kept == []
        syntax = SyntaxRuleFilter(Segmenter())
        assert syntax.filter([]).kept == []


class TestFilterPartitionLaw:
    """kept + removed is always a partition of the input."""

    def _relations(self):
        return [
            IsARelation("a#0", "歌手", "tag"),
            IsARelation("a#0", "政治", "tag"),
            IsARelation("b#0", "美国", "tag"),
            IsARelation("流行歌手", "歌手", "tag", hyponym_kind="concept"),
        ]

    def test_syntax_partition(self):
        from repro.core.verification.syntax_rules import SyntaxRuleFilter
        from repro.nlp.segmentation import Segmenter

        relations = self._relations()
        decision = SyntaxRuleFilter(Segmenter()).filter(
            relations, {"a#0": "某", "b#0": "某某"}
        )
        assert sorted(
            r.key for r in decision.kept + decision.removed
        ) == sorted(r.key for r in relations)

    def test_ner_partition(self):
        from repro.core.verification.ner_filter import NEHypernymFilter
        from repro.nlp.ner import NamedEntityRecognizer

        relations = self._relations()
        filt = NEHypernymFilter(NamedEntityRecognizer())
        filt.fit([["美国"]], relations, {})
        decision = filt.filter(relations)
        assert len(decision.kept) + len(decision.removed) == len(relations)

    def test_incompatible_partition(self):
        from repro.core.verification.incompatible import (
            IncompatibleConceptFilter,
        )

        relations = self._relations()
        dump = EncyclopediaDump(
            [EncyclopediaPage(page_id="a#0", title="某"),
             EncyclopediaPage(page_id="b#0", title="某某")]
        )
        filt = IncompatibleConceptFilter().fit(relations, dump)
        decision = filt.filter(relations)
        assert len(decision.kept) + len(decision.removed) == len(relations)
