"""Delta-aware replication end to end: remote replicas over real HTTP.

The topology under test is the paper's deployment shape grown one step
further: a hub (store-backed :class:`ReplicatedRouter`) plus remote
replica processes (in these tests: in-process
:class:`ClusterHTTPServer`s on real sockets) driven through
:class:`RemoteReplica`/:class:`TaxonomyClient`.  A nightly refresh
ships each shard's *slice* of the :class:`TaxonomyDelta` by value with
a ``base_version`` handshake; a replica that fell behind is caught up
by a composed delta chain when :class:`DeltaHistory` covers its lag
and healed by a one-shot full snapshot (``/admin/swap``) otherwise.
"""

import pytest

from repro.errors import DeltaConflictError
from repro.serving import (
    RemoteReplica,
    ReplicaBackend,
    ReplicatedRouter,
    ShardedSnapshotStore,
    TaxonomyClient,
    build_cluster,
    shard_for,
    start_server,
)
from repro.taxonomy.delta import TaxonomyDelta
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy

ADMIN_TOKEN = "replication-test-token"

N_SHARDS = 2


def make_taxonomy(generation: int = 0) -> Taxonomy:
    """A small world that grows one entity per generation."""
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_entity(Entity("周杰伦#0", "周杰伦"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
    t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
    for n in range(generation):
        page_id = f"新星{n}#0"
        t.add_entity(Entity(page_id, f"新星{n}"))
        t.add_relation(IsARelation(page_id, "歌手", "tag"))
        t.add_relation(
            IsARelation(page_id, "演员", "bracket", score=1.0 + n)
        )
    return t


def nightly_delta(generation: int) -> TaxonomyDelta:
    return TaxonomyDelta.compute(
        make_taxonomy(generation), make_taxonomy(generation + 1)
    )


class RemoteFixture:
    """One remote replica process: server + client + backend."""

    def __init__(self, taxonomy: Taxonomy, shard_id: int):
        self.server = start_server(
            build_cluster(taxonomy, shards=1), admin_token=ADMIN_TOKEN
        )
        self.client = TaxonomyClient(
            self.server.url, admin_token=ADMIN_TOKEN
        )
        self.backend = RemoteReplica(
            self.client, shard_id=shard_id, n_shards=N_SHARDS
        )

    def close(self):
        self.server.close()


@pytest.fixture
def hub():
    """Store-backed router over v1, one local replica per shard."""
    store = ShardedSnapshotStore(make_taxonomy(0), n_shards=N_SHARDS)
    return ReplicatedRouter.from_store(store, replicas=1)


@pytest.fixture
def remotes(request):
    """One remote replica per shard, started from the v1 taxonomy."""
    fixtures = [
        RemoteFixture(make_taxonomy(0), shard_id)
        for shard_id in range(N_SHARDS)
    ]
    request.addfinalizer(lambda: [f.close() for f in fixtures])
    return fixtures


def attach(hub, remotes):
    for shard_id, fixture in enumerate(remotes):
        hub.attach_replica(shard_id, fixture.backend)


class TestRemoteReads:
    def test_remote_replica_satisfies_the_protocol(self, remotes):
        assert isinstance(remotes[0].backend, ReplicaBackend)

    def test_reads_spread_over_local_and_remote(self, hub, remotes):
        attach(hub, remotes)
        reference = make_taxonomy(0)
        for key in ("华仔", "刘德华", "周杰伦"):
            for _ in range(2):  # both rotation slots answer identically
                assert hub.men2ent(key) == reference.men2ent(key)
        assert hub.get_concepts("刘德华#0") == ["歌手", "演员"]
        assert hub.get_entities("歌手") == ["刘德华#0", "周杰伦#0"]

    def test_dead_remote_fails_over_to_local(self, hub, remotes):
        attach(hub, remotes)
        for fixture in remotes:
            fixture.close()
        reference = make_taxonomy(0)
        for _ in range(4):
            assert hub.men2ent("华仔") == reference.men2ent("华仔")
        # the dead remotes were marked unhealthy along the way
        health = hub.health()
        assert any(
            not state["healthy"]
            for replicas in health
            for state in replicas
        )


class TestDeltaShipping:
    def test_publish_delta_advances_every_replica_in_lockstep(
        self, hub, remotes
    ):
        attach(hub, remotes)
        delta = nightly_delta(0)
        result = hub.publish_delta(delta)
        assert result.version == 2  # the store's shard set
        # every remote-capable replica got its slice and is at v2
        assert [r["outcome"] for r in hub.last_publish_report] == \
            ["applied"] * N_SHARDS
        for fixture in remotes:
            assert fixture.client.version()["version"] == "v2"
        # and answers keys *it owns* exactly like the new build
        reference = make_taxonomy(1)
        for key in ("新星0", "新星0#0", "歌手", "演员"):
            shard_id = shard_for(key, N_SHARDS)
            fixture = remotes[shard_id]
            assert fixture.client.men2ent(key) == reference.men2ent(key)
            assert fixture.client.get_concepts(key) == \
                reference.get_concepts(key)
            assert fixture.client.get_entities(key) == \
                reference.get_entities(key)
        # the router end-to-end serves the new version from any replica
        for _ in range(2):
            assert hub.men2ent("新星0") == ["新星0#0"]

    def test_second_night_chains_on_the_first(self, hub, remotes):
        attach(hub, remotes)
        hub.publish_delta(nightly_delta(0))
        hub.publish_delta(nightly_delta(1))
        assert [r["outcome"] for r in hub.last_publish_report] == \
            ["applied"] * N_SHARDS
        for fixture in remotes:
            assert fixture.client.version()["version"] == "v3"
        assert hub.version_lineage() == ["v2", "v3"]
        # the remote's own /version shows its applied-delta lineage
        assert remotes[0].client.version()["lineage"] == ["v2", "v3"]

    def test_lagging_replica_catches_up_by_chain(self, hub, remotes):
        # night 1 happens before the replicas join: they stay at v1
        hub.publish_delta(nightly_delta(0))
        attach(hub, remotes)
        # night 2: the handshake refuses (replicas are at v1, base is
        # v2) and the router composes the missed chain from history
        hub.publish_delta(nightly_delta(1))
        assert [r["outcome"] for r in hub.last_publish_report] == \
            ["chained"] * N_SHARDS
        assert hub.stats.chain_catchups == N_SHARDS
        assert hub.stats.snapshot_heals == 0
        reference = make_taxonomy(2)
        for fixture in remotes:
            assert fixture.client.version()["version"] == "v3"
        for key in ("新星0", "新星1", "歌手"):
            fixture = remotes[shard_for(key, N_SHARDS)]
            assert fixture.client.men2ent(key) == reference.men2ent(key)
            assert fixture.client.get_entities(key) == \
                reference.get_entities(key)

    def test_replica_beyond_history_heals_by_snapshot(
        self, hub, remotes, tmp_path
    ):
        # night 1 by delta, then a full swap: the swap breaks the
        # delta chain (no history entry), so a v1 replica attached
        # afterwards cannot be caught up by chain
        hub.publish_delta(nightly_delta(0))
        hub.swap(make_taxonomy(2))  # v3
        attach(hub, remotes)
        snapshot_path = tmp_path / "current.jsonl"
        make_taxonomy(3).save(snapshot_path)
        hub.publish_delta(
            nightly_delta(2), snapshot_path=str(snapshot_path)
        )
        assert [r["outcome"] for r in hub.last_publish_report] == \
            ["healed"] * N_SHARDS
        assert hub.stats.snapshot_heals == N_SHARDS
        reference = make_taxonomy(3)
        for fixture in remotes:
            # healed onto the full v4 snapshot, stamped into lockstep
            assert fixture.client.version()["version"] == "v4"
            assert fixture.client.men2ent("新星2") == \
                reference.men2ent("新星2")
        # the next night applies cleanly again — the replica rejoined
        hub.publish_delta(nightly_delta(3))
        assert [r["outcome"] for r in hub.last_publish_report] == \
            ["applied"] * N_SHARDS

    def test_refusing_replica_without_heal_path_is_marked_failed(
        self, hub, remotes
    ):
        hub.publish_delta(nightly_delta(0))
        hub.swap(make_taxonomy(2))  # break the chain
        attach(hub, remotes)
        hub.publish_delta(nightly_delta(2))  # no snapshot_path
        assert [r["outcome"] for r in hub.last_publish_report] == \
            ["failed"] * N_SHARDS
        # the stale replicas left the rotation; local replicas serve
        health = hub.health()
        for replicas in health:
            assert replicas[0]["healthy"] is True  # the store view
            assert replicas[1]["healthy"] is False  # the stale remote
        assert hub.men2ent("新星2") == ["新星2#0"]


class TestStorelessRouter:
    """A pure-remote router: every backend is a remote process."""

    @pytest.fixture
    def cluster(self, request):
        fixtures = [
            RemoteFixture(make_taxonomy(0), shard_id)
            for shard_id in range(N_SHARDS)
        ]
        request.addfinalizer(lambda: [f.close() for f in fixtures])
        router = ReplicatedRouter(
            [[fixtures[shard_id].backend] for shard_id in range(N_SHARDS)]
        )
        return router, fixtures

    def test_reads_route_over_the_wire(self, cluster):
        router, _ = cluster
        reference = make_taxonomy(0)
        assert router.men2ent("华仔") == reference.men2ent("华仔")
        assert router.men2ent_batch(["华仔", "周杰伦"]) == [
            ["刘德华#0"], ["周杰伦#0"],
        ]

    def test_publish_delta_returns_the_report(self, cluster):
        router, fixtures = cluster
        report = router.publish_delta(nightly_delta(0))
        assert [r["outcome"] for r in report] == ["applied"] * N_SHARDS
        for fixture in fixtures:
            assert fixture.client.version()["version"] == "v2"
        assert router.version_lineage() == ["v2"]
        # the router versioned the publish itself (storeless lineage)
        report = router.publish_delta(nightly_delta(1))
        assert [r["outcome"] for r in report] == ["applied"] * N_SHARDS
        assert router.version_lineage() == ["v2", "v3"]


class TestConflictHandshake:
    """The wire-level base_version handshake, seen from the client."""

    @pytest.fixture
    def remote(self, request):
        fixture = RemoteFixture(make_taxonomy(0), shard_id=0)
        request.addfinalizer(fixture.close)
        return fixture

    def test_stale_base_version_is_a_clean_conflict(self, remote):
        delta = nightly_delta(1)  # computed against v2, replica is v1
        with pytest.raises(DeltaConflictError) as excinfo:
            remote.client.apply_delta_wire(delta, base_version="v2")
        assert excinfo.value.server_version == "v1"
        # the old version is still serving, untouched
        assert remote.client.version()["version"] == "v1"
        assert remote.client.men2ent("华仔") == ["刘德华#0"]

    def test_retried_publish_surfaces_as_conflict_not_traceback(
        self, remote
    ):
        delta = nightly_delta(0)
        remote.client.apply_delta_wire(delta, base_version="v1")
        assert remote.client.version()["version"] == "v2"
        # an orchestrator re-sends the same publish (e.g. it timed out
        # reading the first response): the replica already holds the
        # exact bytes the delta produces, so it merges — no re-apply,
        # no 409, same version still serving
        payload = remote.client.apply_delta_wire(delta, base_version="v1")
        assert payload["applied"] is True
        assert payload["version"] == "v2"
        assert remote.client.version()["version"] == "v2"
        # a *different* delta against the same stale base is a genuine
        # divergence: clean conflict carrying version + content hash,
        # old answer kept
        diverged = TaxonomyDelta.compute(make_taxonomy(0), make_taxonomy(2))
        with pytest.raises(DeltaConflictError) as excinfo:
            remote.client.apply_delta_wire(diverged, base_version="v1")
        assert excinfo.value.server_version == "v2"
        assert excinfo.value.server_content_hash == \
            make_taxonomy(1).content_hash()
        assert remote.client.version()["version"] == "v2"

    def test_matching_base_version_applies(self, remote):
        payload = remote.client.apply_delta_wire(
            nightly_delta(0), base_version="v1", version=2
        )
        assert payload["applied"] is True
        assert payload["version"] == "v2"
        assert remote.client.men2ent("新星0") == ["新星0#0"]

    def test_sliced_publish_only_touches_owned_keys(self, remote):
        delta = nightly_delta(0)
        sliced = delta.slice(lambda key: shard_for(key, N_SHARDS) == 0)
        remote.client.apply_delta_wire(
            sliced,
            base_version="v1",
            version=2,
            slice_spec={"shard_id": 0, "n_shards": N_SHARDS},
        )
        reference = make_taxonomy(1)
        base = make_taxonomy(0)
        for key in ("新星0", "新星0#0", "歌手", "演员"):
            expected = (
                reference if shard_for(key, N_SHARDS) == 0 else base
            )
            assert remote.client.men2ent(key) == expected.men2ent(key)
            assert remote.client.get_entities(key) == \
                expected.get_entities(key)


class TestRouterFrontedReplica:
    """A remote replica process running `serve --replicas R` puts a
    ReplicatedRouter in front of its store: version-stamped, sliced
    wire publishes must pass through it exactly like a bare store."""

    @pytest.fixture
    def remote(self, request):
        server = start_server(
            build_cluster(make_taxonomy(0), shards=2, replicas=2),
            admin_token=ADMIN_TOKEN,
        )
        request.addfinalizer(server.close)
        return TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)

    def test_wire_publish_with_version_and_handshake(self, remote):
        payload = remote.apply_delta_wire(
            nightly_delta(0), base_version="v1", version=3
        )
        assert payload["applied"] is True
        assert payload["version"] == "v3"
        assert remote.men2ent("新星0") == ["新星0#0"]
        assert remote.version()["lineage"] == ["v3"]
        # a re-sent identical publish merges (the router-fronted store
        # already holds the target bytes); a diverged one conflicts
        payload = remote.apply_delta_wire(
            nightly_delta(0), base_version="v1"
        )
        assert payload["version"] == "v3"
        diverged = TaxonomyDelta.compute(make_taxonomy(0), make_taxonomy(2))
        with pytest.raises(DeltaConflictError) as excinfo:
            remote.apply_delta_wire(diverged, base_version="v1")
        assert excinfo.value.server_version == "v3"

    def test_sliced_wire_publish(self, remote):
        delta = nightly_delta(0)
        sliced = delta.slice(lambda key: shard_for(key, N_SHARDS) == 0)
        payload = remote.apply_delta_wire(
            sliced,
            base_version="v1",
            version=2,
            slice_spec={"shard_id": 0, "n_shards": N_SHARDS},
        )
        assert payload["applied"] is True
        reference, base = make_taxonomy(1), make_taxonomy(0)
        for key in ("新星0", "歌手"):
            expected = reference if shard_for(key, N_SHARDS) == 0 else base
            assert remote.men2ent(key) == expected.men2ent(key)


def test_storeless_stale_explicit_version_is_refused(request):
    from repro.errors import TaxonomyError

    fixture = RemoteFixture(make_taxonomy(0), shard_id=0)
    request.addfinalizer(fixture.close)
    router = ReplicatedRouter([[fixture.backend]], base_version=2)
    with pytest.raises(TaxonomyError, match="must be newer"):
        router.publish_delta(nightly_delta(0), version=2)
    # nothing was recorded or shipped: lineage and replica untouched
    assert router.version_lineage() == []
    assert fixture.client.version()["version"] == "v1"


class TestSwapWithRemotes:
    """A full swap must never leave a healthy-but-stale remote serving."""

    def test_swap_without_snapshot_parks_remotes_as_stale(
        self, hub, remotes
    ):
        attach(hub, remotes)
        hub.swap(make_taxonomy(2))  # no snapshot_path: cannot ship it
        assert [r["outcome"] for r in hub.last_publish_report] == \
            ["stale"] * N_SHARDS
        # the remotes are out of the rotation…
        for replicas in hub.health():
            assert replicas[1]["healthy"] is False
        # …and the version-aware probe refuses to re-admit them while
        # they still serve v1 (alive, but behind the swap)
        assert hub.probe_all() == 0
        for replicas in hub.health():
            assert replicas[1]["healthy"] is False
        # reads keep answering the swapped version from local replicas
        assert hub.men2ent("新星1") == ["新星1#0"]

    def test_swap_with_snapshot_heals_remotes(self, hub, remotes, tmp_path):
        attach(hub, remotes)
        snapshot_path = tmp_path / "rebuilt.jsonl"
        make_taxonomy(2).save(snapshot_path)
        hub.swap(make_taxonomy(2), snapshot_path=str(snapshot_path))
        assert [r["outcome"] for r in hub.last_publish_report] == \
            ["healed"] * N_SHARDS
        reference = make_taxonomy(2)
        for fixture in remotes:
            assert fixture.client.version()["version"] == "v2"
            assert fixture.client.men2ent("新星1") == \
                reference.men2ent("新星1")
        # healed replicas pass the version-aware probe and keep serving
        for replicas in hub.health():
            assert all(state["healthy"] for state in replicas)

    def test_healed_replica_is_probed_back_into_rotation(
        self, hub, remotes, tmp_path
    ):
        attach(hub, remotes)
        hub.swap(make_taxonomy(2))  # parks the remotes as stale
        # out-of-band heal (an operator swaps the replica directly,
        # stamped to the hub's version)…
        snapshot_path = tmp_path / "rebuilt.jsonl"
        make_taxonomy(2).save(snapshot_path)
        for fixture in remotes:
            fixture.client.swap(str(snapshot_path), version=2)
        # …after which the probe happily re-admits them
        assert hub.probe_all() == N_SHARDS
        for replicas in hub.health():
            assert all(state["healthy"] for state in replicas)


class TestVersionAlignedAdmission:
    """The rotation never mixes taxonomy versions — at attach, at
    probe, and across a publish that re-admits a caught-up replica."""

    def test_attach_parks_a_lagging_replica_until_publish(
        self, hub, remotes
    ):
        hub.publish_delta(nightly_delta(0))  # hub at v2, remotes at v1
        attach(hub, remotes)
        # parked on arrival: reads must not alternate v1/v2 answers
        for replicas in hub.health():
            assert replicas[1]["healthy"] is False
        for _ in range(4):
            assert hub.men2ent("新星0") == ["新星0#0"]
        # the next publish catches them up by chain and re-admits them
        hub.publish_delta(nightly_delta(1))
        assert [r["outcome"] for r in hub.last_publish_report] == \
            ["chained"] * N_SHARDS
        for replicas in hub.health():
            assert all(state["healthy"] for state in replicas)
        for _ in range(4):  # both rotation slots serve v3 now
            assert hub.men2ent("新星1") == ["新星1#0"]

    def test_read_only_router_probe_ignores_foreign_versions(
        self, request
    ):
        # a storeless router that never published is a plain load
        # balancer: the replicas' own version lineage is not its
        # business, so a transient failure must not park them forever
        fixture = RemoteFixture(make_taxonomy(0), shard_id=0)
        request.addfinalizer(fixture.close)
        fixture.client.apply_delta_wire(nightly_delta(0))  # replica at v2
        router = ReplicatedRouter([[fixture.backend]])
        router.mark_unhealthy(0, 0)
        assert router.probe(0, 0) is True  # alive is enough here
        assert router.men2ent("新星0") == ["新星0#0"]


class TestMalformedVersionStamp:
    @pytest.fixture
    def remote(self, request):
        fixture = RemoteFixture(make_taxonomy(0), shard_id=0)
        request.addfinalizer(fixture.close)
        return fixture

    def test_garbage_stamps_are_rejected_not_coerced(self, remote):
        from repro.errors import APIError

        for garbage in (True, 4.9, "five", "v4.9", [4]):
            with pytest.raises(APIError, match="malformed publish version"):
                remote.client._request(
                    "/admin/apply-delta",
                    body={
                        "delta": nightly_delta(0).to_wire(),
                        "version": garbage,
                    },
                    admin=True,
                    idempotent=False,
                )
        assert remote.client.version()["version"] == "v1"  # untouched


class TestLockedHandshake:
    """base_version is compared inside the publish lock, not before it."""

    def test_store_level_handshake(self):
        from repro.serving.sharding import ShardedSnapshotStore

        store = ShardedSnapshotStore(make_taxonomy(0), n_shards=2)
        with pytest.raises(DeltaConflictError) as excinfo:
            store.publish_delta(nightly_delta(0), base_version=3)
        assert excinfo.value.server_version == "v1"
        assert store.version_id == "v1"  # old set still serving
        store.publish_delta(nightly_delta(0), base_version=1)
        assert store.version_id == "v2"

    def test_service_level_handshake(self):
        from repro.taxonomy.service import TaxonomyService

        service = TaxonomyService(make_taxonomy(0))
        with pytest.raises(DeltaConflictError):
            service.publish_delta(nightly_delta(0), base_version=7)
        assert service.version_id == "v1"
        service.publish_delta(nightly_delta(0), base_version=1)
        assert service.version_id == "v2"

    def test_parked_remote_is_readmitted_by_swap_heal(
        self, hub, remotes, tmp_path
    ):
        attach(hub, remotes)
        hub.swap(make_taxonomy(1))  # parks the remotes as stale
        for replicas in hub.health():
            assert replicas[1]["healthy"] is False
        snapshot_path = tmp_path / "rebuilt.jsonl"
        make_taxonomy(2).save(snapshot_path)
        hub.swap(make_taxonomy(2), snapshot_path=str(snapshot_path))
        assert [r["outcome"] for r in hub.last_publish_report] == \
            ["healed"] * N_SHARDS
        # healed replicas rejoin the rotation immediately — no probe
        # round-trip needed
        for replicas in hub.health():
            assert all(state["healthy"] for state in replicas)
        for _ in range(4):
            assert hub.men2ent("新星1") == ["新星1#0"]


class TestUnchainableHistory:
    """A history whose recorded deltas don't actually chain must never
    let a publish raise — the snapshot heal (or a failed mark) decides."""

    def _rescore_delta(self, old_score, new_score):
        # structural validation only checks serving-key presence, so
        # two independently-computed rescore deltas can both be
        # accepted while violating compose()'s strict chaining
        return TaxonomyDelta(
            name="CN-Probase",
            relations_changed=(
                (
                    IsARelation("刘德华#0", "歌手", "tag", score=old_score),
                    IsARelation("刘德华#0", "歌手", "tag", score=new_score),
                ),
            ),
        )

    def test_broken_chain_falls_back_instead_of_raising(
        self, hub, remotes, tmp_path
    ):
        hub.publish_delta(self._rescore_delta(1.0, 2.0))  # v2
        hub.publish_delta(self._rescore_delta(5.0, 3.0))  # v3: unchains
        attach(hub, remotes)  # parked at v1
        snapshot_path = tmp_path / "current.jsonl"
        make_taxonomy(1).save(snapshot_path)
        # publish with a heal path: compose([d1,d2,d3]) raises inside
        # the catch-up, which must fall through to the snapshot heal
        hub.publish_delta(
            nightly_delta(0), snapshot_path=str(snapshot_path)
        )
        assert [r["outcome"] for r in hub.last_publish_report] == \
            ["healed"] * N_SHARDS
        for fixture in remotes:
            assert fixture.client.version()["version"] == "v4"

    def test_broken_chain_without_heal_path_marks_failed(
        self, hub, remotes
    ):
        hub.publish_delta(self._rescore_delta(1.0, 2.0))
        hub.publish_delta(self._rescore_delta(5.0, 3.0))
        attach(hub, remotes)
        hub.publish_delta(nightly_delta(0))  # must not raise
        assert [r["outcome"] for r in hub.last_publish_report] == \
            ["failed"] * N_SHARDS


def test_storeless_router_refuses_key_filter(request):
    from repro.errors import APIError

    fixture = RemoteFixture(make_taxonomy(0), shard_id=0)
    request.addfinalizer(fixture.close)
    router = ReplicatedRouter([[fixture.backend]])
    with pytest.raises(APIError, match="no backing store to key-filter"):
        router.publish_delta(
            nightly_delta(0), key_filter=lambda key: True
        )
    assert fixture.client.version()["version"] == "v1"  # nothing shipped
