"""Tests for the key-hashed sharded snapshot store (repro.serving.sharding)."""

import random
import threading

import pytest

from repro.errors import APIError
from repro.serving.sharding import (
    ShardSet,
    ShardedSnapshotStore,
    shard_for,
)
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.service import TaxonomyService
from repro.taxonomy.store import Taxonomy
from repro.workloads import ArgumentPools, TableIICallStream


def make_taxonomy(n_entities: int = 120, seed: int = 3) -> Taxonomy:
    """A taxonomy big enough that every shard count gets populated."""
    rng = random.Random(seed)
    taxonomy = Taxonomy()
    concepts = [f"概念{i}" for i in range(24)]
    for i in range(n_entities):
        page_id = f"实体{i}#0"
        aliases = (f"别名{i}",) if i % 2 else ()
        taxonomy.add_entity(Entity(page_id, f"实体{i}", aliases=aliases))
        for concept in rng.sample(concepts, k=rng.randint(1, 3)):
            taxonomy.add_relation(IsARelation(page_id, concept, "bracket"))
    return taxonomy


@pytest.fixture(scope="module")
def taxonomy():
    return make_taxonomy()


@pytest.fixture(scope="module")
def reference(taxonomy):
    return TaxonomyService(taxonomy)


class TestShardFor:
    def test_stable_and_in_range(self):
        for key in ("华仔", "实体7#0", "概念3", "x"):
            first = shard_for(key, 4)
            assert first == shard_for(key, 4)
            assert 0 <= first < 4

    def test_single_shard_is_zero(self):
        assert shard_for("anything", 1) == 0

    def test_invalid_shard_count(self):
        with pytest.raises(APIError):
            shard_for("key", 0)


class TestPartition:
    def test_each_key_lands_in_exactly_one_shard(self, taxonomy):
        shard_set = ShardSet.partition(1, taxonomy, 4)
        frozen = taxonomy.freeze()
        for index_pos in range(3):
            full = frozen.as_indexes()[index_pos]
            seen: dict[str, int] = {}
            for shard in shard_set.shards:
                for key in shard.read_view.as_indexes()[index_pos]:
                    assert key not in seen
                    seen[key] = shard.shard_id
                    assert shard.shard_id == shard_for(key, 4)
            assert set(seen) == set(full)

    def test_all_shard_counts_cover_all_relations(self, taxonomy):
        frozen = taxonomy.freeze()
        total = sum(
            len(v) for v in frozen.as_indexes()[1].values()
        )
        for n_shards in (1, 2, 4):
            shard_set = ShardSet.partition(1, taxonomy, n_shards)
            assert sum(len(s.read_view) for s in shard_set.shards) == total

    def test_partition_from_frozen_view(self, taxonomy):
        frozen = taxonomy.freeze()
        a = ShardSet.partition(1, taxonomy, 2)
        b = ShardSet.partition(1, frozen, 2)
        for shard_a, shard_b in zip(a.shards, b.shards):
            assert shard_a.read_view.as_indexes() == \
                shard_b.read_view.as_indexes()


class TestAnswerIdentity:
    """Sharded answers must be byte-identical to the unsharded facade."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_full_workload_singles(self, taxonomy, reference, n_shards):
        store = ShardedSnapshotStore(taxonomy, n_shards=n_shards)
        calls = TableIICallStream(
            ArgumentPools.from_taxonomy(taxonomy), seed=11
        ).generate(1_500)
        single = {
            "men2ent": (store.men2ent, reference.men2ent),
            "getConcept": (store.get_concepts, reference.get_concepts),
            "getEntity": (store.get_entities, reference.get_entities),
        }
        for call in calls:
            sharded, unsharded = single[call.api]
            assert sharded(call.argument) == unsharded(call.argument)

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_full_workload_batched(self, taxonomy, reference, n_shards):
        store = ShardedSnapshotStore(taxonomy, n_shards=n_shards)
        generator = TableIICallStream(
            ArgumentPools.from_taxonomy(taxonomy), seed=12
        )
        buffers: dict[str, list[str]] = {
            "men2ent": [], "getConcept": [], "getEntity": [],
        }
        for call in generator.generate(1_200):
            buffers[call.api].append(call.argument)
        assert store.men2ent_batch(buffers["men2ent"]) == \
            reference.men2ent_batch(buffers["men2ent"])
        assert store.get_concepts_batch(buffers["getConcept"]) == \
            reference.get_concepts_batch(buffers["getConcept"])
        assert store.get_entities_batch(buffers["getEntity"]) == \
            reference.get_entities_batch(buffers["getEntity"])

    def test_batch_preserves_argument_order(self, taxonomy, reference):
        store = ShardedSnapshotStore(taxonomy, n_shards=4)
        mentions = [f"实体{i}" for i in range(40)] + ["不存在的词"]
        assert store.men2ent_batch(mentions) == \
            reference.men2ent_batch(mentions)

    def test_deprecated_aliases_served(self, taxonomy, reference):
        store = ShardedSnapshotStore(taxonomy, n_shards=2)
        with pytest.deprecated_call():
            assert store.get_concept("实体1#0") == \
                reference.get_concepts("实体1#0")
        with pytest.deprecated_call():
            assert store.get_entities(["概念1"]) == \
                reference.get_entities_batch(["概念1"])


class TestValidationAndMetrics:
    def test_empty_argument_rejected(self, taxonomy):
        store = ShardedSnapshotStore(taxonomy, n_shards=2)
        with pytest.raises(APIError):
            store.men2ent("")
        with pytest.raises(APIError):
            store.get_concepts_batch(["实体1#0", ""])
        assert store.metrics.total_calls == 0

    def test_batch_rejects_single_string(self, taxonomy):
        store = ShardedSnapshotStore(taxonomy, n_shards=2)
        with pytest.raises(APIError, match="sequence"):
            store.men2ent_batch("华仔")

    def test_metrics_accounting(self, taxonomy):
        store = ShardedSnapshotStore(taxonomy, n_shards=4)
        store.men2ent("实体1")
        store.men2ent("无此词")
        store.get_entities_batch(["概念1", "概念2"])
        metrics = store.metrics
        assert metrics.total_calls == 4
        assert metrics.latency("men2ent").calls == 2
        assert metrics.latency("men2ent").hits == 1
        assert metrics.latency("getEntity").calls == 2

    def test_invalid_shard_count(self, taxonomy):
        with pytest.raises(APIError):
            ShardedSnapshotStore(taxonomy, n_shards=0)


class TestSwap:
    def test_swap_bumps_every_shard_version(self, taxonomy):
        store = ShardedSnapshotStore(taxonomy, n_shards=4)
        assert store.version_id == "v1"
        assert store.shard_versions() == ["v1"] * 4
        rebuilt = make_taxonomy(seed=9)
        shard_set = store.swap(rebuilt)
        assert shard_set.version_id == "v2"
        assert store.shard_versions() == ["v2"] * 4
        assert store.metrics.swaps == 1

    def test_swap_changes_answers(self):
        old = Taxonomy()
        old.add_entity(Entity("e#0", "e"))
        old.add_relation(IsARelation("e#0", "旧概念", "bracket"))
        new = Taxonomy()
        new.add_entity(Entity("e#0", "e"))
        new.add_relation(IsARelation("e#0", "新概念", "bracket"))
        store = ShardedSnapshotStore(old, n_shards=2)
        assert store.get_concepts("e#0") == ["旧概念"]
        store.swap(new)
        assert store.get_concepts("e#0") == ["新概念"]

    def test_failed_swap_is_all_or_nothing(self, taxonomy, monkeypatch):
        store = ShardedSnapshotStore(taxonomy, n_shards=2)
        before = store.shard_set

        class ExplodingTaxonomy:
            name = "boom"

            def as_indexes(self):
                raise RuntimeError("partition exploded mid-way")

        with pytest.raises(RuntimeError):
            store.swap(ExplodingTaxonomy())
        # old version untouched, still serving, no half-published shards
        assert store.shard_set is before
        assert store.version_id == "v1"
        assert store.metrics.swaps == 0
        assert store.men2ent("实体1") == ["实体1#0"]

    def test_immune_to_source_mutation_after_publish(self):
        taxonomy = Taxonomy()
        taxonomy.add_entity(Entity("e#0", "e"))
        taxonomy.add_relation(IsARelation("e#0", "概念", "bracket"))
        store = ShardedSnapshotStore(taxonomy, n_shards=2)
        taxonomy.add_entity(Entity("f#0", "f"))
        taxonomy.add_relation(IsARelation("f#0", "概念", "bracket"))
        assert store.get_entities("概念") == ["e#0"]


class TestConcurrentSwapUnderLoad:
    """Satellite: hammer batches from threads while versions swap.

    Every key answers a version-marker concept, so a torn batch (some
    answers from v_n, some from v_n+1) is directly observable.  The
    pinned-ShardSet design must make that impossible at any shard
    count.
    """

    N_ENTITIES = 60

    def _versioned_taxonomy(self, marker: str) -> Taxonomy:
        taxonomy = Taxonomy()
        for i in range(self.N_ENTITIES):
            page_id = f"并发{i}#0"
            taxonomy.add_entity(Entity(page_id, f"并发{i}"))
            taxonomy.add_relation(IsARelation(page_id, marker, "bracket"))
        return taxonomy

    def test_no_torn_batches_while_swapping(self):
        markers = ("版本A", "版本B")
        taxonomies = [self._versioned_taxonomy(m) for m in markers]
        store = ShardedSnapshotStore(taxonomies[0], n_shards=4)
        page_ids = [f"并发{i}#0" for i in range(self.N_ENTITIES)]
        # the ids must actually span shards for the test to mean anything
        assert len({shard_for(p, 4) for p in page_ids}) > 1

        anomalies: list[tuple] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                batch = store.get_concepts_batch(page_ids)
                versions = {tuple(answer) for answer in batch}
                if len(versions) != 1:
                    anomalies.append(("torn batch", versions))
                    return
                if versions not in ({(markers[0],)}, {(markers[1],)}):
                    anomalies.append(("unexpected answer", versions))
                    return

        def swapper() -> None:
            for i in range(40):
                store.swap(taxonomies[(i + 1) % 2])

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        swap_thread = threading.Thread(target=swapper)
        swap_thread.start()
        swap_thread.join()
        stop.set()
        for thread in readers:
            thread.join()

        assert anomalies == []
        assert store.metrics.swaps == 40


class TestPublishDelta:
    """Per-shard delta publishes: answer-preserving, identity-preserving."""

    def _evolved(self) -> Taxonomy:
        new = make_taxonomy()
        new.add_entity(Entity("新实体#0", "新实体", aliases=("小新",)))
        new.add_relation(IsARelation("新实体#0", "概念0", "bracket"))
        new.add_relation(IsARelation("实体3#0", "新概念", "tag"))
        return new

    def _all_keys(self, *taxonomies) -> set[str]:
        keys: set[str] = set()
        for taxonomy in taxonomies:
            for index in taxonomy.freeze().as_indexes():
                keys.update(index)
        return keys

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_answers_match_a_full_swap(self, n_shards):
        from repro.taxonomy.delta import TaxonomyDelta

        old, new = make_taxonomy(), self._evolved()
        delta = TaxonomyDelta.compute(old, new)
        store = ShardedSnapshotStore(make_taxonomy(), n_shards=n_shards)
        store.publish_delta(delta)
        reference = ShardedSnapshotStore(self._evolved(), n_shards=n_shards)
        for key in self._all_keys(old, new):
            assert store.men2ent(key) == reference.men2ent(key)
            assert store.get_concepts(key) == reference.get_concepts(key)
            assert store.get_entities(key) == reference.get_entities(key)
        assert [s.read_view.stats() for s in store.shard_set.shards] == \
            [s.read_view.stats() for s in reference.shard_set.shards]

    def test_untouched_shards_keep_object_identity(self):
        from repro.serving.sharding import shard_for as hash_key
        from repro.taxonomy.delta import TaxonomyDelta

        old, new = make_taxonomy(), self._evolved()
        delta = TaxonomyDelta.compute(old, new)
        n_shards = 8
        store = ShardedSnapshotStore(make_taxonomy(), n_shards=n_shards)
        before = list(store.shard_set.shards)
        store.publish_delta(delta)
        after = list(store.shard_set.shards)
        touched = {
            hash_key(key, n_shards)
            for key in delta.touched_serving_keys()
        }
        assert touched and len(touched) < n_shards  # both kinds exist
        for shard_id in range(n_shards):
            if shard_id in touched:
                assert after[shard_id] is not before[shard_id]
                assert after[shard_id].version_id == "v2"
            else:
                assert after[shard_id] is before[shard_id]
                assert after[shard_id].read_view is before[shard_id].read_view
                assert after[shard_id].version_id == "v1"
        assert store.version_id == "v2"
        assert store.metrics.swaps == 1

    def test_rescore_only_delta_touches_no_shard(self):
        from repro.taxonomy.delta import TaxonomyDelta

        old = make_taxonomy()
        new = make_taxonomy()
        target = old.relations()[0]
        new.add_relation(
            IsARelation(
                target.hyponym, target.hypernym, target.source, score=9.0
            )
        )
        delta = TaxonomyDelta.compute(old, new)
        assert delta.relations_changed and not delta.relations_added
        store = ShardedSnapshotStore(make_taxonomy(), n_shards=4)
        before = list(store.shard_set.shards)
        store.publish_delta(delta)
        assert all(
            a is b for a, b in zip(store.shard_set.shards, before)
        )
        assert store.version_id == "v2"  # lineage still advances

    def test_pinned_batches_survive_a_delta_publish(self):
        from repro.taxonomy.delta import TaxonomyDelta

        old, new = make_taxonomy(), self._evolved()
        store = ShardedSnapshotStore(make_taxonomy(), n_shards=4)
        pinned = store.shard_set
        store.publish_delta(TaxonomyDelta.compute(old, new))
        # a reader that pinned the old set keeps the old answers
        assert pinned.shard_of("小新").lookup("men2ent", "小新") == []
        assert store.men2ent("小新") == ["新实体#0"]

    def test_router_delegates_publish_delta(self):
        from repro.serving.router import ReplicatedRouter
        from repro.taxonomy.delta import TaxonomyDelta

        old, new = make_taxonomy(), self._evolved()
        store = ShardedSnapshotStore(make_taxonomy(), n_shards=2)
        router = ReplicatedRouter.from_store(store, replicas=2)
        router.publish_delta(TaxonomyDelta.compute(old, new))
        assert router.men2ent("小新") == ["新实体#0"]
        assert router.version_id == "v2"


class TestEmptyDeltaPublish:
    """An empty delta is an exact no-op on every shard."""

    def test_no_shard_changes_and_no_shard_version_bump(self):
        from repro.taxonomy.delta import TaxonomyDelta

        store = ShardedSnapshotStore(make_taxonomy(), n_shards=4)
        before = store.shard_set
        store.publish_delta(TaxonomyDelta(name=before.shards[0].read_view.name))
        after = store.shard_set
        # every shard crossed the publish object-identical…
        for old, new in zip(before.shards, after.shards):
            assert new is old
            assert new.read_view is old.read_view
        # …so the per-shard lineage did not move
        assert store.shard_versions() == ["v1"] * 4
        # while the set version advanced, keeping handshakes alive
        assert store.version_id == "v2"

    def test_delta_touching_no_serving_key_is_also_a_no_op(self):
        from repro.taxonomy.delta import TaxonomyDelta

        base = make_taxonomy()
        rescored = base.copy()
        existing = base.relations()[0]
        rescored.add_relation(
            IsARelation(
                existing.hyponym, existing.hypernym, existing.source,
                score=existing.score + 9.0,
            )
        )
        delta = TaxonomyDelta.compute(base, rescored)
        assert not delta.is_empty  # a pure rescore…
        assert delta.relations_changed  # …of an existing pair…
        store = ShardedSnapshotStore(base, n_shards=4)
        before = store.shard_set.shards
        store.publish_delta(delta)
        for old, new in zip(before, store.shard_set.shards):
            assert new is old  # …touches zero shards
        assert store.shard_versions() == ["v1"] * 4


class TestPublishVersionStamping:
    def _grown(self, base):
        grown = base.copy()
        grown.add_entity(Entity("新星#0", "新星"))
        grown.add_relation(IsARelation("新星#0", "概念0", "bracket"))
        return grown

    def test_explicit_version_on_swap_and_delta(self):
        from repro.taxonomy.delta import TaxonomyDelta
        from repro.errors import TaxonomyError

        base = make_taxonomy()
        store = ShardedSnapshotStore(base, n_shards=2)
        store.swap(base, version=5)
        assert store.version_id == "v5"
        grown = self._grown(base)
        store.publish_delta(TaxonomyDelta.compute(base, grown), version=9)
        assert store.version_id == "v9"
        assert store.version_lineage() == ["v9"]
        assert store.delta_history.chain(5, 9) is not None
        with pytest.raises(TaxonomyError, match="must be newer"):
            store.swap(base, version=4)
        assert store.version_id == "v9"

    def test_key_filtered_publish_applies_only_owned_keys(self):
        from repro.taxonomy.delta import TaxonomyDelta

        base = make_taxonomy()
        grown = self._grown(base)
        full_delta = TaxonomyDelta.compute(base, grown)

        # a "replica" holding one cluster shard's slice: build it by
        # filtering the full index down to the keys shard 0 of 2 owns
        n_cluster = 2
        keep = lambda key: shard_for(key, n_cluster) == 0  # noqa: E731
        sliced_delta = full_delta.slice(keep)

        replica = ShardedSnapshotStore(base, n_shards=1)
        replica.publish_delta(sliced_delta, key_filter=keep)
        reference = ShardedSnapshotStore(grown, n_shards=1)
        # keys the replica owns answer the new version exactly…
        for key in ("新星", "新星#0", "概念0"):
            if keep(key):
                assert replica.men2ent(key) == reference.men2ent(key)
                assert replica.get_concepts(key) == \
                    reference.get_concepts(key)
                assert replica.get_entities(key) == \
                    reference.get_entities(key)
        # …and keys it does not own were never touched (still v1 data,
        # which is fine: the router never routes them here)
        for key in ("新星", "新星#0", "概念0"):
            if not keep(key):
                base_ref = ShardedSnapshotStore(base, n_shards=1)
                assert replica.men2ent(key) == base_ref.men2ent(key)

    def test_sliced_delta_without_filter_is_refused(self):
        from repro.errors import TaxonomyError
        from repro.taxonomy.delta import TaxonomyDelta

        base = make_taxonomy()
        grown = self._grown(base)
        full_delta = TaxonomyDelta.compute(base, grown)
        n_cluster = 2
        target_shard = shard_for("新星#0", n_cluster)
        other = 1 - target_shard
        sliced = full_delta.slice(
            lambda key: shard_for(key, n_cluster) == other
        )
        replica = ShardedSnapshotStore(base, n_shards=1)
        if sliced.is_empty:
            pytest.skip("every key of the delta hashed to one shard")
        # applying a slice *without* declaring the filter validates the
        # full keyspace: fine here (structurally consistent), so this
        # documents that the filter is about ownership, not validity
        replica.publish_delta(sliced)
        assert replica.version_id == "v2"
