"""Self-healing replication: resync outcomes and delta-chain edges.

The probe-time auto-resync contract under the awkward conditions:
a catch-up chain racing a concurrent publish, a history ring that has
already evicted the needed base, a second publisher shipping the same
nightly delta (merge, not fork), and the replica-driven
:func:`~repro.serving.replica.resync_replica` ladder — aligned →
chained → healed → refuse.
"""

import threading

import pytest

from repro.errors import APIError, DeltaConflictError
from repro.serving import (
    LocalReplica,
    ReplicatedRouter,
    ShardedSnapshotStore,
    TaxonomyClient,
    build_cluster,
    resync_replica,
    start_server,
)
from repro.taxonomy.delta import DELTA_HISTORY_SIZE, TaxonomyDelta, compose
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy

ADMIN_TOKEN = "self-healing-test-token"


def make_taxonomy(generation: int = 0) -> Taxonomy:
    """A small world that grows one entity per generation."""
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_entity(Entity("周杰伦#0", "周杰伦"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
    t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
    for n in range(generation):
        page_id = f"新星{n}#0"
        t.add_entity(Entity(page_id, f"新星{n}"))
        t.add_relation(IsARelation(page_id, "歌手", "tag"))
    return t


def nightly_delta(generation: int) -> TaxonomyDelta:
    return TaxonomyDelta.compute(
        make_taxonomy(generation), make_taxonomy(generation + 1)
    )


def advanced_store(publishes: int) -> ShardedSnapshotStore:
    """A hub store at v1 advanced through *publishes* delta publishes."""
    store = ShardedSnapshotStore(make_taxonomy(0), n_shards=1)
    for generation in range(publishes):
        store.publish_delta(
            nightly_delta(generation), base_version=generation + 1
        )
    return store


class TestResyncLadder:
    """resync_replica against an in-process source: every outcome."""

    def test_aligned_replica_is_left_alone(self):
        source = ShardedSnapshotStore(make_taxonomy(0), n_shards=1)
        replica = LocalReplica(make_taxonomy(0))
        report = resync_replica(replica, source)
        assert report["outcome"] == "aligned"
        assert report["from_hash"] == report["to_hash"]

    def test_lagging_replica_chains_to_byte_identical_state(self):
        source = advanced_store(2)  # v1 → v3
        replica = LocalReplica(make_taxonomy(0))
        report = resync_replica(replica, source)
        assert report["outcome"] == "chained"
        assert report["hops"] == 2
        assert replica.published_version() == "v3"
        assert replica.published_content_hash() == source.content_hash
        assert replica.men2ent("新星1") == ["新星1#0"]

    def test_evicted_ring_without_snapshot_refuses_loudly(self):
        # enough publishes that the ring no longer reaches back to v1
        source = advanced_store(DELTA_HISTORY_SIZE + 2)
        replica = LocalReplica(make_taxonomy(0))
        with pytest.raises(APIError, match="not covered"):
            resync_replica(replica, source)
        # the failed resync must leave the replica serving its old state
        assert replica.published_version() == "v1"

    def test_evicted_ring_heals_through_the_snapshot(self, tmp_path):
        publishes = DELTA_HISTORY_SIZE + 2
        source = advanced_store(publishes)
        snapshot = tmp_path / "current.jsonl"
        make_taxonomy(publishes).save(snapshot)
        replica = LocalReplica(make_taxonomy(0))
        report = resync_replica(replica, source, snapshot_path=snapshot)
        assert report["outcome"] == "healed"
        assert replica.published_version() == f"v{publishes + 1}"
        assert replica.published_content_hash() == source.content_hash

    def test_resync_is_content_addressed_not_ordinal(self):
        # a replica whose ordinal matches the source but whose *bytes*
        # diverged (it was built from a different base) must not get a
        # chain blindly applied onto the wrong state
        source = advanced_store(1)  # at v2
        replica = LocalReplica(make_taxonomy(5), version=2)  # also "v2"
        # hash-aware planning sees the divergence: the matching ordinal
        # must not get the v1→v2 chain applied onto the wrong bytes —
        # with no snapshot to heal from, refusing loudly is the only
        # correct outcome
        with pytest.raises(APIError, match="not covered"):
            resync_replica(replica, source)
        assert replica.published_content_hash() == (
            make_taxonomy(5).content_hash()
        )


class TestDeltaChainWire:
    """GET /admin/delta-chain + the wire merge/conflict handshake."""

    @pytest.fixture
    def cluster(self, request):
        service = build_cluster(make_taxonomy(0), shards=1)
        server = start_server(service, admin_token=ADMIN_TOKEN)
        request.addfinalizer(server.close)
        client = TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)
        return service, client

    def test_chain_by_content_hash_covers_the_span(self, cluster):
        service, client = cluster
        base_hash = service.content_hash
        client.apply_delta_wire(
            nightly_delta(0), base_version="v1", version=2
        )
        payload = client.fetch_chain(base_hash)
        assert payload["covered"] is True
        assert payload["version"] == "v2"
        assert payload["content_hash"] == service.content_hash
        [hop] = payload["deltas"]
        assert hop["base_version"] == "v1"
        assert hop["base_content_hash"] == base_hash

    def test_chain_by_version_id_and_uncovered_hash(self, cluster):
        service, client = cluster
        client.apply_delta_wire(
            nightly_delta(0), base_version="v1", version=2
        )
        by_version = client.fetch_chain("v1")
        assert by_version["covered"] is True
        assert len(by_version["deltas"]) == 1
        unknown = client.fetch_chain("f" * 64)  # no such lineage point
        assert unknown["covered"] is False
        assert unknown["deltas"] == []
        assert unknown["version"] == "v2"  # state still reported

    def test_duplicate_publish_merges_instead_of_conflicting(self, cluster):
        service, client = cluster
        delta = nightly_delta(0)
        first = client.apply_delta_wire(delta, base_version="v1", version=2)
        assert first["applied"] is True
        # the second builder ships the same nightly delta: same bytes,
        # so the hub converges (still v2) instead of raising a 409
        again = client.apply_delta_wire(delta, base_version="v1", version=2)
        assert again["applied"] is True
        assert service.version_id == "v2"

    def test_diverged_publish_conflicts_with_server_hash(self, cluster):
        service, client = cluster
        client.apply_delta_wire(
            nightly_delta(0), base_version="v1", version=2
        )
        diverged = TaxonomyDelta.compute(make_taxonomy(0), make_taxonomy(3))
        with pytest.raises(DeltaConflictError) as excinfo:
            client.apply_delta_wire(diverged, base_version="v1", version=2)
        assert excinfo.value.server_version == "v2"
        assert excinfo.value.server_content_hash == service.content_hash

    def test_chain_fetch_racing_a_publish_stays_self_consistent(
        self, cluster
    ):
        """A fetch overlapping publishes returns a *consistent prefix*.

        Whatever interleaving happens, a covered payload's deltas must
        chain contiguously from the requested base to exactly the
        version and content hash the payload advertises — never a
        chain that stops short of the claimed state.
        """
        service, client = cluster
        base_hash = service.content_hash
        generations = 6
        errors: list[str] = []

        def publisher():
            for generation in range(generations):
                client.apply_delta_wire(
                    nightly_delta(generation),
                    base_version=f"v{generation + 1}",
                    version=generation + 2,
                )

        thread = threading.Thread(target=publisher)
        thread.start()
        try:
            for _ in range(20):
                payload = client.fetch_chain(base_hash)
                if not payload["covered"] or not payload["deltas"]:
                    continue
                hops = payload["deltas"]
                if hops[0]["base_content_hash"] != base_hash:
                    errors.append("chain does not start at the asked base")
                for earlier, later in zip(hops, hops[1:]):
                    if earlier["version"] != later["base_version"]:
                        errors.append("chain hops are not contiguous")
                if hops[-1]["version"] != payload["version"]:
                    errors.append("chain stops short of claimed version")
                if hops[-1]["content_hash"] != payload["content_hash"]:
                    errors.append("chain stops short of claimed hash")
        finally:
            thread.join()
        assert not errors, errors
        # and once quiet, the full span replays to the live bytes
        final = client.fetch_chain(base_hash)
        assert final["covered"] is True
        composed = compose([
            TaxonomyDelta.from_wire(hop["delta"], "race-test")
            for hop in final["deltas"]
        ])
        replayed = make_taxonomy(0).apply_delta(composed)
        assert replayed.content_hash() == service.content_hash


class TestProbeTimeResync:
    """The router end of self-healing: stale replicas pull their own fix."""

    def test_stale_attached_replica_rejoins_via_probe(self):
        replicas = [LocalReplica(make_taxonomy(0)) for _ in range(2)]
        router = ReplicatedRouter([list(replicas)], base_version=1)
        router.publish_delta(nightly_delta(0), base_version=1, version=2)
        # a replica restored from an old backup joins one version behind
        stale = LocalReplica(make_taxonomy(0), name="stale")
        router.attach_replica(0, stale)
        assert router.health()[0][-1]["healthy"] is False  # parked
        assert router.probe(0, 2) is True
        assert router.stats.probe_resyncs == 1
        assert router.stats.resync_chains == 1
        assert stale.published_content_hash() == router.content_hash
        assert router.last_resync_report[-1]["outcome"] == "chained"
        assert router.last_resync_report[-1]["hops"] == 1

    def test_wire_source_resync_uses_the_chain_endpoint(self, request):
        hub_service = build_cluster(make_taxonomy(0), shards=1)
        server = start_server(hub_service, admin_token=ADMIN_TOKEN)
        request.addfinalizer(server.close)
        client = TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)
        client.apply_delta_wire(
            nightly_delta(0), base_version="v1", version=2
        )
        client.apply_delta_wire(
            nightly_delta(1), base_version="v2", version=3
        )
        replica = LocalReplica(make_taxonomy(0))
        report = resync_replica(replica, client)  # source speaks HTTP
        assert report["outcome"] == "chained"
        assert report["hops"] == 2
        assert replica.published_version() == "v3"
        assert replica.published_content_hash() == hub_service.content_hash
