"""Unified telemetry across the serving stack.

Covers the observability acceptance gates end to end:

- a client-minted trace id shows up in spans recorded at the client,
  the HTTP server, the router, and the shard for the *same* request;
- ``/metrics`` stays consistent under concurrent readers while
  publishes swap snapshots underneath (no torn counters, every summary
  monotone in its quantiles);
- every ``last_publish_report`` entry — including the ``merged``
  outcome — carries one normalized schema, mirrored into the
  structured event log;
- the event log captures publishes, swaps, health transitions and
  resyncs with contiguous sequence numbers.
"""

import json
import threading
import time

import pytest

from repro.errors import APIError
from repro.obs import fresh_hub, trace_context
from repro.serving import (
    ReplicatedRouter,
    ShardedSnapshotStore,
    TaxonomyClient,
    build_cluster,
    start_server,
)
from repro.taxonomy.delta import TaxonomyDelta
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy

ADMIN_TOKEN = "obs-test-token"

#: Keys every publish-report entry carries, whatever its outcome.
REPORT_SCHEMA = {
    "shard", "replica", "backend", "outcome", "version", "content_hash",
}


def make_taxonomy(generation: int = 0) -> Taxonomy:
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_entity(Entity("周杰伦#0", "周杰伦"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", "歌手", "tag"))
    t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
    for n in range(generation):
        page_id = f"新星{n}#0"
        t.add_entity(Entity(page_id, f"新星{n}"))
        t.add_relation(IsARelation(page_id, "歌手", "tag"))
    return t


def nightly_delta(generation: int = 0) -> TaxonomyDelta:
    return TaxonomyDelta.compute(
        make_taxonomy(generation), make_taxonomy(generation + 1)
    )


class TestEndToEndTracing:
    def test_one_trace_id_spans_client_server_router_shard(self):
        with fresh_hub() as hub:
            router = build_cluster(
                make_taxonomy(), shards=2, replicas=2, hub=hub
            )
            server = start_server(router, admin_token=ADMIN_TOKEN, hub=hub)
            try:
                client = TaxonomyClient(
                    server.url, admin_token=ADMIN_TOKEN,
                    trace_every=1, hub=hub,
                )
                client.men2ent("华仔")
                # the server records its span *after* the response is on
                # the wire, so the handler thread may still be finishing
                # when this read arrives — poll briefly
                full = []
                for _ in range(100):
                    payload = client.fetch_traces()
                    by_trace = {}
                    for span in payload["spans"]:
                        by_trace.setdefault(
                            span["trace_id"], []
                        ).append(span)
                    full = [
                        spans for spans in by_trace.values()
                        if {"client", "server", "router", "shard"}
                        <= {s["component"] for s in spans}
                    ]
                    if full:
                        break
                    time.sleep(0.01)
            finally:
                server.close()
        assert full, f"no full-path trace in {sorted(by_trace)}"
        spans = {s["component"]: s for s in full[0]}
        # the client measured the whole round trip; the server a subset
        # of it; the router a subset of that; the shard lookups least
        assert spans["client"]["seconds"] >= spans["server"]["seconds"]
        assert spans["server"]["seconds"] >= spans["shard"]["seconds"]
        assert spans["shard"]["shard"] is not None
        assert spans["shard"]["version"] == "v1"
        assert spans["router"]["operation"] == "men2ent"

    def test_ambient_trace_context_propagates_over_http(self):
        with fresh_hub() as hub:
            server = start_server(
                build_cluster(make_taxonomy(), shards=1, hub=hub),
                admin_token=ADMIN_TOKEN, hub=hub,
            )
            try:
                client = TaxonomyClient(
                    server.url, admin_token=ADMIN_TOKEN, hub=hub
                )
                with trace_context("ambient-42"):
                    client.men2ent("华仔")
                components = set()
                for _ in range(100):  # server span lands post-response
                    components = {
                        s.component
                        for s in hub.traces.spans(trace_id="ambient-42")
                    }
                    if "server" in components:
                        break
                    time.sleep(0.01)
            finally:
                server.close()
        assert {"client", "server", "shard"} <= components

    def test_probe_traffic_is_never_traced(self):
        with fresh_hub() as hub:
            server = start_server(
                build_cluster(make_taxonomy(), shards=1, hub=hub),
                hub=hub,
            )
            try:
                client = TaxonomyClient(server.url, trace_every=1, hub=hub)
                from repro.taxonomy.service import PROBE_KEY

                client.men2ent(PROBE_KEY)
            finally:
                server.close()
            # probes never mint a trace id, so no client span exists;
            # the untraced request leaves no server span either
            assert not [
                s for s in hub.traces.spans() if s.component == "client"
            ]

    def test_traces_endpoint_requires_admin(self):
        with fresh_hub() as hub:
            server = start_server(
                build_cluster(make_taxonomy(), shards=1, hub=hub),
                admin_token=ADMIN_TOKEN, hub=hub,
            )
            try:
                anonymous = TaxonomyClient(server.url)
                with pytest.raises(APIError):
                    anonymous.fetch_traces()
                with pytest.raises(APIError):
                    anonymous.fetch_events()
            finally:
                server.close()


class TestMetricsUnderConcurrency:
    def test_concurrent_scrapes_during_publish_swaps(self):
        """Satellite 3: parallel readers during swaps see sane metrics."""
        with fresh_hub() as hub:
            router = build_cluster(
                make_taxonomy(), shards=2, replicas=2, hub=hub
            )
            server = start_server(router, admin_token=ADMIN_TOKEN, hub=hub)
            stop = threading.Event()
            failures: list[str] = []

            def scrape():
                client = TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)
                last_calls = -1.0
                while not stop.is_set():
                    try:
                        payload = client.server_metrics()
                        text = client.server_metrics_text()
                    except Exception as exc:  # noqa: BLE001
                        failures.append(f"scrape failed: {exc}")
                        return
                    metrics = payload["metrics"]
                    for name, family in metrics.items():
                        if family["type"] != "summary":
                            continue
                        for sample in family["samples"]:
                            if not (sample["p50"] <= sample["p95"]
                                    <= sample["p99"]):
                                failures.append(
                                    f"{name}: torn quantiles {sample}"
                                )
                    calls = sum(
                        s["value"]
                        for s in metrics["serving_api_calls_total"]["samples"]
                    )
                    if calls < last_calls:
                        failures.append(
                            f"calls counter went backwards: "
                            f"{calls} < {last_calls}"
                        )
                    last_calls = calls
                    if f"# TYPE serving_api_calls_total counter" not in text:
                        failures.append("text exposition missing counter")

            readers = [threading.Thread(target=scrape) for _ in range(3)]
            for t in readers:
                t.start()
            try:
                reader_client = TaxonomyClient(server.url)
                for generation in range(4):
                    for _ in range(20):
                        reader_client.men2ent("华仔")
                    router.swap(make_taxonomy(generation + 1))
            finally:
                stop.set()
                for t in readers:
                    t.join(timeout=30)
                server.close()
            assert not failures, failures[:5]

    def test_ops_paths_stay_out_of_latency_summaries(self):
        """Satellite 2: /metrics and friends never skew the quantiles."""
        with fresh_hub() as hub:
            server = start_server(
                build_cluster(make_taxonomy(), shards=1, hub=hub),
                admin_token=ADMIN_TOKEN, hub=hub,
            )
            try:
                client = TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)
                for _ in range(5):
                    client.server_metrics()
                    client.healthz()
                client.men2ent("华仔")
                payload = client.server_metrics()
            finally:
                server.close()
        families = payload["metrics"]
        latency_apis = {
            dict(s["labels"]).get("api")
            for s in families["http_request_seconds"]["samples"]
        }
        # only the /v1 query landed in the latency summary
        assert latency_apis == {"men2ent"}
        # ...while the request counter still saw the ops traffic
        counted = {
            dict(s["labels"])["path"]
            for s in families["http_requests_total"]["samples"]
        }
        assert {"/metrics", "/healthz", "/v1/men2ent"} <= counted


def storeless_router(hub):
    """Router over publish-capable local replicas (the chaos-cluster
    shape — a store-backed router's pinned locals skip the fan-out)."""
    from repro.serving.replica import LocalReplica

    replicas = [
        [LocalReplica(make_taxonomy(), hub=hub) for _ in range(2)]
    ]
    return ReplicatedRouter(replicas, base_version=1, hub=hub)


class TestPublishReportSchema:
    def test_all_entries_share_one_schema_including_merged(self):
        """Satellite 1: the merged entry matches the per-replica shape."""
        with fresh_hub() as hub:
            router = storeless_router(hub)
            delta = nightly_delta()
            router.publish_delta(delta, base_version=1, version=2)
            first = list(router.last_publish_report)
            router.publish_delta(delta, base_version=1, version=2)
            merged = list(router.last_publish_report)
        assert len(first) == 2  # one entry per replica
        for entry in first + merged:
            assert set(entry) == REPORT_SCHEMA, entry
        assert all(e["outcome"] == "applied" for e in first)
        assert all(e["version"] == "v2" for e in first)
        assert all(e["shard"] == 0 for e in first)
        assert [e["replica"] for e in first] == [0, 1]
        assert [e["outcome"] for e in merged] == ["merged"]
        # cluster-level merged entry: no single replica to attribute
        assert merged[0]["shard"] is None
        assert merged[0]["replica"] is None
        assert merged[0]["version"] == "v2"
        assert merged[0]["content_hash"]

    def test_store_merge_reports_the_same_schema(self):
        """The store-backed merge site emits the identical entry shape."""
        with fresh_hub() as hub:
            store = ShardedSnapshotStore(make_taxonomy(), n_shards=2, hub=hub)
            router = ReplicatedRouter.from_store(store, replicas=2)
            delta = nightly_delta()
            router.publish_delta(delta, base_version=1, version=2)
            router.publish_delta(delta, base_version=1, version=2)
            merged = list(router.last_publish_report)
        assert [e["outcome"] for e in merged] == ["merged"]
        assert set(merged[0]) == REPORT_SCHEMA

    def test_publish_outcomes_mirrored_into_event_log(self):
        with fresh_hub() as hub:
            router = storeless_router(hub)
            delta = nightly_delta()
            router.publish_delta(delta, base_version=1, version=2)
            router.publish_delta(delta, base_version=1, version=2)
            outcomes = [
                r["outcome"]
                for r in hub.events.records(kind="publish_outcome")
            ]
        assert outcomes.count("applied") == 2
        assert "merged" in outcomes


class TestEventLogIntegration:
    def test_swap_and_publish_events_with_contiguous_seqs(self):
        with fresh_hub() as hub:
            store = ShardedSnapshotStore(make_taxonomy(), n_shards=2, hub=hub)
            router = ReplicatedRouter.from_store(store, replicas=2)
            router.publish_delta(nightly_delta(0), base_version=1, version=2)
            router.swap(make_taxonomy(5))
            records = hub.events.records()
        kinds = {r["kind"] for r in records}
        # store-backed pinned replicas follow the store directly, so the
        # publish fan-out has no per-replica outcomes to report here
        assert {"publish", "swap"} <= kinds
        seqs = [r["seq"] for r in records]
        assert seqs == list(range(1, len(seqs) + 1))

    def test_health_transition_events(self):
        with fresh_hub() as hub:
            store = ShardedSnapshotStore(make_taxonomy(), n_shards=2, hub=hub)
            router = ReplicatedRouter.from_store(store, replicas=2)
            router.mark_unhealthy(0, 1)
            router.probe(0, 1)
            health_events = hub.events.records(kind="replica_health")
        assert [e["healthy"] for e in health_events] == [False, True]
        assert health_events[0]["reason"] == "operator"
        assert health_events[0]["shard"] == 0
        assert health_events[0]["replica"] == 1
        assert health_events[1]["reason"] == "probe_recovery"

    def test_events_over_http_with_since_cursor(self):
        with fresh_hub() as hub:
            router = build_cluster(
                make_taxonomy(), shards=2, replicas=2, hub=hub
            )
            server = start_server(router, admin_token=ADMIN_TOKEN, hub=hub)
            try:
                client = TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)
                router.swap(make_taxonomy(1))
                first = client.fetch_events()
                assert first["events"], "swap produced no events"
                cursor = first["last_seq"]
                router.swap(make_taxonomy(2))
                second = client.fetch_events(since=cursor)
            finally:
                server.close()
        assert second["events"]
        assert all(e["seq"] > cursor for e in second["events"])
        assert json.dumps(second["events"])  # wire-serializable


class TestMetricsPayloadCompat:
    def test_legacy_keys_survive_alongside_registry(self):
        """The pre-telemetry /metrics consumers keep their fields."""
        with fresh_hub() as hub:
            server = start_server(
                build_cluster(make_taxonomy(), shards=2, replicas=2, hub=hub),
                hub=hub,
            )
            try:
                client = TaxonomyClient(server.url)
                client.men2ent("华仔")
                payload = client.server_metrics()
            finally:
                server.close()
        for key in ("version", "swaps", "total_calls", "apis", "router"):
            assert key in payload, key
        assert "metrics" in payload
        assert "serving_api_calls_total" in payload["metrics"]
