"""Tests for replication-aware routing (repro.serving.router)."""

import pytest

from repro.errors import APIError
from repro.serving.router import PROBE_KEY, ReplicatedRouter, StoreShardReplica
from repro.serving.sharding import ShardedSnapshotStore, shard_for
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.store import Taxonomy


class FakeReplica:
    """A scriptable shard backend: records calls, fails on demand."""

    def __init__(self, name: str, answers: dict[str, list[str]] | None = None):
        self.name = name
        self.answers = answers or {}
        self.failing = False
        self.calls: list[tuple[str, str]] = []

    def _lookup(self, api: str, argument: str) -> list[str]:
        if self.failing:
            raise ConnectionError(f"{self.name} is down")
        self.calls.append((api, argument))
        return list(self.answers.get(argument, ()))

    def men2ent(self, mention):
        return self._lookup("men2ent", mention)

    def get_concepts(self, page_id):
        return self._lookup("getConcept", page_id)

    def get_entities(self, concept):
        return self._lookup("getEntity", concept)


def one_shard_router(replicas, **kwargs):
    return ReplicatedRouter([replicas], **kwargs)


class TestSpreading:
    def test_round_robin_over_healthy_replicas(self):
        a = FakeReplica("a", {"k": ["x"]})
        b = FakeReplica("b", {"k": ["x"]})
        router = one_shard_router([a, b])
        for _ in range(6):
            assert router.men2ent("k") == ["x"]
        assert len(a.calls) == 3
        assert len(b.calls) == 3

    def test_batch_group_pins_one_replica(self):
        a = FakeReplica("a")
        b = FakeReplica("b")
        router = one_shard_router([a, b])
        router.men2ent_batch([f"k{i}" for i in range(8)])
        # the whole group went to exactly one backend
        assert sorted(
            (len(a.calls), len(b.calls))
        ) == [0, 8]

    def test_batch_groups_by_shard(self):
        # two shards, one replica each: each backend only ever sees
        # keys that hash to its shard
        shard0 = FakeReplica("s0")
        shard1 = FakeReplica("s1")
        router = ReplicatedRouter([[shard0], [shard1]])
        keys = [f"键{i}" for i in range(30)]
        router.men2ent_batch(keys)
        for backend, shard_id in ((shard0, 0), (shard1, 1)):
            assert backend.calls, "both shards should receive traffic"
            for _, key in backend.calls:
                assert shard_for(key, 2) == shard_id


class TestFailover:
    def test_failed_replica_marks_unhealthy_and_fails_over(self):
        a = FakeReplica("a", {"k": ["x"]})
        b = FakeReplica("b", {"k": ["x"]})
        a.failing = True
        router = one_shard_router([a, b])
        assert router.men2ent("k") == ["x"]
        assert router.men2ent("k") == ["x"]
        health = router.health()[0]
        assert [state["healthy"] for state in health] == [False, True]
        assert router.stats.failovers == 1
        assert len(b.calls) == 2

    def test_all_replicas_down_raises_unavailable(self):
        from repro.errors import ServiceUnavailableError

        a = FakeReplica("a")
        b = FakeReplica("b")
        a.failing = b.failing = True
        router = one_shard_router([a, b])
        # ServiceUnavailableError (an APIError) so the HTTP layer can
        # answer 503 and clients keep retrying
        with pytest.raises(ServiceUnavailableError, match="no healthy replica"):
            router.men2ent("k")
        assert all(not s["healthy"] for s in router.health()[0])

    def test_retries_bound_the_attempts(self):
        replicas = [FakeReplica(str(i)) for i in range(4)]
        for replica in replicas:
            replica.failing = True
        router = one_shard_router(replicas, retries=1)
        with pytest.raises(APIError, match="after 2 attempts"):
            router.men2ent("k")
        # only retries+1 backends were touched
        assert sum(s["failures"] for s in router.health()[0]) == 2

    def test_metrics_only_count_served_answers(self):
        a = FakeReplica("a", {"k": ["x"]})
        b = FakeReplica("b", {"k": ["x"]})
        a.failing = True
        router = one_shard_router([a, b])
        router.men2ent("k")
        assert router.metrics.total_calls == 1


class TestProbing:
    def test_unhealthy_until_probe_passes(self):
        a = FakeReplica("a", {"k": ["x"]})
        b = FakeReplica("b", {"k": ["x"]})
        a.failing = True
        router = one_shard_router([a, b], probe_after=10_000)
        router.men2ent("k")  # trips a → unhealthy
        a.failing = False  # backend recovers...
        for _ in range(4):
            router.men2ent("k")
        # ...but without a probe it stays out of rotation
        assert not router.health()[0][0]["healthy"]
        assert router.probe(0, 0) is True
        assert router.health()[0][0]["healthy"]
        before = len(a.calls)
        router.men2ent("k")
        router.men2ent("k")
        assert len(a.calls) > before

    def test_probe_failure_keeps_replica_out(self):
        a = FakeReplica("a")
        a.failing = True
        b = FakeReplica("b")
        router = one_shard_router([a, b])
        router.men2ent("k")
        assert router.probe(0, 0) is False
        assert not router.health()[0][0]["healthy"]

    def test_auto_probe_after_skips(self):
        a = FakeReplica("a", {"k": ["x"]})
        b = FakeReplica("b", {"k": ["x"]})
        a.failing = True
        router = one_shard_router([a, b], probe_after=3)
        router.men2ent("k")  # a fails over to b, a unhealthy
        a.failing = False
        for _ in range(10):
            router.men2ent("k")
        # the in-line probe brought a back without any operator call
        assert router.health()[0][0]["healthy"]
        assert router.stats.probe_recoveries >= 1

    def test_probe_all_recovers_everything(self):
        a, b = FakeReplica("a"), FakeReplica("b")
        router = one_shard_router([a, b])
        router.mark_unhealthy(0, 0)
        router.mark_unhealthy(0, 1)
        assert router.probe_all() == 2
        assert all(s["healthy"] for s in router.health()[0])

    def test_probe_uses_healthcheck_when_present(self):
        class HealthcheckedReplica(FakeReplica):
            def __init__(self):
                super().__init__("hc")
                self.probed = False

            def healthcheck(self):
                self.probed = True
                return True

        replica = HealthcheckedReplica()
        router = one_shard_router([replica])
        router.mark_unhealthy(0, 0)
        assert router.probe(0, 0)
        assert replica.probed
        assert not replica.calls  # probe did not fake a real query

    def test_fallback_probe_uses_probe_key(self):
        a = FakeReplica("a")
        router = one_shard_router([a])
        router.mark_unhealthy(0, 0)
        assert router.probe(0, 0)
        assert a.calls == [("men2ent", PROBE_KEY)]


class TestStoreBackedRouter:
    @pytest.fixture
    def taxonomy(self):
        t = Taxonomy()
        t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
        t.add_entity(Entity("周杰伦#0", "周杰伦"))
        t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
        t.add_relation(IsARelation("周杰伦#0", "歌手", "tag"))
        return t

    def test_from_store_serves_and_versions(self, taxonomy):
        store = ShardedSnapshotStore(taxonomy, n_shards=2)
        router = ReplicatedRouter.from_store(store, replicas=3)
        assert router.n_shards == 2
        assert router.n_replicas == 3
        assert router.version_id == "v1"
        assert router.men2ent("华仔") == ["刘德华#0"]
        assert router.get_concepts("刘德华#0") == ["演员"]

    def test_swap_through_router_propagates_to_all_replicas(self, taxonomy):
        store = ShardedSnapshotStore(taxonomy, n_shards=2)
        router = ReplicatedRouter.from_store(store, replicas=2)
        rebuilt = Taxonomy()
        rebuilt.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
        rebuilt.add_relation(IsARelation("刘德华#0", "导演", "bracket"))
        router.swap(rebuilt)
        assert router.version_id == "v2"
        assert router.shard_versions() == ["v2", "v2"]
        # every replica of every shard answers from the new version
        for _ in range(4):  # cycles the round-robin over both replicas
            assert router.get_concepts("刘德华#0") == ["导演"]

    def test_shared_metrics_ledger(self, taxonomy):
        store = ShardedSnapshotStore(taxonomy, n_shards=2)
        router = ReplicatedRouter.from_store(store, replicas=2)
        router.men2ent("华仔")
        router.swap(taxonomy)
        assert store.metrics.total_calls == 1
        assert router.metrics.swaps == 1

    def test_store_shard_replica_pins_batches(self, taxonomy):
        store = ShardedSnapshotStore(taxonomy, n_shards=1)
        replica = StoreShardReplica(store, 0)
        pinned = replica.pinned()
        store.swap(Taxonomy())
        # the pinned view still answers from the old version
        assert pinned.men2ent("华仔") == ["刘德华#0"]
        assert replica.men2ent("华仔") == []

    def test_storeless_router_rejects_versioning(self):
        router = one_shard_router([FakeReplica("a")])
        with pytest.raises(APIError):
            _ = router.version_id
        with pytest.raises(APIError):
            router.swap(Taxonomy())


class TestRouterBatchPinning:
    """A store-backed router must give batches the store's no-torn-
    batch guarantee even when a swap lands between shard groups."""

    N_ENTITIES = 60

    def _versioned_taxonomy(self, marker: str) -> Taxonomy:
        taxonomy = Taxonomy()
        for i in range(self.N_ENTITIES):
            page_id = f"路由{i}#0"
            taxonomy.add_entity(Entity(page_id, f"路由{i}"))
            taxonomy.add_relation(IsARelation(page_id, marker, "bracket"))
        return taxonomy

    def test_no_torn_batches_through_router_while_swapping(self):
        import threading

        markers = ("版本A", "版本B")
        taxonomies = [self._versioned_taxonomy(m) for m in markers]
        store = ShardedSnapshotStore(taxonomies[0], n_shards=4)
        router = ReplicatedRouter.from_store(store, replicas=2)
        page_ids = [f"路由{i}#0" for i in range(self.N_ENTITIES)]
        assert len({shard_for(p, 4) for p in page_ids}) > 1

        anomalies: list[tuple] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                batch = router.get_concepts_batch(page_ids)
                versions = {tuple(answer) for answer in batch}
                if len(versions) != 1:
                    anomalies.append(("torn batch", versions))
                    return

        def swapper() -> None:
            for i in range(40):
                router.swap(taxonomies[(i + 1) % 2])

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        swap_thread = threading.Thread(target=swapper)
        swap_thread.start()
        swap_thread.join()
        stop.set()
        for thread in readers:
            thread.join()

        assert anomalies == []
        assert router.metrics.swaps == 40


class TestConstruction:
    def test_rejects_empty_topology(self):
        with pytest.raises(APIError):
            ReplicatedRouter([])
        with pytest.raises(APIError):
            ReplicatedRouter([[FakeReplica("a")], []])

    def test_rejects_bad_knobs(self):
        with pytest.raises(APIError):
            one_shard_router([FakeReplica("a")], retries=-1)
        with pytest.raises(APIError):
            one_shard_router([FakeReplica("a")], probe_after=0)
        store = ShardedSnapshotStore(Taxonomy(), n_shards=1)
        with pytest.raises(APIError):
            ReplicatedRouter.from_store(store, replicas=0)


class TestRoundRobinConcurrency:
    """The _pick read-increment and healthy filtering are one atomic
    step, and the cursor advances past the *chosen* replica — so a
    shrunken healthy subset still splits load evenly."""

    def test_survivors_split_load_evenly_when_one_replica_dies(self):
        a = FakeReplica("a", {"k": ["x"]})
        b = FakeReplica("b", {"k": ["x"]})
        c = FakeReplica("c", {"k": ["x"]})
        router = one_shard_router([a, b, c])
        router.mark_unhealthy(0, 1)  # b is down
        for _ in range(10):
            assert router.men2ent("k") == ["x"]
        # strict alternation between the survivors: 5/5, never 6/4 (the
        # pre-fix rotation let the replica after the dead slot absorb a
        # double share)
        assert len(a.calls) == 5
        assert len(c.calls) == 5
        assert len(b.calls) == 0

    def test_rotation_is_exact_under_concurrency(self):
        import threading

        a = FakeReplica("a", {"k": ["x"]})
        b = FakeReplica("b", {"k": ["x"]})
        c = FakeReplica("c", {"k": ["x"]})
        router = one_shard_router([a, b, c])
        c.failing = True  # auto-probes must not resurrect it mid-test
        router.mark_unhealthy(0, 2)  # c is down: survivors must alternate

        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)
        errors: list[Exception] = []

        def hammer():
            barrier.wait()
            try:
                for _ in range(per_thread):
                    assert router.men2ent("k") == ["x"]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer) for _ in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = n_threads * per_thread
        # picks are atomic: every call answered, and the two healthy
        # replicas split the even total exactly — no lost increments,
        # no double-served rotation slots
        assert len(a.calls) + len(b.calls) == total
        assert len(a.calls) == len(b.calls) == total // 2
        assert len(c.calls) == 0

    def test_recovered_replica_rejoins_even_rotation(self):
        a = FakeReplica("a", {"k": ["x"]})
        b = FakeReplica("b", {"k": ["x"]})
        router = one_shard_router([a, b])
        router.mark_unhealthy(0, 0)
        for _ in range(4):
            router.men2ent("k")
        assert len(b.calls) == 4
        assert router.probe(0, 0)
        a.calls.clear()
        b.calls.clear()
        for _ in range(6):
            router.men2ent("k")
        assert len(a.calls) == 3
        assert len(b.calls) == 3


class TestAttachReplica:
    def test_attached_backend_joins_the_rotation(self):
        a = FakeReplica("a", {"k": ["x"]})
        router = one_shard_router([a])
        late = FakeReplica("late", {"k": ["x"]})
        router.attach_replica(0, late)
        for _ in range(4):
            assert router.men2ent("k") == ["x"]
        assert len(a.calls) == 2
        assert len(late.calls) == 2

    def test_unknown_shard_is_refused(self):
        router = one_shard_router([FakeReplica("a")])
        with pytest.raises(APIError, match="no shard 3"):
            router.attach_replica(3, FakeReplica("b"))
