"""End-to-end HTTP tests: server wire format + TaxonomyClient SDK."""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import APIError, DeltaConflictError
from repro.serving import TaxonomyClient, build_cluster, start_server
from repro.taxonomy.model import Entity, IsARelation
from repro.taxonomy.service import TaxonomyService
from repro.taxonomy.store import Taxonomy
from repro.workloads import ArgumentPools, TableIICallStream, replay_calls

ADMIN_TOKEN = "test-admin-token"


def make_taxonomy(marker: str = "歌手") -> Taxonomy:
    t = Taxonomy()
    t.add_entity(Entity("刘德华#0", "刘德华", aliases=("华仔",)))
    t.add_entity(Entity("周杰伦#0", "周杰伦"))
    t.add_relation(IsARelation("刘德华#0", "演员", "bracket"))
    t.add_relation(IsARelation("刘德华#0", marker, "tag"))
    t.add_relation(IsARelation("周杰伦#0", marker, "tag"))
    return t


@pytest.fixture(scope="module")
def cluster():
    """One server shared by the read-only tests (2 shards × 2 replicas)."""
    service = build_cluster(make_taxonomy(), shards=2, replicas=2)
    server = start_server(service, admin_token=ADMIN_TOKEN)
    client = TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)
    yield server, client
    server.close()


class TestInfoEndpoints:
    def test_healthz(self, cluster):
        _, client = cluster
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["version"] == "v1"
        assert payload["shards"] == 2

    def test_version_topology(self, cluster):
        _, client = cluster
        payload = client.version()
        assert payload["version"] == "v1"
        assert payload["shards"] == 2
        assert payload["replicas"] == 2
        assert payload["shard_versions"] == ["v1", "v1"]

    def test_metrics_reports_tail_latency_and_router(self, cluster):
        _, client = cluster
        client.men2ent("华仔")
        payload = client.server_metrics()
        assert payload["total_calls"] >= 1
        entry = payload["apis"]["men2ent"]
        for key in ("calls", "hit_rate", "mean_seconds",
                    "p50_seconds", "p95_seconds", "p99_seconds",
                    "max_seconds"):
            assert key in entry
        assert payload["router"]["stats"]["attempts"] >= 1
        assert len(payload["router"]["replicas"]) == 2


class TestQueries:
    def test_singles_match_in_process_service(self, cluster):
        _, client = cluster
        reference = TaxonomyService(make_taxonomy())
        assert client.men2ent("华仔") == reference.men2ent("华仔")
        assert client.get_concepts("刘德华#0") == \
            reference.get_concepts("刘德华#0")
        assert client.get_entities("歌手") == reference.get_entities("歌手")

    def test_cjk_arguments_survive_url_encoding(self, cluster):
        _, client = cluster
        assert client.men2ent("刘德华") == ["刘德华#0"]
        assert client.men2ent("不存在的词") == []

    def test_batches_answer_position_for_position(self, cluster):
        _, client = cluster
        assert client.men2ent_batch(["华仔", "无人", "周杰伦"]) == [
            ["刘德华#0"], [], ["周杰伦#0"],
        ]
        assert client.get_concepts_batch(["刘德华#0", "周杰伦#0"]) == [
            ["歌手", "演员"], ["歌手"],
        ]
        assert client.get_entities_batch(["歌手", "导演"]) == [
            ["刘德华#0", "周杰伦#0"], [],
        ]

    def test_deprecated_spellings_work_over_the_wire(self, cluster):
        _, client = cluster
        with pytest.deprecated_call():
            assert client.get_concept("刘德华#0") == ["歌手", "演员"]
        with pytest.deprecated_call():
            assert client.get_entities(["歌手"]) == [["刘德华#0", "周杰伦#0"]]

    def test_client_keeps_its_own_ledger(self, cluster):
        _, client = cluster
        before = client.metrics.latency("getEntity").calls
        client.get_entities("歌手")
        after = client.metrics.latency("getEntity")
        assert after.calls == before + 1
        assert after.p99_seconds >= 0.0

    def test_replay_calls_drives_the_client_unchanged(self, cluster):
        _, client = cluster
        taxonomy = make_taxonomy()
        stream = TableIICallStream(
            ArgumentPools.from_taxonomy(taxonomy), seed=4
        )
        before = client.metrics.total_calls
        metrics = replay_calls(client, stream.generate(60), batch_size=8)
        assert metrics is client.metrics
        assert metrics.total_calls == before + 60


class TestWireErrors:
    def test_unknown_api_is_400(self, cluster):
        _, client = cluster
        with pytest.raises(APIError, match="unknown API"):
            client._request("/v1/getEverything?q=x")

    def test_missing_query_argument_is_400(self, cluster):
        _, client = cluster
        with pytest.raises(APIError, match="q="):
            client._request("/v1/men2ent")

    def test_empty_argument_is_400(self, cluster):
        _, client = cluster
        with pytest.raises(APIError, match="non-empty"):
            client.men2ent("")

    def test_malformed_batch_body_is_400(self, cluster):
        _, client = cluster
        with pytest.raises(APIError, match="arguments"):
            client._request("/v1/men2ent", body={"mentions": ["x"]})

    def test_unknown_path_is_404(self, cluster):
        server, _ = cluster
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/nope")
        assert excinfo.value.code == 404

    def test_client_gives_up_after_retries(self):
        client = TaxonomyClient(
            "http://127.0.0.1:9", retries=1, backoff_seconds=0.0
        )
        with pytest.raises(APIError, match="after 2 attempts"):
            client.men2ent("华仔")


class TestAdminAuth:
    def test_wrong_token_is_401(self, cluster):
        server, _ = cluster
        bad = TaxonomyClient(server.url, admin_token="wrong-token")
        with pytest.raises(APIError, match="HTTP 401"):
            bad.swap("/nonexistent.jsonl")

    def test_client_without_token_refuses_admin_calls(self, cluster):
        server, _ = cluster
        anonymous = TaxonomyClient(server.url)
        with pytest.raises(APIError, match="admin_token"):
            anonymous.swap("/nonexistent.jsonl")

    def test_tokenless_server_disables_admin_api(self):
        service = build_cluster(make_taxonomy(), shards=1)
        server = start_server(service)  # no admin token
        try:
            client = TaxonomyClient(server.url, admin_token="anything")
            with pytest.raises(APIError, match="HTTP 403"):
                client.swap("/nonexistent.jsonl")
        finally:
            server.close()

    def test_swap_with_missing_file_is_400_and_keeps_serving(self, cluster):
        _, client = cluster
        with pytest.raises(APIError, match="still serving v1"):
            client.swap("/no/such/taxonomy.jsonl")
        assert client.healthz()["version"] == "v1"
        assert client.men2ent("华仔") == ["刘德华#0"]

    def test_swap_with_directory_is_400_not_500(self, cluster, tmp_path):
        # IsADirectoryError is an OSError, not a ReproError — it must
        # still land on the documented 400 "still serving" path
        _, client = cluster
        with pytest.raises(APIError, match="HTTP 400.*still serving v1"):
            client.swap(str(tmp_path))
        assert client.healthz()["version"] == "v1"


class TestDegradedCluster:
    """Availability failures are 503 (retryable) and visible on /healthz."""

    @pytest.fixture
    def degraded(self):
        from repro.serving import build_cluster as _build
        router = _build(make_taxonomy(), shards=2, replicas=2)
        server = start_server(router)
        for shard_id in range(router.n_shards):
            for replica_index in range(2):
                router.mark_unhealthy(shard_id, replica_index)
        yield server, router
        server.close()

    def test_healthz_degrades_to_503(self, degraded):
        server, _ = degraded
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/healthz")
        assert excinfo.value.code == 503
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert payload["status"] == "degraded"
        assert payload["unhealthy_shards"] == [0, 1]

    def test_client_healthz_returns_degraded_payload(self, degraded):
        server, _ = degraded
        # the SDK reports the state instead of raising on the 503
        payload = TaxonomyClient(server.url).healthz()
        assert payload["status"] == "degraded"
        assert payload["unhealthy_shards"] == [0, 1]

    def test_replica_exhaustion_is_503_not_400(self, degraded):
        server, _ = degraded
        from urllib.parse import quote
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{server.url}/v1/men2ent?q={quote('华仔')}"
            )
        assert excinfo.value.code == 503
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert "no healthy replica" in payload["error"]

    def test_healthz_recovers_after_probe(self, degraded):
        server, router = degraded
        assert router.probe_all() == 4
        client = TaxonomyClient(server.url)
        assert client.healthz()["status"] == "ok"
        assert client.men2ent("华仔") == ["刘德华#0"]


class TestSwapRoundTrip:
    """The acceptance round trip: start → query → swap → query → shutdown."""

    def test_query_swap_query_shutdown(self, tmp_path):
        service = build_cluster(make_taxonomy("歌手"), shards=2, replicas=2)
        server = start_server(service, admin_token=ADMIN_TOKEN)
        client = TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)
        try:
            assert client.healthz()["version"] == "v1"
            assert client.get_concepts("刘德华#0") == ["歌手", "演员"]

            rebuilt_path = tmp_path / "rebuilt.jsonl"
            make_taxonomy("影帝").save(rebuilt_path)
            swapped = client.swap(str(rebuilt_path))
            assert swapped == {"swapped": True, "version": "v2"}

            assert client.version()["shard_versions"] == ["v2", "v2"]
            assert client.get_concepts("刘德华#0") == ["影帝", "演员"]
            assert client.get_entities("歌手") == []

            assert client.shutdown_server() == {"shutting_down": True}
            server.wait()  # serve loop exits after the response
        finally:
            server.close()
        with pytest.raises(APIError):
            TaxonomyClient(
                server.url, retries=0, backoff_seconds=0.0, timeout=1.0
            ).men2ent("华仔")


class TestWireFormatRaw:
    """Pin the documented JSON shapes with raw urllib (no SDK sugar)."""

    def test_single_payload_shape(self, cluster):
        server, _ = cluster
        from urllib.parse import quote
        with urllib.request.urlopen(
            f"{server.url}/v1/men2ent?q={quote('华仔')}"
        ) as response:
            payload = json.loads(response.read().decode("utf-8"))
        assert payload == {
            "api": "men2ent",
            "version": "v1",
            "argument": "华仔",
            "results": ["刘德华#0"],
        }

    def test_batch_payload_shape(self, cluster):
        server, _ = cluster
        body = json.dumps({"arguments": ["歌手"]}).encode("utf-8")
        request = urllib.request.Request(
            f"{server.url}/v1/getEntity", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            payload = json.loads(response.read().decode("utf-8"))
        assert payload == {
            "api": "getEntity",
            "version": "v1",
            "results": [["刘德华#0", "周杰伦#0"]],
        }


class TestApplyDeltaEndpoint:
    """POST /admin/apply-delta: incremental publish over the wire."""

    def _delta_file(self, tmp_path, marker_old="歌手", marker_new="影帝"):
        from repro.taxonomy.delta import TaxonomyDelta

        delta = TaxonomyDelta.compute(
            make_taxonomy(marker_old), make_taxonomy(marker_new)
        )
        path = tmp_path / "delta.jsonl"
        Taxonomy.save_delta(delta, path)
        return path

    def test_apply_delta_round_trip(self, tmp_path):
        service = build_cluster(make_taxonomy("歌手"), shards=2, replicas=2)
        server = start_server(service, admin_token=ADMIN_TOKEN)
        client = TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)
        try:
            assert client.get_concepts("刘德华#0") == ["歌手", "演员"]
            payload = client.apply_delta(str(self._delta_file(tmp_path)))
            assert payload["applied"] is True
            assert payload["version"] == "v2"
            assert payload["delta"]["relations_changed"] == 0
            assert set(payload["shard_versions"]) <= {"v1", "v2"}
            assert client.get_concepts("刘德华#0") == ["影帝", "演员"]
            assert client.get_entities("歌手") == []
            assert client.server_metrics()["swaps"] == 1
        finally:
            server.close()

    def test_apply_delta_requires_auth(self, tmp_path):
        service = build_cluster(make_taxonomy("歌手"), shards=1, replicas=1)
        server = start_server(service, admin_token=ADMIN_TOKEN)
        try:
            bad = TaxonomyClient(server.url, admin_token="wrong")
            with pytest.raises(APIError, match="401"):
                bad.apply_delta(str(self._delta_file(tmp_path)))
            tokenless = TaxonomyClient(server.url)
            with pytest.raises(APIError, match="admin_token"):
                tokenless.apply_delta(str(self._delta_file(tmp_path)))
        finally:
            server.close()

    def test_wrong_base_delta_is_refused_and_keeps_serving(self, tmp_path):
        service = build_cluster(make_taxonomy("歌手"), shards=2, replicas=1)
        server = start_server(service, admin_token=ADMIN_TOKEN)
        client = TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)
        try:
            # delta computed against a base the server is not serving:
            # its base_content_hash stamp arms the handshake, so the
            # mismatch surfaces as a clean 409 conflict carrying the
            # served version — and the old version keeps serving
            mismatched = self._delta_file(
                tmp_path, marker_old="影帝", marker_new="歌神"
            )
            with pytest.raises(DeltaConflictError) as excinfo:
                client.apply_delta(str(mismatched))
            assert excinfo.value.server_version == "v1"
            assert client.healthz()["version"] == "v1"
            assert client.get_concepts("刘德华#0") == ["歌手", "演员"]
        finally:
            server.close()

    def test_missing_delta_file_is_400(self, tmp_path):
        service = build_cluster(make_taxonomy("歌手"), shards=1, replicas=1)
        server = start_server(service, admin_token=ADMIN_TOKEN)
        client = TaxonomyClient(server.url, admin_token=ADMIN_TOKEN)
        try:
            with pytest.raises(APIError, match="400"):
                client.apply_delta(str(tmp_path / "nope.jsonl"))
            assert client.healthz()["version"] == "v1"
        finally:
            server.close()

    def test_malformed_body_is_400(self, tmp_path):
        service = build_cluster(make_taxonomy("歌手"), shards=1, replicas=1)
        server = start_server(service, admin_token=ADMIN_TOKEN)
        try:
            request = urllib.request.Request(
                f"{server.url}/admin/apply-delta",
                data=json.dumps({"wrong": "shape"}).encode("utf-8"),
                headers={"Authorization": f"Bearer {ADMIN_TOKEN}"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 400
        finally:
            server.close()


class TestRetrySemantics:
    """Batched-read POSTs retry; admin mutations are never resent."""

    class _CountingServer:
        """A scripted HTTP server: per-path request counts + failures."""

        def __init__(self, fail_times: dict[str, int]):
            import threading
            from http.server import (
                BaseHTTPRequestHandler,
                ThreadingHTTPServer,
            )

            counts: dict[str, int] = {}
            outer = self

            class Handler(BaseHTTPRequestHandler):
                protocol_version = "HTTP/1.1"

                def log_message(self, fmt, *args):  # noqa: A002
                    pass

                def _reply(self, status, payload):
                    body = json.dumps(payload).encode("utf-8")
                    self.send_response(status)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)

                def _serve(self):
                    length = int(self.headers.get("Content-Length") or 0)
                    raw = self.rfile.read(length) if length else b""
                    path = self.path.split("?")[0]
                    counts[path] = counts.get(path, 0) + 1
                    if counts[path] <= outer.fail_times.get(path, 0):
                        self._reply(500, {"error": "scripted failure"})
                        return
                    if path.startswith("/v1/"):
                        if raw:
                            n = len(json.loads(raw)["arguments"])
                            self._reply(200, {"results": [[]] * n})
                        else:
                            self._reply(200, {"results": []})
                    elif path == "/admin/swap":
                        self._reply(200, {"swapped": True, "version": "v2"})
                    elif path == "/admin/apply-delta":
                        self._reply(200, {"applied": True, "version": "v2"})
                    else:
                        self._reply(404, {"error": "no such endpoint"})

                do_GET = do_POST = _serve  # noqa: N815

            self.fail_times = fail_times
            self.counts = counts
            self._server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
            host, port = self._server.server_address[:2]
            self.url = f"http://{host}:{port}"
            self._thread = threading.Thread(
                target=self._server.serve_forever, daemon=True
            )
            self._thread.start()

        def close(self):
            self._server.shutdown()
            self._server.server_close()

    @pytest.fixture
    def scripted(self, request):
        def start(fail_times):
            server = self._CountingServer(fail_times)
            request.addfinalizer(server.close)
            return server

        return start

    def test_batched_read_post_is_retried_after_5xx(self, scripted):
        server = scripted({"/v1/men2ent": 1})  # first attempt 500s
        client = TaxonomyClient(server.url, backoff_seconds=0.0)
        assert client.men2ent_batch(["华仔", "周杰伦"]) == [[], []]
        assert server.counts["/v1/men2ent"] == 2

    def test_single_get_is_retried_after_5xx(self, scripted):
        server = scripted({"/v1/getConcept": 1})
        client = TaxonomyClient(server.url, backoff_seconds=0.0)
        assert client.get_concepts("刘德华#0") == []
        assert server.counts["/v1/getConcept"] == 2

    def test_swap_is_never_resent(self, scripted):
        server = scripted({"/admin/swap": 99})  # always fails
        client = TaxonomyClient(
            server.url, retries=3, backoff_seconds=0.0, admin_token="t"
        )
        with pytest.raises(APIError, match="after 1 attempts"):
            client.swap("/some/taxonomy.jsonl")
        assert server.counts["/admin/swap"] == 1  # one send, no retry

    def test_apply_delta_is_never_resent(self, scripted):
        server = scripted({"/admin/apply-delta": 99})
        client = TaxonomyClient(
            server.url, retries=3, backoff_seconds=0.0, admin_token="t"
        )
        with pytest.raises(APIError, match="after 1 attempts"):
            client.apply_delta("/some/delta.jsonl")
        assert server.counts["/admin/apply-delta"] == 1

    def test_apply_delta_wire_is_never_resent(self, scripted):
        from repro.taxonomy.delta import TaxonomyDelta

        server = scripted({"/admin/apply-delta": 99})
        client = TaxonomyClient(
            server.url, retries=3, backoff_seconds=0.0, admin_token="t"
        )
        with pytest.raises(APIError, match="after 1 attempts"):
            client.apply_delta_wire(
                TaxonomyDelta(name="x"), base_version="v1"
            )
        assert server.counts["/admin/apply-delta"] == 1

    def test_shutdown_is_never_resent(self, scripted):
        server = scripted({"/admin/shutdown": 99})
        client = TaxonomyClient(
            server.url, retries=3, backoff_seconds=0.0, admin_token="t"
        )
        with pytest.raises(APIError, match="after 1 attempts"):
            client.shutdown_server()
