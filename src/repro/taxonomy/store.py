"""Indexed taxonomy store with JSONL persistence.

The store maintains every index the serving APIs need:

- mention index (title + aliases → entity page_ids) for ``men2ent``,
- entity → hypernym adjacency for ``getConcept``,
- concept → entity/subconcept hyponyms for ``getEntity``,
- a concept-layer :class:`TaxonomyGraph` for closure queries.

Duplicate (hyponym, hypernym) pairs are merged keeping the best score and
the first-seen source, mirroring the paper's candidate merging step.

The three hot lookups (``men2ent`` / ``get_concepts`` / ``get_entities``)
memoise their sorted result per key and invalidate exactly the keys a
mutation touches, so repeated hot-key traffic stops paying ``sorted()``
per call.  For pure serving, :class:`ReadOptimizedTaxonomy` freezes a
built taxonomy into precomputed sorted tuples — every lookup becomes a
plain dict hit, which is what
:class:`~repro.taxonomy.service.TaxonomySnapshot` serves from.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import TaxonomyError
from repro.taxonomy.graph import TaxonomyGraph
from repro.taxonomy.model import (
    HYPONYM_CONCEPT,
    HYPONYM_ENTITY,
    Entity,
    IsARelation,
)


@dataclass(frozen=True)
class TaxonomyStats:
    """Headline counts as the paper reports them (Section IV)."""

    n_entities: int
    n_concepts: int
    n_entity_concept: int
    n_subconcept_concept: int

    @property
    def n_isa_total(self) -> int:
        return self.n_entity_concept + self.n_subconcept_concept

    def as_dict(self) -> dict[str, int]:
        return {
            "entities": self.n_entities,
            "concepts": self.n_concepts,
            "entity_concept_relations": self.n_entity_concept,
            "subconcept_concept_relations": self.n_subconcept_concept,
            "isa_relations_total": self.n_isa_total,
        }


class Taxonomy:
    """The product of the pipeline: entities, concepts and isA relations."""

    def __init__(self, name: str = "CN-Probase") -> None:
        self.name = name
        self._entities: dict[str, Entity] = {}
        self._relations: dict[tuple[str, str], IsARelation] = {}
        self._mention_index: dict[str, set[str]] = {}
        self._entity_hypernyms: dict[str, set[str]] = {}
        self._concept_entities: dict[str, set[str]] = {}
        self._concepts: set[str] = set()
        self._graph = TaxonomyGraph()
        # Per-key memos of the sorted lookup results; a mutation pops
        # exactly the keys it affects.  Values are tuples so a cached
        # result can never be mutated through a returned alias.
        self._men2ent_cache: dict[str, tuple[str, ...]] = {}
        self._concepts_cache: dict[str, tuple[str, ...]] = {}
        self._entities_cache: dict[str, tuple[str, ...]] = {}

    # -- construction -------------------------------------------------------

    def add_entity(self, entity: Entity) -> None:
        existing = self._entities.get(entity.page_id)
        if existing is not None and existing != entity:
            raise TaxonomyError(
                f"conflicting entity for page_id {entity.page_id!r}"
            )
        self._entities[entity.page_id] = entity
        for mention in entity.mentions:
            self._mention_index.setdefault(mention, set()).add(entity.page_id)
            self._men2ent_cache.pop(mention, None)

    def add_relation(self, relation: IsARelation) -> None:
        if relation.hyponym_kind == HYPONYM_ENTITY:
            if relation.hyponym not in self._entities:
                raise TaxonomyError(
                    f"relation references unknown entity {relation.hyponym!r}; "
                    "add_entity first"
                )
        previous = self._relations.get(relation.key)
        if previous is None or relation.score > previous.score:
            if previous is not None:
                # keep first-seen provenance, best score
                relation = relation.with_source(previous.source)
            self._relations[relation.key] = relation
        self._concepts.add(relation.hypernym)
        if relation.hyponym_kind == HYPONYM_ENTITY:
            self._entity_hypernyms.setdefault(relation.hyponym, set()).add(
                relation.hypernym
            )
            self._concept_entities.setdefault(relation.hypernym, set()).add(
                relation.hyponym
            )
            self._concepts_cache.pop(relation.hyponym, None)
            self._entities_cache.pop(relation.hypernym, None)
        else:
            self._concepts.add(relation.hyponym)
            self._graph.add_edge(relation.hyponym, relation.hypernym, relation.score)

    def add_relations(self, relations: Iterator[IsARelation]) -> None:
        for relation in relations:
            self.add_relation(relation)

    def finalize(self) -> list[tuple[str, str]]:
        """Break concept-layer cycles; returns the removed edges."""
        removed = self._graph.break_cycles()
        for child, parent in removed:
            self._relations.pop((child, parent), None)
        return removed

    # -- lookups -----------------------------------------------------------------

    @staticmethod
    def _cached_sorted(
        cache: dict[str, tuple[str, ...]], index: dict[str, set[str]], key: str
    ) -> list[str]:
        """Sorted lookup memoised per key.

        Misses (keys absent from the index) are never cached: production
        traffic contains unbounded unknown strings and must not grow the
        memo.  Known keys are bounded by the taxonomy itself.
        """
        cached = cache.get(key)
        if cached is None:
            members = index.get(key)
            if members is None:
                return []
            cached = tuple(sorted(members))
            cache[key] = cached
        return list(cached)

    def men2ent(self, mention: str) -> list[str]:
        """Disambiguated entity page_ids for a mention surface."""
        return self._cached_sorted(
            self._men2ent_cache, self._mention_index, mention
        )

    def get_concepts(self, page_id: str) -> list[str]:
        """Direct hypernyms of an entity (the getConcept API payload)."""
        return self._cached_sorted(
            self._concepts_cache, self._entity_hypernyms, page_id
        )

    def get_concepts_transitive(self, page_id: str) -> list[str]:
        """Hypernyms of an entity including the concept-layer closure."""
        direct = self._entity_hypernyms.get(page_id, set())
        closure = set(direct)
        for concept in direct:
            closure.update(self._graph.ancestors(concept))
        return sorted(closure)

    def get_entities(self, concept: str) -> list[str]:
        """Entity hyponyms of a concept (the getEntity API payload)."""
        return self._cached_sorted(
            self._entities_cache, self._concept_entities, concept
        )

    def get_subconcepts(self, concept: str) -> list[str]:
        return sorted(self._graph.children(concept))

    def concept_parents(self, concept: str) -> list[str]:
        return sorted(self._graph.parents(concept))

    def has_entity(self, page_id: str) -> bool:
        return page_id in self._entities

    def has_concept(self, concept: str) -> bool:
        return concept in self._concepts

    def entity(self, page_id: str) -> Entity | None:
        return self._entities.get(page_id)

    def relations(self) -> list[IsARelation]:
        return list(self._relations.values())

    def relations_by_source(self, source: str) -> list[IsARelation]:
        return [r for r in self._relations.values() if r.source == source]

    @property
    def graph(self) -> TaxonomyGraph:
        return self._graph

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._relations

    # -- stats ----------------------------------------------------------------------

    def stats(self) -> TaxonomyStats:
        n_entity_concept = sum(
            1 for r in self._relations.values()
            if r.hyponym_kind == HYPONYM_ENTITY
        )
        # Entities that actually carry at least one relation — the paper
        # counts taxonomy members, not raw dump pages.
        linked_entities = len(self._entity_hypernyms)
        return TaxonomyStats(
            n_entities=linked_entities,
            n_concepts=len(self._concepts),
            n_entity_concept=n_entity_concept,
            n_subconcept_concept=len(self._relations) - n_entity_concept,
        )

    # -- persistence -------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the taxonomy as JSONL: one entity or relation per line."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            header = {"kind": "header", "name": self.name}
            handle.write(json.dumps(header, ensure_ascii=False) + "\n")
            for entity in self._entities.values():
                record = {
                    "kind": "entity",
                    "page_id": entity.page_id,
                    "name": entity.name,
                    "aliases": list(entity.aliases),
                }
                handle.write(json.dumps(record, ensure_ascii=False) + "\n")
            for relation in self._relations.values():
                record = {
                    "kind": "relation",
                    "hyponym": relation.hyponym,
                    "hypernym": relation.hypernym,
                    "source": relation.source,
                    "hyponym_kind": relation.hyponym_kind,
                    "score": relation.score,
                }
                handle.write(json.dumps(record, ensure_ascii=False) + "\n")

    def freeze(self) -> "ReadOptimizedTaxonomy":
        """A read-optimized view of the current state (see below)."""
        return ReadOptimizedTaxonomy.from_taxonomy(self)

    @classmethod
    def load(cls, path: str | Path) -> "Taxonomy":
        source = Path(path)
        if not source.exists():
            raise TaxonomyError(f"taxonomy file not found: {source}")
        taxonomy = cls()
        with source.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TaxonomyError(
                        f"{source}:{line_no}: invalid JSON: {exc}"
                    ) from exc
                kind = record.get("kind")
                if kind == "header":
                    taxonomy.name = record.get("name", taxonomy.name)
                elif kind == "entity":
                    taxonomy.add_entity(
                        Entity(
                            page_id=record["page_id"],
                            name=record["name"],
                            aliases=tuple(record.get("aliases", ())),
                        )
                    )
                elif kind == "relation":
                    taxonomy.add_relation(
                        IsARelation(
                            hyponym=record["hyponym"],
                            hypernym=record["hypernym"],
                            source=record["source"],
                            hyponym_kind=record["hyponym_kind"],
                            score=record.get("score", 1.0),
                        )
                    )
                else:
                    raise TaxonomyError(
                        f"{source}:{line_no}: unknown record kind {kind!r}"
                    )
        return taxonomy


class ReadOptimizedTaxonomy:
    """A frozen, serving-shaped view of a built taxonomy.

    Every index the three public APIs read is precomputed into sorted
    tuples at construction: ``men2ent`` / ``get_concepts`` /
    ``get_entities`` are pure dict hits plus a cheap ``list()`` copy —
    no per-call ``sorted()``, no set materialisation, no shared mutable
    state.  That makes the view safe to serve from any number of threads
    and is what :class:`~repro.taxonomy.service.TaxonomySnapshot` wraps.

    The view is deliberately decoupled from its source: mutating the
    original :class:`Taxonomy` after freezing never changes answers a
    published snapshot gives.
    """

    def __init__(
        self,
        name: str,
        mention_index: dict[str, tuple[str, ...]],
        entity_hypernyms: dict[str, tuple[str, ...]],
        concept_entities: dict[str, tuple[str, ...]],
        stats: TaxonomyStats,
        n_relations: int,
    ) -> None:
        self.name = name
        self._mention_index = mention_index
        self._entity_hypernyms = entity_hypernyms
        self._concept_entities = concept_entities
        self._stats = stats
        self._n_relations = n_relations

    @classmethod
    def from_taxonomy(cls, taxonomy: Taxonomy) -> "ReadOptimizedTaxonomy":
        return cls(
            name=taxonomy.name,
            mention_index={
                mention: tuple(sorted(page_ids))
                for mention, page_ids in taxonomy._mention_index.items()
            },
            entity_hypernyms={
                page_id: tuple(sorted(concepts))
                for page_id, concepts in taxonomy._entity_hypernyms.items()
            },
            concept_entities={
                concept: tuple(sorted(page_ids))
                for concept, page_ids in taxonomy._concept_entities.items()
            },
            stats=taxonomy.stats(),
            n_relations=len(taxonomy),
        )

    # -- the three API lookups (list[str], same contract as Taxonomy) -------

    def men2ent(self, mention: str) -> list[str]:
        return list(self._mention_index.get(mention, ()))

    def get_concepts(self, page_id: str) -> list[str]:
        return list(self._entity_hypernyms.get(page_id, ()))

    def get_entities(self, concept: str) -> list[str]:
        return list(self._concept_entities.get(concept, ()))

    # -- introspection -------------------------------------------------------

    def as_indexes(
        self,
    ) -> tuple[
        dict[str, tuple[str, ...]],
        dict[str, tuple[str, ...]],
        dict[str, tuple[str, ...]],
    ]:
        """The three serving indexes: (mentions, entity→concepts, concept→entities).

        This is the partitioning surface for
        :class:`~repro.serving.sharding.ShardedSnapshotStore`: each index
        is keyed independently, so splitting every index by a stable key
        hash preserves per-key answers exactly.  Callers must treat the
        returned mappings as read-only (they are the live index objects,
        not copies).
        """
        return (
            self._mention_index,
            self._entity_hypernyms,
            self._concept_entities,
        )

    def stats(self) -> TaxonomyStats:
        return self._stats

    def __len__(self) -> int:
        return self._n_relations
