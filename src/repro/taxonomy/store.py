"""Indexed taxonomy store with JSONL persistence.

The store maintains every index the serving APIs need:

- mention index (title + aliases → entity page_ids) for ``men2ent``,
- entity → hypernym adjacency for ``getConcept``,
- concept → entity/subconcept hyponyms for ``getEntity``,
- a concept-layer :class:`TaxonomyGraph` for closure queries.

Duplicate (hyponym, hypernym) pairs are merged keeping the best score and
the first-seen source, mirroring the paper's candidate merging step.

The three hot lookups (``men2ent`` / ``get_concepts`` / ``get_entities``)
memoise their sorted result per key and invalidate exactly the keys a
mutation touches, so repeated hot-key traffic stops paying ``sorted()``
per call.  For pure serving, :class:`ReadOptimizedTaxonomy` freezes a
built taxonomy into precomputed sorted tuples — every lookup becomes a
plain dict hit, which is what
:class:`~repro.taxonomy.service.TaxonomySnapshot` serves from.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import TaxonomyError
from repro.taxonomy.graph import TaxonomyGraph
from repro.taxonomy.model import (
    HYPONYM_CONCEPT,
    HYPONYM_ENTITY,
    Entity,
    IsARelation,
)

if TYPE_CHECKING:
    from repro.taxonomy.delta import TaxonomyDelta

#: Version of the taxonomy JSONL layout; bump on incompatible changes.
#: :meth:`Taxonomy.load` accepts headers without the field (legacy PR-1
#: files) and refuses versions newer than this with a clear error.
TAXONOMY_FORMAT_VERSION = 1


def check_format_version(
    header: dict, supported: int, where: str
) -> None:
    """Reject a JSONL header from a future format; accept legacy ones."""
    version = header.get("format_version")
    if version is None:
        return  # legacy file, pre-versioning layout
    # bool is an int subclass, but `"format_version": true` is garbage
    if isinstance(version, bool) or not isinstance(version, int) \
            or version < 1:
        raise TaxonomyError(
            f"{where}: malformed format_version {version!r}"
        )
    if version > supported:
        raise TaxonomyError(
            f"{where}: file has format_version {version}, but this "
            f"build understands at most {supported}; upgrade the library"
        )


def _atomic_write(target: Path, write: Callable) -> None:
    """Write a file via temp-file + ``os.replace`` in the target directory.

    A crash mid-write leaves the previous file (or nothing) in place —
    never a torn JSONL that ``load``/``serve`` would trip on.  The temp
    file lives next to the target so the final rename stays on one
    filesystem (``os.replace`` is atomic only within a filesystem).
    """
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            write(handle)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class TaxonomyStats:
    """Headline counts as the paper reports them (Section IV)."""

    n_entities: int
    n_concepts: int
    n_entity_concept: int
    n_subconcept_concept: int

    @property
    def n_isa_total(self) -> int:
        return self.n_entity_concept + self.n_subconcept_concept

    def as_dict(self) -> dict[str, int]:
        return {
            "entities": self.n_entities,
            "concepts": self.n_concepts,
            "entity_concept_relations": self.n_entity_concept,
            "subconcept_concept_relations": self.n_subconcept_concept,
            "isa_relations_total": self.n_isa_total,
        }


class Taxonomy:
    """The product of the pipeline: entities, concepts and isA relations."""

    def __init__(self, name: str = "CN-Probase") -> None:
        self.name = name
        self._entities: dict[str, Entity] = {}
        self._relations: dict[tuple[str, str], IsARelation] = {}
        self._mention_index: dict[str, set[str]] = {}
        self._entity_hypernyms: dict[str, set[str]] = {}
        self._concept_entities: dict[str, set[str]] = {}
        self._concepts: set[str] = set()
        self._graph = TaxonomyGraph()
        # Per-key memos of the sorted lookup results; a mutation pops
        # exactly the keys it affects.  Values are tuples so a cached
        # result can never be mutated through a returned alias.
        self._men2ent_cache: dict[str, tuple[str, ...]] = {}
        self._concepts_cache: dict[str, tuple[str, ...]] = {}
        self._entities_cache: dict[str, tuple[str, ...]] = {}

    # -- construction -------------------------------------------------------

    def add_entity(self, entity: Entity) -> None:
        existing = self._entities.get(entity.page_id)
        if existing is not None and existing != entity:
            raise TaxonomyError(
                f"conflicting entity for page_id {entity.page_id!r}"
            )
        self._entities[entity.page_id] = entity
        for mention in entity.mentions:
            self._mention_index.setdefault(mention, set()).add(entity.page_id)
            self._men2ent_cache.pop(mention, None)

    def add_relation(self, relation: IsARelation) -> None:
        if relation.hyponym_kind == HYPONYM_ENTITY:
            if relation.hyponym not in self._entities:
                raise TaxonomyError(
                    f"relation references unknown entity {relation.hyponym!r}; "
                    "add_entity first"
                )
        previous = self._relations.get(relation.key)
        if previous is None or relation.score > previous.score:
            if previous is not None:
                # keep first-seen provenance, best score
                relation = relation.with_source(previous.source)
            self._relations[relation.key] = relation
        self._concepts.add(relation.hypernym)
        if relation.hyponym_kind == HYPONYM_ENTITY:
            self._entity_hypernyms.setdefault(relation.hyponym, set()).add(
                relation.hypernym
            )
            self._concept_entities.setdefault(relation.hypernym, set()).add(
                relation.hyponym
            )
            self._concepts_cache.pop(relation.hyponym, None)
            self._entities_cache.pop(relation.hypernym, None)
        else:
            self._concepts.add(relation.hyponym)
            self._graph.add_edge(relation.hyponym, relation.hypernym, relation.score)

    def add_relations(self, relations: Iterator[IsARelation]) -> None:
        for relation in relations:
            self.add_relation(relation)

    def finalize(self) -> list[tuple[str, str]]:
        """Break concept-layer cycles; returns the removed edges."""
        removed = self._graph.break_cycles()
        for child, parent in removed:
            self._relations.pop((child, parent), None)
        return removed

    # -- lookups -----------------------------------------------------------------

    @staticmethod
    def _cached_sorted(
        cache: dict[str, tuple[str, ...]], index: dict[str, set[str]], key: str
    ) -> list[str]:
        """Sorted lookup memoised per key.

        Misses (keys absent from the index) are never cached: production
        traffic contains unbounded unknown strings and must not grow the
        memo.  Known keys are bounded by the taxonomy itself.
        """
        cached = cache.get(key)
        if cached is None:
            members = index.get(key)
            if members is None:
                return []
            cached = tuple(sorted(members))
            cache[key] = cached
        return list(cached)

    def men2ent(self, mention: str) -> list[str]:
        """Disambiguated entity page_ids for a mention surface."""
        return self._cached_sorted(
            self._men2ent_cache, self._mention_index, mention
        )

    def get_concepts(self, page_id: str) -> list[str]:
        """Direct hypernyms of an entity (the getConcept API payload)."""
        return self._cached_sorted(
            self._concepts_cache, self._entity_hypernyms, page_id
        )

    def get_concepts_transitive(self, page_id: str) -> list[str]:
        """Hypernyms of an entity including the concept-layer closure."""
        direct = self._entity_hypernyms.get(page_id, set())
        closure = set(direct)
        for concept in direct:
            closure.update(self._graph.ancestors(concept))
        return sorted(closure)

    def get_entities(self, concept: str) -> list[str]:
        """Entity hyponyms of a concept (the getEntity API payload)."""
        return self._cached_sorted(
            self._entities_cache, self._concept_entities, concept
        )

    def get_subconcepts(self, concept: str) -> list[str]:
        return sorted(self._graph.children(concept))

    def concept_parents(self, concept: str) -> list[str]:
        return sorted(self._graph.parents(concept))

    def has_entity(self, page_id: str) -> bool:
        return page_id in self._entities

    def has_concept(self, concept: str) -> bool:
        return concept in self._concepts

    def entity(self, page_id: str) -> Entity | None:
        return self._entities.get(page_id)

    def entities(self) -> list[Entity]:
        """Every entity record, in insertion order."""
        return list(self._entities.values())

    def relations(self) -> list[IsARelation]:
        return list(self._relations.values())

    def relations_by_source(self, source: str) -> list[IsARelation]:
        return [r for r in self._relations.values() if r.source == source]

    @property
    def graph(self) -> TaxonomyGraph:
        return self._graph

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._relations

    # -- stats ----------------------------------------------------------------------

    def stats(self) -> TaxonomyStats:
        n_entity_concept = sum(
            1 for r in self._relations.values()
            if r.hyponym_kind == HYPONYM_ENTITY
        )
        # Entities that actually carry at least one relation — the paper
        # counts taxonomy members, not raw dump pages.
        linked_entities = len(self._entity_hypernyms)
        return TaxonomyStats(
            n_entities=linked_entities,
            n_concepts=len(self._concepts),
            n_entity_concept=n_entity_concept,
            n_subconcept_concept=len(self._relations) - n_entity_concept,
        )

    # -- persistence -------------------------------------------------------------------

    def _canonical_lines(self) -> Iterator[str]:
        """The canonical JSONL lines :meth:`save` writes, in order.

        Record order is canonical (entities by page_id, relations by
        key) — two taxonomies with equal content yield byte-identical
        lines regardless of the insertion order they were built in.
        This single serialization feeds both :meth:`save` and
        :meth:`content_hash`, so the hash is *of the saved bytes* by
        construction.
        """
        header = {
            "kind": "header",
            "name": self.name,
            "format_version": TAXONOMY_FORMAT_VERSION,
        }
        yield json.dumps(header, ensure_ascii=False) + "\n"
        for page_id in sorted(self._entities):
            entity = self._entities[page_id]
            record = {
                "kind": "entity",
                "page_id": entity.page_id,
                "name": entity.name,
                "aliases": list(entity.aliases),
            }
            yield json.dumps(record, ensure_ascii=False) + "\n"
        for key in sorted(self._relations):
            relation = self._relations[key]
            record = {
                "kind": "relation",
                "hyponym": relation.hyponym,
                "hypernym": relation.hypernym,
                "source": relation.source,
                "hyponym_kind": relation.hyponym_kind,
                "score": relation.score,
            }
            yield json.dumps(record, ensure_ascii=False) + "\n"

    def save(self, path: str | Path) -> None:
        """Write the taxonomy as JSONL: one entity or relation per line.

        The write is atomic (temp file + ``os.replace``), so a crashed
        save never leaves a torn file, and the bytes are canonical (see
        :meth:`_canonical_lines`).  That canonical form is what the
        incremental-rebuild equivalence contract compares and what
        :meth:`content_hash` addresses.
        """

        def _write(handle) -> None:
            for line in self._canonical_lines():
                handle.write(line)

        _atomic_write(Path(path), _write)

    def content_hash(self) -> str:
        """sha256 hex digest of the canonical saved bytes.

        Because :meth:`save` is canonical and byte-stable, two replicas
        holding equal content — however they got there: full load,
        delta chain, snapshot swap — compute the same hash.  This is
        the content-addressed version id the serving tier's probes,
        publishes and resyncs converge on.
        """
        digest = hashlib.sha256()
        for line in self._canonical_lines():
            digest.update(line.encode("utf-8"))
        return digest.hexdigest()

    def freeze(self) -> "ReadOptimizedTaxonomy":
        """A read-optimized view of the current state (see below)."""
        return ReadOptimizedTaxonomy.from_taxonomy(self)

    def copy(self) -> "Taxonomy":
        """An independent taxonomy holding the same records.

        Entity and relation records are immutable and shared; every
        index is rebuilt, so mutating either taxonomy afterwards never
        leaks into the other.  This is what lets a service publish a
        delta without touching the taxonomy a pinned snapshot holds.
        """
        duplicate = Taxonomy(name=self.name)
        duplicate._entities = dict(self._entities)
        duplicate._relations = dict(self._relations)
        duplicate._reindex()
        return duplicate

    # -- incremental updates ----------------------------------------------------

    def apply_delta(self, delta: "TaxonomyDelta") -> "Taxonomy":
        """Apply a :class:`~repro.taxonomy.delta.TaxonomyDelta` in place.

        The equivalence contract: after applying
        ``TaxonomyDelta.compute(self, new)`` this taxonomy saves
        byte-identically to *new*.  The delta is validated against the
        current state first (removed/changed records must match what is
        stored, added must be absent), so applying a delta to the wrong
        base raises :class:`TaxonomyError` instead of silently
        diverging.  Returns ``self`` for chaining.
        """
        for entity in delta.entities_removed:
            if self._entities.get(entity.page_id) != entity:
                raise TaxonomyError(
                    f"delta does not match base: entity {entity.page_id!r} "
                    "to remove is absent or differs"
                )
        for old, _new in delta.entities_changed:
            if self._entities.get(old.page_id) != old:
                raise TaxonomyError(
                    f"delta does not match base: entity {old.page_id!r} "
                    "to change is absent or differs"
                )
        for entity in delta.entities_added:
            if entity.page_id in self._entities:
                raise TaxonomyError(
                    f"delta does not match base: entity {entity.page_id!r} "
                    "to add already exists"
                )
        for relation in delta.relations_removed:
            if self._relations.get(relation.key) != relation:
                raise TaxonomyError(
                    f"delta does not match base: relation {relation.key!r} "
                    "to remove is absent or differs"
                )
        for old, _new in delta.relations_changed:
            if self._relations.get(old.key) != old:
                raise TaxonomyError(
                    f"delta does not match base: relation {old.key!r} "
                    "to change is absent or differs"
                )
        removed_keys = {r.key for r in delta.relations_removed}
        for relation in delta.relations_added:
            # a key may be removed and re-added in one delta (a pair
            # whose hyponym_kind flipped); otherwise adds must be new
            if relation.key in self._relations \
                    and relation.key not in removed_keys:
                raise TaxonomyError(
                    f"delta does not match base: relation {relation.key!r} "
                    "to add already exists"
                )

        self.name = delta.name
        for entity in delta.entities_removed:
            del self._entities[entity.page_id]
        for old, new in delta.entities_changed:
            self._entities[old.page_id] = new
        for entity in delta.entities_added:
            self._entities[entity.page_id] = entity
        for relation in delta.relations_removed:
            del self._relations[relation.key]
        for old, new in delta.relations_changed:
            self._relations[old.key] = new
        for relation in delta.relations_added:
            self._relations[relation.key] = relation
        self._reindex()
        return self

    def _reindex(self) -> None:
        """Rebuild every derived index from the record dicts.

        Used after a delta apply: the mention/hypernym/hyponym indexes,
        the concept set and the concept graph are all pure functions of
        ``_entities`` + ``_relations``, so rebuilding them yields exactly
        the state a fresh construction of the same records would have
        (no stale concepts, no emptied index keys lingering).
        """
        self._mention_index = {}
        self._entity_hypernyms = {}
        self._concept_entities = {}
        self._concepts = set()
        self._graph = TaxonomyGraph()
        self._men2ent_cache = {}
        self._concepts_cache = {}
        self._entities_cache = {}
        for entity in self._entities.values():
            for mention in entity.mentions:
                self._mention_index.setdefault(mention, set()).add(
                    entity.page_id
                )
        for relation in self._relations.values():
            self._concepts.add(relation.hypernym)
            if relation.hyponym_kind == HYPONYM_ENTITY:
                self._entity_hypernyms.setdefault(
                    relation.hyponym, set()
                ).add(relation.hypernym)
                self._concept_entities.setdefault(
                    relation.hypernym, set()
                ).add(relation.hyponym)
            else:
                self._concepts.add(relation.hyponym)
                self._graph.add_edge(
                    relation.hyponym, relation.hypernym, relation.score
                )

    # -- delta persistence ------------------------------------------------------

    @staticmethod
    def save_delta(delta: "TaxonomyDelta", path: str | Path) -> None:
        """Write *delta* as JSONL (atomic; see :mod:`repro.taxonomy.delta`)."""
        from repro.taxonomy.delta import save_delta

        save_delta(delta, path)

    @staticmethod
    def load_delta(path: str | Path) -> "TaxonomyDelta":
        """Read a delta written by :meth:`save_delta`."""
        from repro.taxonomy.delta import load_delta

        return load_delta(path)

    @classmethod
    def load(cls, path: str | Path) -> "Taxonomy":
        source = Path(path)
        if not source.exists():
            raise TaxonomyError(f"taxonomy file not found: {source}")
        taxonomy = cls()
        with source.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TaxonomyError(
                        f"{source}:{line_no}: invalid JSON: {exc}"
                    ) from exc
                kind = record.get("kind")
                if kind == "header":
                    check_format_version(
                        record,
                        TAXONOMY_FORMAT_VERSION,
                        f"{source}:{line_no}",
                    )
                    taxonomy.name = record.get("name", taxonomy.name)
                elif kind == "entity":
                    taxonomy.add_entity(
                        Entity(
                            page_id=record["page_id"],
                            name=record["name"],
                            aliases=tuple(record.get("aliases", ())),
                        )
                    )
                elif kind == "relation":
                    taxonomy.add_relation(
                        IsARelation(
                            hyponym=record["hyponym"],
                            hypernym=record["hypernym"],
                            source=record["source"],
                            hyponym_kind=record["hyponym_kind"],
                            score=record.get("score", 1.0),
                        )
                    )
                else:
                    raise TaxonomyError(
                        f"{source}:{line_no}: unknown record kind {kind!r}"
                    )
        return taxonomy


class ReadOptimizedTaxonomy:
    """A frozen, serving-shaped view of a built taxonomy.

    Every index the three public APIs read is precomputed into sorted
    tuples at construction: ``men2ent`` / ``get_concepts`` /
    ``get_entities`` are pure dict hits plus a cheap ``list()`` copy —
    no per-call ``sorted()``, no set materialisation, no shared mutable
    state.  That makes the view safe to serve from any number of threads
    and is what :class:`~repro.taxonomy.service.TaxonomySnapshot` wraps.

    The view is deliberately decoupled from its source: mutating the
    original :class:`Taxonomy` after freezing never changes answers a
    published snapshot gives.
    """

    def __init__(
        self,
        name: str,
        mention_index: dict[str, tuple[str, ...]],
        entity_hypernyms: dict[str, tuple[str, ...]],
        concept_entities: dict[str, tuple[str, ...]],
        stats: TaxonomyStats,
        n_relations: int,
    ) -> None:
        self.name = name
        self._mention_index = mention_index
        self._entity_hypernyms = entity_hypernyms
        self._concept_entities = concept_entities
        self._stats = stats
        self._n_relations = n_relations

    @classmethod
    def from_taxonomy(cls, taxonomy: Taxonomy) -> "ReadOptimizedTaxonomy":
        return cls(
            name=taxonomy.name,
            mention_index={
                mention: tuple(sorted(page_ids))
                for mention, page_ids in taxonomy._mention_index.items()
            },
            entity_hypernyms={
                page_id: tuple(sorted(concepts))
                for page_id, concepts in taxonomy._entity_hypernyms.items()
            },
            concept_entities={
                concept: tuple(sorted(page_ids))
                for concept, page_ids in taxonomy._concept_entities.items()
            },
            stats=taxonomy.stats(),
            n_relations=len(taxonomy),
        )

    # -- the three API lookups (list[str], same contract as Taxonomy) -------

    def men2ent(self, mention: str) -> list[str]:
        return list(self._mention_index.get(mention, ()))

    def get_concepts(self, page_id: str) -> list[str]:
        return list(self._entity_hypernyms.get(page_id, ()))

    def get_entities(self, concept: str) -> list[str]:
        return list(self._concept_entities.get(concept, ()))

    # -- incremental updates ---------------------------------------------------

    def apply_delta(
        self,
        delta: "TaxonomyDelta",
        *,
        key_filter: Callable[[str], bool] | None = None,
        stats: TaxonomyStats | None = None,
        n_relations: int | None = None,
        name: str | None = None,
    ) -> "ReadOptimizedTaxonomy":
        """A new frozen view with *delta* applied, rebuilding only touched keys.

        Immutability is preserved: ``self`` is untouched and keeps
        answering for any snapshot that pinned it.  Index keys the delta
        does not touch keep their exact result-tuple objects (no
        re-sort, no copy), which is what lets the sharded store leave
        untouched shards object-identical across a delta publish.

        *key_filter* restricts application to the keys a caller owns —
        the sharded store passes its shard's hash predicate so each
        shard applies exactly its slice.  *stats* / *n_relations*
        override the recount; when omitted they are recomputed
        serving-locally (the same formula shard partitioning uses).
        Callers holding the *full* keyspace should pass the delta's
        ``new_stats`` / ``new_n_relations`` so headline numbers keep
        counting the concept layer a full freeze would count.
        """
        keep = key_filter if key_filter is not None else (lambda key: True)
        mentions = dict(self._mention_index)
        hypernyms = dict(self._entity_hypernyms)
        entities = dict(self._concept_entities)

        def remove(index: dict, key: str, member: str) -> None:
            if not keep(key):
                return
            remaining = tuple(m for m in index.get(key, ()) if m != member)
            if remaining:
                index[key] = remaining
            else:
                index.pop(key, None)

        def insert(index: dict, key: str, member: str) -> None:
            if not keep(key):
                return
            current = index.get(key, ())
            if member not in current:
                index[key] = tuple(sorted((*current, member)))

        for entity in delta.entities_removed:
            for mention in entity.mentions:
                remove(mentions, mention, entity.page_id)
        for old, new in delta.entities_changed:
            for mention in set(old.mentions) - set(new.mentions):
                remove(mentions, mention, old.page_id)
            for mention in set(new.mentions) - set(old.mentions):
                insert(mentions, mention, new.page_id)
        for entity in delta.entities_added:
            for mention in entity.mentions:
                insert(mentions, mention, entity.page_id)
        for relation in delta.relations_removed:
            if relation.hyponym_kind == HYPONYM_ENTITY:
                remove(hypernyms, relation.hyponym, relation.hypernym)
                remove(entities, relation.hypernym, relation.hyponym)
        for relation in delta.relations_added:
            if relation.hyponym_kind == HYPONYM_ENTITY:
                insert(hypernyms, relation.hyponym, relation.hypernym)
                insert(entities, relation.hypernym, relation.hyponym)
        # relations_changed carry the same key with new score/source —
        # neither lives in the serving indexes, so nothing to touch.

        if n_relations is None:
            n_relations = sum(len(v) for v in hypernyms.values())
        if stats is None:
            stats = TaxonomyStats(
                n_entities=len(hypernyms),
                n_concepts=len(entities),
                n_entity_concept=sum(len(v) for v in hypernyms.values()),
                n_subconcept_concept=0,
            )
        return ReadOptimizedTaxonomy(
            name=name if name is not None else self.name,
            mention_index=mentions,
            entity_hypernyms=hypernyms,
            concept_entities=entities,
            stats=stats,
            n_relations=n_relations,
        )

    # -- introspection -------------------------------------------------------

    def as_indexes(
        self,
    ) -> tuple[
        dict[str, tuple[str, ...]],
        dict[str, tuple[str, ...]],
        dict[str, tuple[str, ...]],
    ]:
        """The three serving indexes: (mentions, entity→concepts, concept→entities).

        This is the partitioning surface for
        :class:`~repro.serving.sharding.ShardedSnapshotStore`: each index
        is keyed independently, so splitting every index by a stable key
        hash preserves per-key answers exactly.  Callers must treat the
        returned mappings as read-only (they are the live index objects,
        not copies).
        """
        return (
            self._mention_index,
            self._entity_hypernyms,
            self._concept_entities,
        )

    def stats(self) -> TaxonomyStats:
        return self._stats

    def __len__(self) -> int:
        return self._n_relations
