"""`TaxonomyDelta` — the cross-layer currency of incremental rebuilds.

A delta is the exact record-level difference between two built
taxonomies: entities and isA relations *added*, *removed* and *changed*
(rescored / re-sourced).  Every layer of the refresh path speaks it:

- the build pipeline emits one from
  :meth:`~repro.core.pipeline.CNProbaseBuilder.build_incremental`,
- the store applies one with :meth:`~repro.taxonomy.store.Taxonomy.apply_delta`
  (mutable) and :meth:`~repro.taxonomy.store.ReadOptimizedTaxonomy.apply_delta`
  (frozen, touched-keys-only),
- the service publishes one with
  :meth:`~repro.taxonomy.service.TaxonomyService.publish_delta`,
- the sharded store republishes only the shards whose keys the delta
  touches (:meth:`~repro.serving.sharding.ShardedSnapshotStore.publish_delta`),
- the HTTP cluster accepts one at ``POST /admin/apply-delta``.

The non-negotiable equivalence contract: for any two taxonomies *old*
and *new*, applying ``TaxonomyDelta.compute(old, new)`` to *old* yields
a taxonomy whose canonical JSONL (:meth:`Taxonomy.save`) is
byte-identical to saving *new*.  ``changed`` entries carry both the old
and the new record, so a delta is self-describing (appliable without
the base at hand, and refusable when the base does not match).

Persistence is JSONL like the taxonomy itself: a header line with a
``format_version``, then one record per line, written atomically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.errors import TaxonomyError
from repro.taxonomy.model import HYPONYM_ENTITY, Entity, IsARelation

if TYPE_CHECKING:
    from repro.taxonomy.store import Taxonomy, TaxonomyStats

#: Version of the delta JSONL layout; bump on incompatible changes.
DELTA_FORMAT_VERSION = 1

DELTA_KIND = "taxonomy-delta"


def _entity_dict(entity: Entity) -> dict:
    return {
        "page_id": entity.page_id,
        "name": entity.name,
        "aliases": list(entity.aliases),
    }


def _entity_from(data: dict) -> Entity:
    try:
        return Entity(
            page_id=data["page_id"],
            name=data["name"],
            aliases=tuple(data.get("aliases", ())),
        )
    except KeyError as exc:
        raise TaxonomyError(f"delta entity record missing key: {exc}") from exc


def _relation_dict(relation: IsARelation) -> dict:
    return {
        "hyponym": relation.hyponym,
        "hypernym": relation.hypernym,
        "source": relation.source,
        "hyponym_kind": relation.hyponym_kind,
        "score": relation.score,
    }


def _relation_from(data: dict) -> IsARelation:
    try:
        return IsARelation(
            hyponym=data["hyponym"],
            hypernym=data["hypernym"],
            source=data["source"],
            hyponym_kind=data["hyponym_kind"],
            score=data.get("score", 1.0),
        )
    except KeyError as exc:
        raise TaxonomyError(
            f"delta relation record missing key: {exc}"
        ) from exc


@dataclass(frozen=True)
class TaxonomyDelta:
    """Exact record-level difference between two built taxonomies.

    ``*_changed`` pairs are ``(old, new)`` records sharing an identity
    (page_id / relation key) whose fields differ — for relations that is
    a rescore or a provenance change.  ``new_stats`` / ``new_n_relations``
    are the target taxonomy's headline numbers, carried so a frozen
    read view can be advanced without recounting the world.
    """

    name: str
    entities_added: tuple[Entity, ...] = ()
    entities_removed: tuple[Entity, ...] = ()
    entities_changed: tuple[tuple[Entity, Entity], ...] = ()
    relations_added: tuple[IsARelation, ...] = ()
    relations_removed: tuple[IsARelation, ...] = ()
    relations_changed: tuple[tuple[IsARelation, IsARelation], ...] = ()
    new_stats: "TaxonomyStats | None" = None
    new_n_relations: int = 0

    @classmethod
    def compute(cls, old: "Taxonomy", new: "Taxonomy") -> "TaxonomyDelta":
        """The exact delta turning *old* into *new*.

        Equivalence holds by construction:
        ``old.apply_delta(compute(old, new))`` saves byte-identically to
        ``new`` (canonical JSONL order makes insertion order moot).
        """
        old_entities = {e.page_id: e for e in old.entities()}
        new_entities = {e.page_id: e for e in new.entities()}
        old_relations = {r.key: r for r in old.relations()}
        new_relations = {r.key: r for r in new.relations()}
        # A pair whose hyponym_kind flipped moves between the serving
        # indexes even though its (hyponym, hypernym) key is unchanged;
        # emit it as remove + add — which every consumer handles index-
        # aware — rather than as a "changed" pair, which the frozen
        # views rightly treat as index-neutral (rescore / re-source).
        flipped = {
            key
            for key in set(old_relations) & set(new_relations)
            if old_relations[key].hyponym_kind
            != new_relations[key].hyponym_kind
        }
        return cls(
            name=new.name,
            entities_added=tuple(
                new_entities[pid]
                for pid in sorted(set(new_entities) - set(old_entities))
            ),
            entities_removed=tuple(
                old_entities[pid]
                for pid in sorted(set(old_entities) - set(new_entities))
            ),
            entities_changed=tuple(
                (old_entities[pid], new_entities[pid])
                for pid in sorted(set(old_entities) & set(new_entities))
                if old_entities[pid] != new_entities[pid]
            ),
            relations_added=tuple(
                new_relations[key]
                for key in sorted(
                    (set(new_relations) - set(old_relations)) | flipped
                )
            ),
            relations_removed=tuple(
                old_relations[key]
                for key in sorted(
                    (set(old_relations) - set(new_relations)) | flipped
                )
            ),
            relations_changed=tuple(
                (old_relations[key], new_relations[key])
                for key in sorted(
                    (set(old_relations) & set(new_relations)) - flipped
                )
                if old_relations[key] != new_relations[key]
            ),
            new_stats=new.stats(),
            new_n_relations=len(new),
        )

    # -- shape ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not (
            self.entities_added
            or self.entities_removed
            or self.entities_changed
            or self.relations_added
            or self.relations_removed
            or self.relations_changed
        )

    @property
    def n_records(self) -> int:
        return (
            len(self.entities_added)
            + len(self.entities_removed)
            + len(self.entities_changed)
            + len(self.relations_added)
            + len(self.relations_removed)
            + len(self.relations_changed)
        )

    def summary(self) -> dict[str, int]:
        return {
            "entities_added": len(self.entities_added),
            "entities_removed": len(self.entities_removed),
            "entities_changed": len(self.entities_changed),
            "relations_added": len(self.relations_added),
            "relations_removed": len(self.relations_removed),
            "relations_changed": len(self.relations_changed),
        }

    def touched_serving_keys(self) -> Iterator[str]:
        """Every index key whose *serving answer* this delta can change.

        This is the per-shard publish surface: mentions of added /
        removed / changed entities and both endpoints of added / removed
        entity-kind relations.  Pure rescores and concept-layer edges do
        not appear in the three serving indexes, so they touch nothing —
        a rescore-only delta republishes zero shards.
        """
        for entity in self.entities_added + self.entities_removed:
            yield from entity.mentions
        for old, new in self.entities_changed:
            yield from old.mentions
            yield from new.mentions
        for relation in self.relations_added + self.relations_removed:
            if relation.hyponym_kind == HYPONYM_ENTITY:
                yield relation.hyponym
                yield relation.hypernym

    # -- persistence -------------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """The JSONL body records, in a stable canonical order."""
        for entity in self.entities_added:
            yield {"kind": "entity_add", **_entity_dict(entity)}
        for entity in self.entities_removed:
            yield {"kind": "entity_remove", **_entity_dict(entity)}
        for old, new in self.entities_changed:
            yield {
                "kind": "entity_change",
                "old": _entity_dict(old),
                "new": _entity_dict(new),
            }
        for relation in self.relations_added:
            yield {"kind": "relation_add", **_relation_dict(relation)}
        for relation in self.relations_removed:
            yield {"kind": "relation_remove", **_relation_dict(relation)}
        for old, new in self.relations_changed:
            yield {
                "kind": "relation_change",
                "old": _relation_dict(old),
                "new": _relation_dict(new),
            }


def save_delta(delta: TaxonomyDelta, path: str | Path) -> None:
    """Write *delta* as JSONL, atomically (temp file + ``os.replace``)."""
    from repro.taxonomy.store import _atomic_write  # late: avoid cycle

    target = Path(path)
    stats = delta.new_stats.as_dict() if delta.new_stats is not None else None

    def _write(handle) -> None:
        header = {
            "kind": "header",
            "format": DELTA_KIND,
            "format_version": DELTA_FORMAT_VERSION,
            "name": delta.name,
            "new_n_relations": delta.new_n_relations,
            "new_stats": stats,
        }
        handle.write(json.dumps(header, ensure_ascii=False) + "\n")
        for record in delta.records():
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")

    _atomic_write(target, _write)


def load_delta(path: str | Path) -> TaxonomyDelta:
    """Read a delta written by :func:`save_delta`."""
    from repro.taxonomy.store import TaxonomyStats, check_format_version

    source = Path(path)
    if not source.exists():
        raise TaxonomyError(f"delta file not found: {source}")
    name = "CN-Probase"
    new_stats: "TaxonomyStats | None" = None
    new_n_relations = 0
    entities_added: list[Entity] = []
    entities_removed: list[Entity] = []
    entities_changed: list[tuple[Entity, Entity]] = []
    relations_added: list[IsARelation] = []
    relations_removed: list[IsARelation] = []
    relations_changed: list[tuple[IsARelation, IsARelation]] = []
    saw_header = False
    with source.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TaxonomyError(
                    f"{source}:{line_no}: invalid JSON: {exc}"
                ) from exc
            kind = record.get("kind")
            if kind == "header":
                if record.get("format") != DELTA_KIND:
                    raise TaxonomyError(
                        f"{source}:{line_no}: not a taxonomy delta "
                        f"(format={record.get('format')!r})"
                    )
                check_format_version(
                    record, DELTA_FORMAT_VERSION, f"{source}:{line_no}"
                )
                name = record.get("name", name)
                new_n_relations = int(record.get("new_n_relations", 0))
                stats = record.get("new_stats")
                if stats is not None:
                    new_stats = TaxonomyStats(
                        n_entities=stats["entities"],
                        n_concepts=stats["concepts"],
                        n_entity_concept=stats["entity_concept_relations"],
                        n_subconcept_concept=stats[
                            "subconcept_concept_relations"
                        ],
                    )
                saw_header = True
            elif kind == "entity_add":
                entities_added.append(_entity_from(record))
            elif kind == "entity_remove":
                entities_removed.append(_entity_from(record))
            elif kind == "entity_change":
                entities_changed.append(
                    (_entity_from(record["old"]), _entity_from(record["new"]))
                )
            elif kind == "relation_add":
                relations_added.append(_relation_from(record))
            elif kind == "relation_remove":
                relations_removed.append(_relation_from(record))
            elif kind == "relation_change":
                relations_changed.append(
                    (
                        _relation_from(record["old"]),
                        _relation_from(record["new"]),
                    )
                )
            else:
                raise TaxonomyError(
                    f"{source}:{line_no}: unknown delta record kind {kind!r}"
                )
    if not saw_header:
        raise TaxonomyError(f"{source}: missing taxonomy-delta header line")
    return TaxonomyDelta(
        name=name,
        entities_added=tuple(entities_added),
        entities_removed=tuple(entities_removed),
        entities_changed=tuple(entities_changed),
        relations_added=tuple(relations_added),
        relations_removed=tuple(relations_removed),
        relations_changed=tuple(relations_changed),
        new_stats=new_stats,
        new_n_relations=new_n_relations,
    )
