"""`TaxonomyDelta` — the cross-layer currency of incremental rebuilds.

A delta is the exact record-level difference between two built
taxonomies: entities and isA relations *added*, *removed* and *changed*
(rescored / re-sourced).  Every layer of the refresh path speaks it:

- the build pipeline emits one from
  :meth:`~repro.core.pipeline.CNProbaseBuilder.build_incremental`,
- the store applies one with :meth:`~repro.taxonomy.store.Taxonomy.apply_delta`
  (mutable) and :meth:`~repro.taxonomy.store.ReadOptimizedTaxonomy.apply_delta`
  (frozen, touched-keys-only),
- the service publishes one with
  :meth:`~repro.taxonomy.service.TaxonomyService.publish_delta`,
- the sharded store republishes only the shards whose keys the delta
  touches (:meth:`~repro.serving.sharding.ShardedSnapshotStore.publish_delta`),
- the HTTP cluster accepts one at ``POST /admin/apply-delta`` — by
  server-side path or inline as the :meth:`TaxonomyDelta.to_wire` JSON
  object the replication layer ships to remote replicas.

The non-negotiable equivalence contract: for any two taxonomies *old*
and *new*, applying ``TaxonomyDelta.compute(old, new)`` to *old* yields
a taxonomy whose canonical JSONL (:meth:`Taxonomy.save`) is
byte-identical to saving *new*.  ``changed`` entries carry both the old
and the new record, so a delta is self-describing (appliable without
the base at hand, and refusable when the base does not match).

Deltas also *chain*: :func:`compose` squashes an ordered sequence of
deltas (night 1 → night 2 → ... → night N) into one equivalent delta —
add-then-remove cancels, change-of-change collapses to
(first old, last new) — with its own contract: applying the composed
delta to the chain's base is byte-identical to applying the chain one
by one.  :class:`DeltaHistory` keeps a bounded ring of applied deltas
keyed by version so a lagging replica can catch up by chain instead of
a full snapshot, and :meth:`TaxonomyDelta.slice` restricts a delta to
the serving keys a shard owns (the per-shard wire payload).

Persistence is JSONL like the taxonomy itself: a header line with a
``format_version``, then one record per line, written atomically.
Delta files have always been versioned, so a header *missing*
``format_version`` is malformed (unlike taxonomy files, which accept
the legacy pre-versioning layout).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.errors import TaxonomyError
from repro.taxonomy.model import HYPONYM_ENTITY, Entity, IsARelation

if TYPE_CHECKING:
    from repro.taxonomy.store import Taxonomy, TaxonomyStats

#: Version of the delta JSONL layout; bump on incompatible changes.
DELTA_FORMAT_VERSION = 1

DELTA_KIND = "taxonomy-delta"


def _entity_dict(entity: Entity) -> dict:
    return {
        "page_id": entity.page_id,
        "name": entity.name,
        "aliases": list(entity.aliases),
    }


def _entity_from(data: dict) -> Entity:
    try:
        return Entity(
            page_id=data["page_id"],
            name=data["name"],
            aliases=tuple(data.get("aliases", ())),
        )
    except KeyError as exc:
        raise TaxonomyError(f"delta entity record missing key: {exc}") from exc


def _relation_dict(relation: IsARelation) -> dict:
    return {
        "hyponym": relation.hyponym,
        "hypernym": relation.hypernym,
        "source": relation.source,
        "hyponym_kind": relation.hyponym_kind,
        "score": relation.score,
    }


def _relation_from(data: dict) -> IsARelation:
    try:
        return IsARelation(
            hyponym=data["hyponym"],
            hypernym=data["hypernym"],
            source=data["source"],
            hyponym_kind=data["hyponym_kind"],
            score=data.get("score", 1.0),
        )
    except KeyError as exc:
        raise TaxonomyError(
            f"delta relation record missing key: {exc}"
        ) from exc


@dataclass(frozen=True)
class TaxonomyDelta:
    """Exact record-level difference between two built taxonomies.

    ``*_changed`` pairs are ``(old, new)`` records sharing an identity
    (page_id / relation key) whose fields differ — for relations that is
    a rescore or a provenance change.  ``new_stats`` / ``new_n_relations``
    are the target taxonomy's headline numbers, carried so a frozen
    read view can be advanced without recounting the world.

    ``base_content_hash`` / ``new_content_hash`` are the sha256 content
    hashes (:meth:`~repro.taxonomy.store.Taxonomy.content_hash`) of the
    *cluster-level* base and target taxonomies — the content-addressed
    half of the publish handshake.  They survive :meth:`slice` unchanged
    (a shard slice still targets the same cluster state), so every
    replica that applies its slice of a delta converges on the same
    advertised hash.  ``None`` means the producer did not stamp them
    (hand-built deltas); consumers fall back to ordinal versions.
    """

    name: str
    entities_added: tuple[Entity, ...] = ()
    entities_removed: tuple[Entity, ...] = ()
    entities_changed: tuple[tuple[Entity, Entity], ...] = ()
    relations_added: tuple[IsARelation, ...] = ()
    relations_removed: tuple[IsARelation, ...] = ()
    relations_changed: tuple[tuple[IsARelation, IsARelation], ...] = ()
    new_stats: "TaxonomyStats | None" = None
    new_n_relations: int = 0
    base_content_hash: str | None = None
    new_content_hash: str | None = None

    @classmethod
    def compute(cls, old: "Taxonomy", new: "Taxonomy") -> "TaxonomyDelta":
        """The exact delta turning *old* into *new*.

        Equivalence holds by construction:
        ``old.apply_delta(compute(old, new))`` saves byte-identically to
        ``new`` (canonical JSONL order makes insertion order moot).
        """
        old_entities = {e.page_id: e for e in old.entities()}
        new_entities = {e.page_id: e for e in new.entities()}
        old_relations = {r.key: r for r in old.relations()}
        new_relations = {r.key: r for r in new.relations()}
        # A pair whose hyponym_kind flipped moves between the serving
        # indexes even though its (hyponym, hypernym) key is unchanged;
        # emit it as remove + add — which every consumer handles index-
        # aware — rather than as a "changed" pair, which the frozen
        # views rightly treat as index-neutral (rescore / re-source).
        flipped = {
            key
            for key in set(old_relations) & set(new_relations)
            if old_relations[key].hyponym_kind
            != new_relations[key].hyponym_kind
        }
        return cls(
            name=new.name,
            entities_added=tuple(
                new_entities[pid]
                for pid in sorted(set(new_entities) - set(old_entities))
            ),
            entities_removed=tuple(
                old_entities[pid]
                for pid in sorted(set(old_entities) - set(new_entities))
            ),
            entities_changed=tuple(
                (old_entities[pid], new_entities[pid])
                for pid in sorted(set(old_entities) & set(new_entities))
                if old_entities[pid] != new_entities[pid]
            ),
            relations_added=tuple(
                new_relations[key]
                for key in sorted(
                    (set(new_relations) - set(old_relations)) | flipped
                )
            ),
            relations_removed=tuple(
                old_relations[key]
                for key in sorted(
                    (set(old_relations) - set(new_relations)) | flipped
                )
            ),
            relations_changed=tuple(
                (old_relations[key], new_relations[key])
                for key in sorted(
                    (set(old_relations) & set(new_relations)) - flipped
                )
                if old_relations[key] != new_relations[key]
            ),
            new_stats=new.stats(),
            new_n_relations=len(new),
            base_content_hash=old.content_hash(),
            new_content_hash=new.content_hash(),
        )

    # -- shape ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not (
            self.entities_added
            or self.entities_removed
            or self.entities_changed
            or self.relations_added
            or self.relations_removed
            or self.relations_changed
        )

    @property
    def n_records(self) -> int:
        return (
            len(self.entities_added)
            + len(self.entities_removed)
            + len(self.entities_changed)
            + len(self.relations_added)
            + len(self.relations_removed)
            + len(self.relations_changed)
        )

    def summary(self) -> dict[str, int]:
        return {
            "entities_added": len(self.entities_added),
            "entities_removed": len(self.entities_removed),
            "entities_changed": len(self.entities_changed),
            "relations_added": len(self.relations_added),
            "relations_removed": len(self.relations_removed),
            "relations_changed": len(self.relations_changed),
        }

    def touched_serving_keys(self) -> Iterator[str]:
        """Every index key whose *serving answer* this delta can change.

        This is the per-shard publish surface: mentions of added /
        removed / changed entities and both endpoints of added / removed
        entity-kind relations.  Pure rescores and concept-layer edges do
        not appear in the three serving indexes, so they touch nothing —
        a rescore-only delta republishes zero shards.
        """
        for entity in self.entities_added + self.entities_removed:
            yield from entity.mentions
        for old, new in self.entities_changed:
            yield from old.mentions
            yield from new.mentions
        for relation in self.relations_added + self.relations_removed:
            if relation.hyponym_kind == HYPONYM_ENTITY:
                yield relation.hyponym
                yield relation.hypernym

    # -- slicing -----------------------------------------------------------------

    def slice(self, keep: Callable[[str], bool]) -> "TaxonomyDelta":
        """The sub-delta touching only serving keys *keep* accepts.

        This is the per-shard wire payload of delta-aware replication: a
        record is kept iff at least one of its serving keys (mentions
        for entities, both endpoints for entity-kind relations) passes
        *keep* — the receiving replica applies it under the same key
        filter, so keys outside its shard are never half-updated.
        Records with no serving keys at all (concept-layer relations,
        pure rescores) serve nothing and are dropped; headline numbers
        are cleared for the same reason (the receiver recomputes its
        shard-local counts on apply).  The content-hash stamps are
        *kept*: a shard slice still targets the same cluster-level
        state, and the receiving replica advertises the cluster hash.
        """

        def keep_entity(*records: Entity) -> bool:
            return any(
                keep(mention)
                for record in records
                for mention in record.mentions
            )

        def keep_relation(relation: IsARelation) -> bool:
            return relation.hyponym_kind == HYPONYM_ENTITY and (
                keep(relation.hyponym) or keep(relation.hypernym)
            )

        return TaxonomyDelta(
            name=self.name,
            entities_added=tuple(
                e for e in self.entities_added if keep_entity(e)
            ),
            entities_removed=tuple(
                e for e in self.entities_removed if keep_entity(e)
            ),
            entities_changed=tuple(
                (old, new)
                for old, new in self.entities_changed
                if keep_entity(old, new)
            ),
            relations_added=tuple(
                r for r in self.relations_added if keep_relation(r)
            ),
            relations_removed=tuple(
                r for r in self.relations_removed if keep_relation(r)
            ),
            base_content_hash=self.base_content_hash,
            new_content_hash=self.new_content_hash,
        )

    # -- persistence -------------------------------------------------------------

    def records(self) -> Iterator[dict]:
        """The JSONL body records, in a stable canonical order."""
        for entity in self.entities_added:
            yield {"kind": "entity_add", **_entity_dict(entity)}
        for entity in self.entities_removed:
            yield {"kind": "entity_remove", **_entity_dict(entity)}
        for old, new in self.entities_changed:
            yield {
                "kind": "entity_change",
                "old": _entity_dict(old),
                "new": _entity_dict(new),
            }
        for relation in self.relations_added:
            yield {"kind": "relation_add", **_relation_dict(relation)}
        for relation in self.relations_removed:
            yield {"kind": "relation_remove", **_relation_dict(relation)}
        for old, new in self.relations_changed:
            yield {
                "kind": "relation_change",
                "old": _relation_dict(old),
                "new": _relation_dict(new),
            }

    def to_wire(self) -> dict:
        """The delta as one JSON-serializable object (header + records).

        This is the inline body ``POST /admin/apply-delta`` accepts, so
        a delta can be shipped to a remote replica *by value* — the file
        persistence (:func:`save_delta`) is the same header and records,
        one JSON document per line instead of one object.
        """
        stats = self.new_stats.as_dict() if self.new_stats is not None else None
        return {
            "format": DELTA_KIND,
            "format_version": DELTA_FORMAT_VERSION,
            "name": self.name,
            "new_n_relations": self.new_n_relations,
            "new_stats": stats,
            "base_content_hash": self.base_content_hash,
            "new_content_hash": self.new_content_hash,
            "records": list(self.records()),
        }

    @classmethod
    def from_wire(cls, payload: dict, where: str = "wire") -> "TaxonomyDelta":
        """Rebuild a delta from a :meth:`to_wire` object.

        Raises :class:`~repro.errors.TaxonomyError` on anything
        malformed — wrong ``format``, missing or garbage
        ``format_version``, unknown record kinds — never ``KeyError``.
        """
        if not isinstance(payload, dict):
            raise TaxonomyError(
                f"{where}: delta payload must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        records = payload.get("records")
        if not isinstance(records, list):
            raise TaxonomyError(
                f"{where}: delta payload needs a 'records' list"
            )
        return _assemble_delta(payload, records, where)


def save_delta(delta: TaxonomyDelta, path: str | Path) -> None:
    """Write *delta* as JSONL, atomically (temp file + ``os.replace``)."""
    from repro.taxonomy.store import _atomic_write  # late: avoid cycle

    target = Path(path)
    stats = delta.new_stats.as_dict() if delta.new_stats is not None else None

    def _write(handle) -> None:
        header = {
            "kind": "header",
            "format": DELTA_KIND,
            "format_version": DELTA_FORMAT_VERSION,
            "name": delta.name,
            "new_n_relations": delta.new_n_relations,
            "new_stats": stats,
            "base_content_hash": delta.base_content_hash,
            "new_content_hash": delta.new_content_hash,
        }
        handle.write(json.dumps(header, ensure_ascii=False) + "\n")
        for record in delta.records():
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")

    _atomic_write(target, _write)


class _DeltaParts:
    """Accumulates typed record lists while parsing a delta body."""

    def __init__(self) -> None:
        self.entities_added: list[Entity] = []
        self.entities_removed: list[Entity] = []
        self.entities_changed: list[tuple[Entity, Entity]] = []
        self.relations_added: list[IsARelation] = []
        self.relations_removed: list[IsARelation] = []
        self.relations_changed: list[tuple[IsARelation, IsARelation]] = []

    def dispatch(self, record: dict, where: str) -> None:
        if not isinstance(record, dict):
            raise TaxonomyError(
                f"{where}: delta record must be a JSON object, "
                f"got {type(record).__name__}"
            )
        kind = record.get("kind")
        try:
            if kind == "entity_add":
                self.entities_added.append(_entity_from(record))
            elif kind == "entity_remove":
                self.entities_removed.append(_entity_from(record))
            elif kind == "entity_change":
                self.entities_changed.append(
                    (_entity_from(record["old"]), _entity_from(record["new"]))
                )
            elif kind == "relation_add":
                self.relations_added.append(_relation_from(record))
            elif kind == "relation_remove":
                self.relations_removed.append(_relation_from(record))
            elif kind == "relation_change":
                self.relations_changed.append(
                    (
                        _relation_from(record["old"]),
                        _relation_from(record["new"]),
                    )
                )
            else:
                raise TaxonomyError(
                    f"{where}: unknown delta record kind {kind!r}"
                )
        except KeyError as exc:  # a change record missing its old/new half
            raise TaxonomyError(
                f"{where}: malformed {kind} record: missing {exc}"
            ) from exc

    def build(
        self,
        name: str,
        new_stats: "TaxonomyStats | None",
        new_n_relations: int,
        base_content_hash: str | None = None,
        new_content_hash: str | None = None,
    ) -> TaxonomyDelta:
        return TaxonomyDelta(
            name=name,
            entities_added=tuple(self.entities_added),
            entities_removed=tuple(self.entities_removed),
            entities_changed=tuple(self.entities_changed),
            relations_added=tuple(self.relations_added),
            relations_removed=tuple(self.relations_removed),
            relations_changed=tuple(self.relations_changed),
            new_stats=new_stats,
            new_n_relations=new_n_relations,
            base_content_hash=base_content_hash,
            new_content_hash=new_content_hash,
        )


def _parse_delta_header(
    header: dict, where: str
) -> tuple[str, "TaxonomyStats | None", int, str | None, str | None]:
    """Validate a delta header; returns
    ``(name, new_stats, new_n_relations, base_content_hash,
    new_content_hash)``.

    Every delta ever written carried a ``format_version`` (the format
    was born versioned in the PR that introduced it), so a missing or
    garbage version is a malformed file, not a legacy one — both raise
    :class:`~repro.errors.TaxonomyError` with the offending location.
    """
    from repro.taxonomy.store import TaxonomyStats, check_format_version

    if header.get("format") != DELTA_KIND:
        raise TaxonomyError(
            f"{where}: not a taxonomy delta "
            f"(format={header.get('format')!r})"
        )
    if "format_version" not in header:
        raise TaxonomyError(
            f"{where}: delta header is missing format_version"
        )
    check_format_version(header, DELTA_FORMAT_VERSION, where)
    name = header.get("name", "CN-Probase")
    try:
        new_n_relations = int(header.get("new_n_relations", 0))
    except (TypeError, ValueError) as exc:
        raise TaxonomyError(
            f"{where}: malformed new_n_relations "
            f"{header.get('new_n_relations')!r}"
        ) from exc
    stats = header.get("new_stats")
    new_stats: "TaxonomyStats | None" = None
    if stats is not None:
        try:
            new_stats = TaxonomyStats(
                n_entities=stats["entities"],
                n_concepts=stats["concepts"],
                n_entity_concept=stats["entity_concept_relations"],
                n_subconcept_concept=stats["subconcept_concept_relations"],
            )
        except (TypeError, KeyError) as exc:
            raise TaxonomyError(
                f"{where}: malformed new_stats header: {exc}"
            ) from exc
    hashes: list[str | None] = []
    for field in ("base_content_hash", "new_content_hash"):
        value = header.get(field)
        if value is not None and not isinstance(value, str):
            raise TaxonomyError(
                f"{where}: malformed {field} {value!r}"
            )
        hashes.append(value)
    return name, new_stats, new_n_relations, hashes[0], hashes[1]


def _assemble_delta(
    header: dict, records: Iterable[dict], where: str
) -> TaxonomyDelta:
    parsed = _parse_delta_header(header, where)
    parts = _DeltaParts()
    for record in records:
        parts.dispatch(record, where)
    return parts.build(*parsed)


def load_delta(path: str | Path) -> TaxonomyDelta:
    """Read a delta written by :func:`save_delta`."""
    source = Path(path)
    if not source.exists():
        raise TaxonomyError(f"delta file not found: {source}")
    header: tuple | None = None
    parts = _DeltaParts()
    with source.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TaxonomyError(
                    f"{source}:{line_no}: invalid JSON: {exc}"
                ) from exc
            if isinstance(record, dict) and record.get("kind") == "header":
                header = _parse_delta_header(record, f"{source}:{line_no}")
            else:
                parts.dispatch(record, f"{source}:{line_no}")
    if header is None:
        raise TaxonomyError(f"{source}: missing taxonomy-delta header line")
    return parts.build(*header)


def compose(deltas: Sequence[TaxonomyDelta]) -> TaxonomyDelta:
    """Squash an ordered chain of deltas into one equivalent delta.

    The chain-equivalence contract: for a base taxonomy *T* that
    ``deltas[0]`` applies to, ``T.apply_delta(compose(deltas))`` saves
    byte-identically to applying the chain one by one (and therefore to
    a cold full rebuild of the final state) — asserted by the test
    suite and ``benchmarks/bench_delta_chain.py``.

    Per record identity (entity page_id / relation key) only the *net*
    change survives: add-then-remove cancels to nothing,
    change-of-change collapses to (first old, last new), remove-then-
    re-add of an identical record cancels, and a relation whose
    ``hyponym_kind`` flipped net-to-net is emitted as remove + add
    (the same convention :meth:`TaxonomyDelta.compute` uses, because
    the pair moves between serving indexes).  Headline numbers and the
    name come from the last delta — the chain's final state.

    The deltas must actually chain: each op's expected base state must
    match the net state the earlier deltas left, otherwise
    :class:`~repro.errors.TaxonomyError` is raised (composing
    deltas from two unrelated nights would otherwise silently corrupt
    whatever it was applied to).
    """
    if not deltas:
        raise TaxonomyError("compose needs at least one delta")

    entity_net: dict[str, list] = {}
    relation_net: dict[tuple[str, str], list] = {}

    def advance(net: dict, key, old, new, what: str) -> None:
        tracked = net.get(key)
        if tracked is None:
            net[key] = [old, new]
            return
        if tracked[1] != old:
            raise TaxonomyError(
                f"deltas do not chain: {what} {key!r} expects base "
                f"{old!r} but the earlier deltas leave {tracked[1]!r}"
            )
        tracked[1] = new

    for delta in deltas:
        # removals before additions: one delta may remove and re-add
        # the same relation key (a hyponym_kind flip), and that pair
        # only chains in remove-then-add order
        for entity in delta.entities_removed:
            advance(entity_net, entity.page_id, entity, None, "entity")
        for old, new in delta.entities_changed:
            advance(entity_net, old.page_id, old, new, "entity")
        for entity in delta.entities_added:
            advance(entity_net, entity.page_id, None, entity, "entity")
        for relation in delta.relations_removed:
            advance(relation_net, relation.key, relation, None, "relation")
        for old, new in delta.relations_changed:
            advance(relation_net, old.key, old, new, "relation")
        for relation in delta.relations_added:
            advance(relation_net, relation.key, None, relation, "relation")

    entities_added: list[Entity] = []
    entities_removed: list[Entity] = []
    entities_changed: list[tuple[Entity, Entity]] = []
    for page_id in sorted(entity_net):
        old, new = entity_net[page_id]
        if old is None and new is not None:
            entities_added.append(new)
        elif old is not None and new is None:
            entities_removed.append(old)
        elif old != new:  # both present; identical pairs cancelled out
            entities_changed.append((old, new))

    relations_added: list[IsARelation] = []
    relations_removed: list[IsARelation] = []
    relations_changed: list[tuple[IsARelation, IsARelation]] = []
    for key in sorted(relation_net):
        old, new = relation_net[key]
        if old is None and new is not None:
            relations_added.append(new)
        elif old is not None and new is None:
            relations_removed.append(old)
        elif old != new:
            if old.hyponym_kind != new.hyponym_kind:
                # net kind flip: the pair moves between the serving
                # indexes — remove + add, exactly like compute()
                relations_removed.append(old)
                relations_added.append(new)
            else:
                relations_changed.append((old, new))

    last = deltas[-1]
    return TaxonomyDelta(
        name=last.name,
        entities_added=tuple(entities_added),
        entities_removed=tuple(entities_removed),
        entities_changed=tuple(entities_changed),
        relations_added=tuple(sorted(relations_added, key=lambda r: r.key)),
        relations_removed=tuple(
            sorted(relations_removed, key=lambda r: r.key)
        ),
        relations_changed=tuple(relations_changed),
        new_stats=last.new_stats,
        new_n_relations=last.new_n_relations,
        # content endpoints of the squashed span: the chain starts at
        # the first delta's base bytes and lands on the last's target
        base_content_hash=deltas[0].base_content_hash,
        new_content_hash=last.new_content_hash,
    )


def parse_version_id(version_id: object) -> int | None:
    """``"v3"`` → 3; anything else → ``None``.

    The one parser for the wire's version-id spelling — the router's
    chain-catch-up decision and the server's publish stamping must
    never drift apart on what a version id looks like.
    """
    if isinstance(version_id, str) and version_id.startswith("v"):
        try:
            return int(version_id[1:])
        except ValueError:
            return None
    return None


def bump_version(current: int, requested: int | None) -> int:
    """The version a publish produces: ``current + 1``, or an explicit
    newer stamp.

    Every publishing front (service, sharded store, router) shares
    this rule, so a stale explicit stamp — e.g. an orchestration layer
    re-sending last night's publish — is refused identically
    everywhere instead of silently rewinding one front's lineage.
    """
    if requested is None:
        return current + 1
    if requested <= current:
        raise TaxonomyError(
            f"publish version v{requested} must be newer than the "
            f"published v{current}"
        )
    return requested


#: How many applied deltas a :class:`DeltaHistory` ring keeps.  Covers a
#: month of nightly refreshes — a replica lagging further than that is
#: healed by a full snapshot, which at that distance is cheaper anyway.
DELTA_HISTORY_SIZE = 32


@dataclass(frozen=True)
class AppliedDelta:
    """One published delta with its version lineage endpoints.

    ``base_content_hash`` / ``content_hash`` are the content-addressed
    endpoints of the same hop — the canonical-bytes sha256 before and
    after the publish — so the history can answer catch-up queries by
    *content* as well as by ordinal (a restarted replica knows what
    bytes it holds, not what ordinal the cluster reached).
    """

    base_version: int
    version: int
    delta: TaxonomyDelta
    base_content_hash: str | None = None
    content_hash: str | None = None


class DeltaHistory:
    """Bounded ring of applied deltas, keyed by version lineage.

    Every delta publish records ``(base_version → version, delta)``;
    :meth:`chain` walks the ring to answer "what sequence of deltas
    turns version *F* into version *T*?" — which is how a late-joining
    replica catches up by chain (one composed delta over the wire)
    instead of a full snapshot.  A full swap breaks the lineage by
    design (its version has no entry), so a chain across it correctly
    comes back ``None`` and the caller falls back to a snapshot.

    Thread-safe: publishes happen under the owning store's lock but
    reads (the replication path) may come from any thread.
    """

    def __init__(self, maxlen: int = DELTA_HISTORY_SIZE) -> None:
        if maxlen < 1:
            raise TaxonomyError(f"history maxlen must be >= 1, got {maxlen}")
        self._entries: deque[AppliedDelta] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def record(
        self,
        base_version: int,
        version: int,
        delta: TaxonomyDelta,
        *,
        base_content_hash: str | None = None,
        content_hash: str | None = None,
    ) -> None:
        if base_content_hash is None:
            base_content_hash = delta.base_content_hash
        if content_hash is None:
            content_hash = delta.new_content_hash
        with self._lock:
            self._entries.append(
                AppliedDelta(
                    base_version,
                    version,
                    delta,
                    base_content_hash=base_content_hash,
                    content_hash=content_hash,
                )
            )

    def entries(self) -> list[AppliedDelta]:
        with self._lock:
            return list(self._entries)

    def versions(self) -> list[int]:
        """The versions delta publishes produced, oldest first."""
        return [entry.version for entry in self.entries()]

    def lineage_ids(self) -> list[str]:
        """:meth:`versions` as wire version ids (``["v2", "v3"]``).

        What every front's ``version_lineage()`` (and ``/version``)
        reports: a contiguous run means those versions are reachable by
        chain; a full swap records nothing, so gaps mark where catch-up
        must fall back to a snapshot.
        """
        return [f"v{version}" for version in self.versions()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def chain(
        self, from_version: int, to_version: int
    ) -> list[TaxonomyDelta] | None:
        """The recorded delta sequence from one version to another.

        Returns ``None`` when the ring does not cover the span — the
        start has been evicted, the lineage was broken by a full swap,
        or the versions never existed.  ``from_version == to_version``
        is the empty chain.
        """
        entries = self.chain_entries(from_version, to_version)
        if entries is None:
            return None
        return [entry.delta for entry in entries]

    def chain_entries(
        self, from_version: int, to_version: int
    ) -> list[AppliedDelta] | None:
        """Like :meth:`chain` but with full lineage records.

        The resync path needs the per-hop version *and* content-hash
        endpoints (to stamp its catch-up publish), not just the deltas.
        """
        if from_version == to_version:
            return []
        by_base = {
            entry.base_version: entry for entry in self.entries()
        }
        chain: list[AppliedDelta] = []
        cursor = from_version
        while cursor != to_version:
            entry = by_base.get(cursor)
            if entry is None:
                return None
            chain.append(entry)
            cursor = entry.version
            if len(chain) > len(by_base):  # defensive: lineage loop
                return None
        return chain

    def chain_entries_by_hash(
        self, from_hash: str, to_hash: str
    ) -> list[AppliedDelta] | None:
        """The catch-up chain between two *content hashes*.

        The content-addressed twin of :meth:`chain_entries`: a
        recovering replica knows the bytes it holds (its own
        :meth:`~repro.taxonomy.store.Taxonomy.content_hash`) even when
        its ordinal counter is meaningless after a restart.  Returns
        ``None`` when the span is not covered — unstamped entries never
        participate, so a lineage that mixes hashed and hashless
        publishes falls back to snapshots rather than guessing.
        """
        if from_hash == to_hash:
            return []
        by_base = {
            entry.base_content_hash: entry
            for entry in self.entries()
            if entry.base_content_hash is not None
            and entry.content_hash is not None
        }
        chain: list[AppliedDelta] = []
        cursor: str | None = from_hash
        while cursor != to_hash:
            entry = by_base.get(cursor)
            if entry is None:
                return None
            chain.append(entry)
            cursor = entry.content_hash
            if len(chain) > len(by_base):  # defensive: lineage loop
                return None
        return chain
