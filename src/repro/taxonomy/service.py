"""Versioned serving facade: snapshots, batching, latency accounting.

The paper's deployment serves tens of millions of calls (Table II)
while the taxonomy behind them is periodically rebuilt.
:class:`TaxonomyService` decouples the two concerns that
:class:`~repro.taxonomy.api.TaxonomyAPI` fuses:

- requests are served from an immutable :class:`TaxonomySnapshot` with
  a version id; a rebuild is published with :meth:`TaxonomyService.swap`,
  which replaces the snapshot atomically — in-flight batches keep
  reading the snapshot they pinned, so a swap never tears a batch;
- each snapshot serves from a
  :class:`~repro.taxonomy.store.ReadOptimizedTaxonomy` frozen at publish
  time: the sorted result lists of all three APIs are precomputed, so a
  served call is a dict hit plus a list copy — no per-call ``sorted()``
  and no answer drift if someone mutates the builder's taxonomy after
  publishing;
- the canonical serving surface is :class:`BatchedServingAPI` — singles
  ``men2ent`` / ``get_concepts`` / ``get_entities``, batched variants
  ``men2ent_batch`` / ``get_concepts_batch`` / ``get_entities_batch``
  that pin one snapshot for the whole batch and answer
  position-for-position, plus deprecated PR-1 aliases (``get_concept``,
  ``get_entity``, and the plural-name-as-batch spelling) kept for
  compatibility — the same mixin the :mod:`repro.serving` cluster
  (sharded store, replica router, HTTP client) implements;
- every call is measured: per-API call/hit counts, wall-clock and a
  recent-window latency reservoir land in a :class:`ServiceMetrics`
  ledger that survives snapshot swaps and reports p50/p95/p99 tail
  latency, which is what the workload generator, the API-service
  example and the cluster's ``/metrics`` endpoint report.
"""

from __future__ import annotations

import math
import threading
import warnings
from collections import deque
from dataclasses import dataclass, field
from repro.obs.clock import elapsed
from typing import Sequence

from repro.errors import APIError, DeltaConflictError, TaxonomyError
from repro.obs import current_trace_id, get_hub
from repro.obs.metrics import MetricSnapshot, Sample, SummarySample, summary_quantiles
from repro.taxonomy.api import TaxonomyAPI
from repro.taxonomy.delta import DeltaHistory, bump_version
from repro.taxonomy.store import ReadOptimizedTaxonomy, Taxonomy, TaxonomyStats

#: The reserved lookup key health probes use.  Guaranteed to miss (real
#: keys never start with ``__``), and excluded from the per-API metrics
#: ledgers at every serving front — probe traffic is liveness plumbing,
#: not workload, and must not pollute serving p50/p95/p99.
PROBE_KEY = "__probe__"

#: How many recent per-call latencies each :class:`APILatency` keeps for
#: quantile estimation.  A bounded ring buffer: tail latency is a
#: recent-window property (a spike six hours ago should not dominate
#: today's p99), and production traffic is unbounded so the ledger must
#: not grow with it.
LATENCY_RESERVOIR_SIZE = 2048


@dataclass(frozen=True)
class TaxonomySnapshot:
    """One immutable published version of the taxonomy.

    ``read_view`` is the frozen :class:`ReadOptimizedTaxonomy` the
    snapshot's API answers from; ``taxonomy`` keeps the full store for
    closure queries and persistence.  The wrapped :class:`TaxonomyAPI`
    carries the snapshot's own usage ledger, so per-version serving
    statistics remain separable from the service's cumulative metrics.
    """

    version: int
    taxonomy: Taxonomy
    api: TaxonomyAPI
    read_view: ReadOptimizedTaxonomy
    #: sha256 of the canonical saved bytes — the content-addressed
    #: version id probes and the publish handshake converge on.
    content_hash: str | None = None

    @classmethod
    def publish(cls, version: int, taxonomy: Taxonomy) -> "TaxonomySnapshot":
        """Freeze *taxonomy* into a servable snapshot."""
        read_view = taxonomy.freeze()
        return cls(
            version=version,
            taxonomy=taxonomy,
            api=TaxonomyAPI(read_view),
            read_view=read_view,
            content_hash=taxonomy.content_hash(),
        )

    @property
    def version_id(self) -> str:
        return f"v{self.version}"

    def stats(self) -> TaxonomyStats:
        return self.read_view.stats()


@dataclass
class APILatency:
    """Latency/hit accounting for one API across the service lifetime.

    Besides the cumulative counters, the last
    :data:`LATENCY_RESERVOIR_SIZE` observations are kept in a ring
    buffer so :meth:`quantile` can report real tail latency — ``/metrics``
    exposes p50/p95/p99, which a mean can hide completely.
    """

    calls: int = 0
    hits: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def __post_init__(self) -> None:
        self._samples: deque[float] = deque(maxlen=LATENCY_RESERVOIR_SIZE)

    def observe(self, seconds: float, hit: bool) -> None:
        self.calls += 1
        if hit:
            self.hits += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        self._samples.append(seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the recent-latency reservoir.

        Returns 0.0 before the first observation, so an idle API reads
        as all-zero instead of raising from ``/metrics``.
        """
        return self.quantiles(q)[0]

    def quantiles(self, *qs: float) -> tuple[float, ...]:
        """Several nearest-rank quantiles from one sorted snapshot.

        The reservoir is copied before sorting so a concurrent
        ``observe`` from another serving thread cannot mutate the deque
        mid-iteration, and ``/metrics`` pays one sort per API instead
        of one per percentile.
        """
        for q in qs:
            if not 0.0 < q <= 1.0:
                raise APIError(f"quantile must be in (0, 1], got {q}")
        ordered = sorted(tuple(self._samples))
        if not ordered:
            return tuple(0.0 for _ in qs)
        return tuple(
            ordered[max(1, math.ceil(q * len(ordered))) - 1] for q in qs
        )

    @property
    def p50_seconds(self) -> float:
        return self.quantile(0.50)

    @property
    def p95_seconds(self) -> float:
        return self.quantile(0.95)

    @property
    def p99_seconds(self) -> float:
        return self.quantile(0.99)


@dataclass
class ServiceMetrics:
    """Cumulative per-API accounting; survives snapshot swaps.

    Observation is lock-protected: the service serves concurrent
    callers across swaps, and unsynchronised ``+=`` on the counters
    would silently drop increments under that load.
    """

    per_api: dict[str, APILatency] = field(default_factory=dict)
    swaps: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def observe(self, api: str, seconds: float, hit: bool) -> None:
        with self._lock:
            self.per_api.setdefault(api, APILatency()).observe(seconds, hit)

    def latency(self, api: str) -> APILatency:
        return self.per_api.get(api, APILatency())

    @property
    def total_calls(self) -> int:
        return sum(entry.calls for entry in self.per_api.values())

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        with self._lock:  # consistent snapshot vs concurrent observe()
            report = {}
            for api, entry in self.per_api.items():
                p50, p95, p99 = entry.quantiles(0.50, 0.95, 0.99)
                report[api] = {
                    "calls": entry.calls,
                    "hits": entry.hits,
                    "hit_rate": entry.hit_rate,
                    "mean_seconds": entry.mean_seconds,
                    "p50_seconds": p50,
                    "p95_seconds": p95,
                    "p99_seconds": p99,
                    "max_seconds": entry.max_seconds,
                }
            return report

    def metric_samples(self) -> list[MetricSnapshot]:
        """This ledger as registry-shaped metric families.

        The :class:`~repro.obs.metrics.MetricsRegistry` collector hook:
        one consistent read under the ledger lock, emitted as
        ``serving_api_calls_total`` / ``serving_api_hits_total``
        counters, the ``serving_api_latency_seconds`` summary, and the
        ``serving_swaps_total`` counter.
        """
        with self._lock:
            calls, hits, latencies = [], [], []
            for api, entry in self.per_api.items():
                labels = (("api", api),)
                calls.append(Sample(labels, float(entry.calls)))
                hits.append(Sample(labels, float(entry.hits)))
                latencies.append(SummarySample(
                    labels=labels,
                    count=entry.calls,
                    sum=entry.total_seconds,
                    max=entry.max_seconds,
                    quantiles=summary_quantiles(entry._samples),
                ))
            swaps = (Sample((), float(self.swaps)),)
        return [
            MetricSnapshot(
                "serving_api_calls_total", "counter",
                "Calls served, per API", tuple(calls),
            ),
            MetricSnapshot(
                "serving_api_hits_total", "counter",
                "Calls answered non-empty, per API", tuple(hits),
            ),
            MetricSnapshot(
                "serving_api_latency_seconds", "summary",
                "Per-call serving latency, per API", tuple(latencies),
            ),
            MetricSnapshot(
                "serving_swaps_total", "counter",
                "Snapshot publishes absorbed by this ledger", swaps,
            ),
        ]


#: wire api name (the paper's Table-II spelling) → (single method,
#: batch method) on the canonical :class:`BatchedServingAPI` surface.
#: The single names deliberately match the lookup methods of
#: :class:`~repro.taxonomy.store.Taxonomy` /
#: :class:`~repro.taxonomy.store.ReadOptimizedTaxonomy`, so the same
#: mapping routes at every layer (store shard, router, HTTP server,
#: client, workload generator) — keep it the single source of truth.
WIRE_API_METHODS = {
    "men2ent": ("men2ent", "men2ent_batch"),
    "getConcept": ("get_concepts", "get_concepts_batch"),
    "getEntity": ("get_entities", "get_entities_batch"),
}


class BatchedServingAPI:
    """The canonical serving surface shared by every service-shaped front.

    :class:`TaxonomyService`, the sharded store, the replica router and
    the HTTP client SDK all expose the same methods by mixing this in
    and implementing two hooks:

    - ``_single(api_name, argument) -> list[str]``
    - ``_batch(api_name, arguments) -> list[list[str]]`` (one pinned
      version for the whole batch)

    where ``api_name`` is one of the paper's wire names (``men2ent`` /
    ``getConcept`` / ``getEntity``).

    Naming: the store (:class:`~repro.taxonomy.store.Taxonomy`) always
    said ``get_concepts`` / ``get_entities`` — one key in, plural
    results out — while the PR-1 service said ``get_concept`` /
    ``get_entity`` for the same call and used the plural names for the
    batched variants.  The canonical surface resolves that:

    - singles: ``men2ent`` / ``get_concepts`` / ``get_entities``
      (one string argument each),
    - batches: ``men2ent_batch`` / ``get_concepts_batch`` /
      ``get_entities_batch`` (a sequence of strings each),
    - deprecated, kept for compatibility: ``get_concept`` /
      ``get_entity`` singles, and calling ``get_concepts`` /
      ``get_entities`` with a sequence (the PR-1 batch spelling) — both
      emit :class:`DeprecationWarning` and delegate.
    """

    # -- canonical singles -----------------------------------------------------

    def men2ent(self, mention: str) -> list[str]:
        """Disambiguated entity page_ids for one mention surface."""
        return self._single("men2ent", self._checked("men2ent", mention))

    def get_concepts(self, page_id: str) -> list[str]:
        """Direct hypernyms of one entity (the getConcept API).

        Passing a sequence instead of a string is the deprecated PR-1
        batch spelling and delegates to :meth:`get_concepts_batch`.
        """
        if not isinstance(page_id, str):
            self._warn_batch_spelling("get_concepts", "get_concepts_batch")
            return self.get_concepts_batch(page_id)
        return self._single("getConcept", self._checked("getConcept", page_id))

    def get_entities(self, concept: str) -> list[str]:
        """Entity hyponyms of one concept (the getEntity API).

        Passing a sequence instead of a string is the deprecated PR-1
        batch spelling and delegates to :meth:`get_entities_batch`.
        """
        if not isinstance(concept, str):
            self._warn_batch_spelling("get_entities", "get_entities_batch")
            return self.get_entities_batch(concept)
        return self._single("getEntity", self._checked("getEntity", concept))

    # -- canonical batches -----------------------------------------------------

    def men2ent_batch(self, mentions: Sequence[str]) -> list[list[str]]:
        """``men2ent`` for every mention, answered from one version."""
        return self._batch("men2ent", self._checked_batch("men2ent", mentions))

    def get_concepts_batch(self, page_ids: Sequence[str]) -> list[list[str]]:
        """``getConcept`` for every entity id, answered from one version."""
        return self._batch(
            "getConcept", self._checked_batch("getConcept", page_ids)
        )

    def get_entities_batch(self, concepts: Sequence[str]) -> list[list[str]]:
        """``getEntity`` for every concept, answered from one version."""
        return self._batch(
            "getEntity", self._checked_batch("getEntity", concepts)
        )

    # -- deprecated aliases ----------------------------------------------------

    def get_concept(self, page_id: str) -> list[str]:
        """Deprecated PR-1 spelling of :meth:`get_concepts` (single)."""
        self._warn_alias("get_concept", "get_concepts")
        return self.get_concepts(page_id)

    def get_entity(self, concept: str) -> list[str]:
        """Deprecated PR-1 spelling of :meth:`get_entities` (single)."""
        self._warn_alias("get_entity", "get_entities")
        return self.get_entities(concept)

    # -- validation + warning helpers -----------------------------------------

    @staticmethod
    def _checked(api_name: str, argument: str) -> str:
        if not isinstance(argument, str) or not argument:
            raise APIError(
                f"{api_name} requires a non-empty string argument, "
                f"got {argument!r}"
            )
        return argument

    @classmethod
    def _checked_batch(
        cls, api_name: str, arguments: Sequence[str]
    ) -> Sequence[str]:
        if isinstance(arguments, str):
            raise APIError(
                f"{api_name} batch expects a sequence of arguments, "
                "got a single string"
            )
        return [cls._checked(api_name, argument) for argument in arguments]

    @staticmethod
    def _warn_alias(old: str, new: str) -> None:
        warnings.warn(
            f"{old}() is deprecated; use {new}()",
            DeprecationWarning,
            stacklevel=3,
        )

    @staticmethod
    def _warn_batch_spelling(name: str, batch_name: str) -> None:
        warnings.warn(
            f"calling {name}() with a sequence is deprecated; "
            f"use {batch_name}()",
            DeprecationWarning,
            stacklevel=3,
        )

    # -- hooks -----------------------------------------------------------------

    def _single(self, api_name: str, argument: str) -> list[str]:
        raise NotImplementedError

    def _batch(
        self, api_name: str, arguments: Sequence[str]
    ) -> list[list[str]]:
        raise NotImplementedError


class TaxonomyService(BatchedServingAPI):
    """Facade over :class:`TaxonomyAPI`: versioned, batched, measured."""

    def __init__(
        self, taxonomy: Taxonomy, *, version: int = 1, hub=None
    ) -> None:
        self._lock = threading.Lock()
        self._snapshot = TaxonomySnapshot.publish(version, taxonomy)
        self.metrics = ServiceMetrics()
        #: Bounded ring of applied deltas + the versions they produced,
        #: so a late-joining replica can catch up by chain (compose the
        #: missed deltas) instead of pulling a full snapshot.
        self.delta_history = DeltaHistory()
        self._hub = hub if hub is not None else get_hub()
        self._hub.registry.register_collector("service", self.metrics)

    # -- snapshots -------------------------------------------------------------

    @property
    def snapshot(self) -> TaxonomySnapshot:
        """The currently published snapshot (a single atomic read)."""
        # lint: allow[lock-discipline] atomic reference read; swap publishes
        return self._snapshot

    @property
    def version_id(self) -> str:
        # lint: allow[lock-discipline] atomic reference read
        return self._snapshot.version_id

    @property
    def content_hash(self) -> str | None:
        """The published snapshot's canonical-bytes sha256."""
        # lint: allow[lock-discipline] atomic reference read
        return self._snapshot.content_hash

    def version_lineage(self) -> list[str]:
        """Version ids the delta publishes produced, oldest first.

        A full :meth:`swap` records nothing (it breaks the delta
        chain), so gaps in the lineage mark where a chain catch-up
        must fall back to a snapshot.
        """
        return self.delta_history.lineage_ids()

    def swap(
        self, taxonomy: Taxonomy, *, version: int | None = None
    ) -> TaxonomySnapshot:
        """Publish a rebuilt taxonomy; returns the new snapshot.

        The swap is a single reference assignment under a lock: callers
        holding the previous snapshot (e.g. mid-batch) keep a fully
        consistent view, new calls see only the new version.  *version*
        stamps the snapshot explicitly (must be newer than the current
        one) — how a replica healed from a snapshot rejoins the
        cluster's version lineage.
        """
        with self._lock:
            snapshot = TaxonomySnapshot.publish(
                bump_version(self._snapshot.version, version), taxonomy
            )
            previous = self._snapshot
            self._snapshot = snapshot
            self.metrics.swaps += 1
            self._hub.emit(
                "swap", component="service",
                from_version=previous.version_id,
                version=snapshot.version_id,
                content_hash=snapshot.content_hash,
            )
            return snapshot

    def publish_delta(
        self,
        delta,
        *,
        version: int | None = None,
        base_version: int | None = None,
    ) -> TaxonomySnapshot:
        """Publish a :class:`~repro.taxonomy.delta.TaxonomyDelta`.

        The refresh-cost-proportional-to-change version of :meth:`swap`:
        the delta is applied to a *copy* of the current taxonomy
        (:meth:`Taxonomy.apply_delta` validates it against the base
        first) and the read view is advanced touched-keys-only — but
        the publish guarantees are identical.  Version lineage
        continues (``version + 1``), the new snapshot lands in one
        atomic reference assignment, and a failed validation leaves the
        old version serving with its snapshot — taxonomy included —
        completely untouched, so readers pinned to it never observe a
        half-published state and a corrected delta can still be
        retried.

        The handshake is two-layered.  A mismatched ``base_version`` —
        or a stamped ``base_content_hash`` that differs from the
        published bytes — normally raises
        :class:`~repro.errors.DeltaConflictError`; but when the delta's
        ``new_content_hash`` equals the *currently published* hash the
        conflict is a **merge**: this front already holds the exact
        bytes the delta produces (another publisher won the race with
        the same nightly delta), so the publish is a no-op returning
        the current snapshot instead of a 409.
        """
        with self._lock:
            current = self._snapshot
            base_mismatch = (
                base_version is not None and base_version != current.version
            ) or (
                delta.base_content_hash is not None
                and current.content_hash is not None
                and delta.base_content_hash != current.content_hash
            )
            if base_mismatch:
                # checked under the publish lock so concurrent publishes
                # naming the same base can never both pass
                if (
                    delta.new_content_hash is not None
                    and delta.new_content_hash == current.content_hash
                ):
                    # merge: already at the target bytes
                    self._hub.emit(
                        "delta_merge", component="service",
                        version=current.version_id,
                        content_hash=current.content_hash,
                    )
                    return current
                base_label = (
                    f"v{base_version}" if base_version is not None
                    else "unpinned"
                )
                self._hub.emit(
                    "delta_conflict", component="service",
                    version=current.version_id,
                    content_hash=current.content_hash,
                    base=base_label,
                    base_content_hash=delta.base_content_hash,
                )
                raise DeltaConflictError(
                    f"delta base ({base_label}, "
                    f"{delta.base_content_hash or 'unhashed'}) does not "
                    f"match the published version {current.version_id}",
                    server_version=current.version_id,
                    server_content_hash=current.content_hash,
                )
            target = bump_version(current.version, version)
            taxonomy = current.taxonomy.copy().apply_delta(delta)
            content_hash = taxonomy.content_hash()
            if (
                delta.new_content_hash is not None
                and content_hash != delta.new_content_hash
            ):
                # the base matched but applying did not land on the
                # stamped bytes — refuse before publishing divergence
                raise TaxonomyError(
                    "delta application diverged: expected content hash "
                    f"{delta.new_content_hash}, got {content_hash}"
                )
            # Headline numbers come from the applied store itself — the
            # same source a full freeze() would use — so they are right
            # even for a hand-built delta whose header omits them.
            read_view = current.read_view.apply_delta(
                delta,
                stats=taxonomy.stats(),
                n_relations=len(taxonomy),
                name=taxonomy.name,
            )
            snapshot = TaxonomySnapshot(
                version=target,
                taxonomy=taxonomy,
                api=TaxonomyAPI(read_view),
                read_view=read_view,
                content_hash=content_hash,
            )
            self._snapshot = snapshot
            self.metrics.swaps += 1
            self.delta_history.record(
                current.version,
                target,
                delta,
                base_content_hash=current.content_hash,
                content_hash=content_hash,
            )
            self._hub.emit(
                "publish", component="service",
                from_version=current.version_id,
                version=snapshot.version_id,
                content_hash=content_hash,
            )
            return snapshot

    # -- internals -------------------------------------------------------------

    _API_METHODS = {
        "men2ent": "men2ent",
        "getConcept": "get_concept",
        "getEntity": "get_entity",
    }

    def _serve(
        self, snapshot: TaxonomySnapshot, api_name: str, argument: str
    ) -> list[str]:
        call = getattr(snapshot.api, self._API_METHODS[api_name])
        if argument == PROBE_KEY:
            # health-probe traffic: serve it (a probe exercises the real
            # lookup path) but keep it out of the latency ledgers
            return call(argument)
        started = elapsed()
        result = call(argument)
        seconds = elapsed() - started
        self.metrics.observe(api_name, seconds, bool(result))
        trace_id = current_trace_id()
        if trace_id is not None:
            self._hub.record_span(
                trace_id, "service", api_name, seconds,
                outcome="hit" if result else "miss",
                version=snapshot.version_id,
                content_hash=snapshot.content_hash,
            )
        return result

    def _single(self, api_name: str, argument: str) -> list[str]:
        # lint: allow[lock-discipline] atomic reference read of the snapshot
        return self._serve(self._snapshot, api_name, argument)

    def _batch(
        self, api_name: str, arguments: Sequence[str]
    ) -> list[list[str]]:
        # pin one version for the whole batch
        # lint: allow[lock-discipline] atomic reference read pins one version
        snapshot = self._snapshot
        return [self._serve(snapshot, api_name, arg) for arg in arguments]
