"""Versioned serving facade: snapshots, batching, latency accounting.

The paper's deployment serves tens of millions of calls (Table II)
while the taxonomy behind them is periodically rebuilt.
:class:`TaxonomyService` decouples the two concerns that
:class:`~repro.taxonomy.api.TaxonomyAPI` fuses:

- requests are served from an immutable :class:`TaxonomySnapshot` with
  a version id; a rebuild is published with :meth:`TaxonomyService.swap`,
  which replaces the snapshot atomically — in-flight batches keep
  reading the snapshot they pinned, so a swap never tears a batch;
- each snapshot serves from a
  :class:`~repro.taxonomy.store.ReadOptimizedTaxonomy` frozen at publish
  time: the sorted result lists of all three APIs are precomputed, so a
  served call is a dict hit plus a list copy — no per-call ``sorted()``
  and no answer drift if someone mutates the builder's taxonomy after
  publishing;
- the three public APIs gain batched variants (``men2ent_batch``,
  ``get_concepts``, ``get_entities``) that pin one snapshot for the
  whole batch and answer position-for-position;
- every call is measured: per-API call/hit counts and wall-clock land
  in a :class:`ServiceMetrics` ledger that survives snapshot swaps,
  which is what the workload generator and the API-service example
  report.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Sequence

from repro.errors import APIError
from repro.taxonomy.api import TaxonomyAPI
from repro.taxonomy.store import ReadOptimizedTaxonomy, Taxonomy, TaxonomyStats


@dataclass(frozen=True)
class TaxonomySnapshot:
    """One immutable published version of the taxonomy.

    ``read_view`` is the frozen :class:`ReadOptimizedTaxonomy` the
    snapshot's API answers from; ``taxonomy`` keeps the full store for
    closure queries and persistence.  The wrapped :class:`TaxonomyAPI`
    carries the snapshot's own usage ledger, so per-version serving
    statistics remain separable from the service's cumulative metrics.
    """

    version: int
    taxonomy: Taxonomy
    api: TaxonomyAPI
    read_view: ReadOptimizedTaxonomy

    @classmethod
    def publish(cls, version: int, taxonomy: Taxonomy) -> "TaxonomySnapshot":
        """Freeze *taxonomy* into a servable snapshot."""
        read_view = taxonomy.freeze()
        return cls(
            version=version,
            taxonomy=taxonomy,
            api=TaxonomyAPI(read_view),
            read_view=read_view,
        )

    @property
    def version_id(self) -> str:
        return f"v{self.version}"

    def stats(self) -> TaxonomyStats:
        return self.read_view.stats()


@dataclass
class APILatency:
    """Latency/hit accounting for one API across the service lifetime."""

    calls: int = 0
    hits: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def observe(self, seconds: float, hit: bool) -> None:
        self.calls += 1
        if hit:
            self.hits += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0


@dataclass
class ServiceMetrics:
    """Cumulative per-API accounting; survives snapshot swaps.

    Observation is lock-protected: the service serves concurrent
    callers across swaps, and unsynchronised ``+=`` on the counters
    would silently drop increments under that load.
    """

    per_api: dict[str, APILatency] = field(default_factory=dict)
    swaps: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def observe(self, api: str, seconds: float, hit: bool) -> None:
        with self._lock:
            self.per_api.setdefault(api, APILatency()).observe(seconds, hit)

    def latency(self, api: str) -> APILatency:
        return self.per_api.get(api, APILatency())

    @property
    def total_calls(self) -> int:
        return sum(entry.calls for entry in self.per_api.values())

    def as_dict(self) -> dict[str, dict[str, float | int]]:
        return {
            api: {
                "calls": entry.calls,
                "hits": entry.hits,
                "hit_rate": entry.hit_rate,
                "mean_seconds": entry.mean_seconds,
                "max_seconds": entry.max_seconds,
            }
            for api, entry in self.per_api.items()
        }


class TaxonomyService:
    """Facade over :class:`TaxonomyAPI`: versioned, batched, measured."""

    def __init__(self, taxonomy: Taxonomy, *, version: int = 1) -> None:
        self._lock = threading.Lock()
        self._snapshot = TaxonomySnapshot.publish(version, taxonomy)
        self.metrics = ServiceMetrics()

    # -- snapshots -------------------------------------------------------------

    @property
    def snapshot(self) -> TaxonomySnapshot:
        """The currently published snapshot (a single atomic read)."""
        return self._snapshot

    @property
    def version_id(self) -> str:
        return self._snapshot.version_id

    def swap(self, taxonomy: Taxonomy) -> TaxonomySnapshot:
        """Publish a rebuilt taxonomy; returns the new snapshot.

        The swap is a single reference assignment under a lock: callers
        holding the previous snapshot (e.g. mid-batch) keep a fully
        consistent view, new calls see only the new version.
        """
        with self._lock:
            snapshot = TaxonomySnapshot.publish(
                self._snapshot.version + 1, taxonomy
            )
            self._snapshot = snapshot
            self.metrics.swaps += 1
            return snapshot

    # -- single-call APIs ------------------------------------------------------

    def men2ent(self, mention: str) -> list[str]:
        return self._serve(self._snapshot, "men2ent", mention)

    def get_concept(self, page_id: str) -> list[str]:
        return self._serve(self._snapshot, "getConcept", page_id)

    def get_entity(self, concept: str) -> list[str]:
        return self._serve(self._snapshot, "getEntity", concept)

    # -- batched APIs ----------------------------------------------------------

    def men2ent_batch(self, mentions: Sequence[str]) -> list[list[str]]:
        """``men2ent`` for every mention, answered from one snapshot."""
        return self._serve_batch("men2ent", mentions)

    def get_concepts(self, page_ids: Sequence[str]) -> list[list[str]]:
        """``getConcept`` for every entity id, answered from one snapshot."""
        return self._serve_batch("getConcept", page_ids)

    def get_entities(self, concepts: Sequence[str]) -> list[list[str]]:
        """``getEntity`` for every concept, answered from one snapshot."""
        return self._serve_batch("getEntity", concepts)

    # -- internals -------------------------------------------------------------

    _API_METHODS = {
        "men2ent": "men2ent",
        "getConcept": "get_concept",
        "getEntity": "get_entity",
    }

    def _serve(
        self, snapshot: TaxonomySnapshot, api_name: str, argument: str
    ) -> list[str]:
        call = getattr(snapshot.api, self._API_METHODS[api_name])
        started = perf_counter()
        result = call(argument)
        self.metrics.observe(api_name, perf_counter() - started, bool(result))
        return result

    def _serve_batch(
        self, api_name: str, arguments: Sequence[str]
    ) -> list[list[str]]:
        if isinstance(arguments, str):
            raise APIError(
                f"{api_name} batch expects a sequence of arguments, "
                "got a single string"
            )
        snapshot = self._snapshot  # pin one version for the whole batch
        return [self._serve(snapshot, api_name, arg) for arg in arguments]
