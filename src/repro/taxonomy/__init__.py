"""Taxonomy data model, graph operations, indexed store and serving APIs.

This is the output side of the pipeline: verified isA relations land in a
:class:`~repro.taxonomy.store.Taxonomy`, which maintains the indexes the
paper's three public APIs need (Table II):

- ``men2ent``   mention → disambiguated entities,
- ``getConcept`` entity → hypernym list,
- ``getEntity``  concept → hyponym list.

:class:`~repro.taxonomy.api.TaxonomyAPI` wraps the store with usage
accounting so the Table II experiment can be regenerated, and
:class:`~repro.taxonomy.service.TaxonomyService` is the production
facade on top: immutable versioned snapshots with atomic
swap-on-rebuild, batched API variants and per-API latency accounting.
"""

from repro.taxonomy.model import (
    SOURCE_ABSTRACT,
    SOURCE_BRACKET,
    SOURCE_INFOBOX,
    SOURCE_TAG,
    Entity,
    IsARelation,
)
from repro.taxonomy.graph import TaxonomyGraph
from repro.taxonomy.store import (
    ReadOptimizedTaxonomy,
    Taxonomy,
    TaxonomyStats,
)
from repro.taxonomy.api import APIUsage, TaxonomyAPI, WorkloadGenerator
from repro.taxonomy.delta import TaxonomyDelta, load_delta, save_delta
from repro.taxonomy.service import (
    ServiceMetrics,
    TaxonomyService,
    TaxonomySnapshot,
)

__all__ = [
    "APIUsage",
    "TaxonomyDelta",
    "load_delta",
    "save_delta",
    "ServiceMetrics",
    "TaxonomyService",
    "TaxonomySnapshot",
    "Entity",
    "IsARelation",
    "SOURCE_ABSTRACT",
    "SOURCE_BRACKET",
    "SOURCE_INFOBOX",
    "SOURCE_TAG",
    "ReadOptimizedTaxonomy",
    "Taxonomy",
    "TaxonomyAPI",
    "TaxonomyGraph",
    "TaxonomyStats",
    "WorkloadGenerator",
]
