"""Concept-graph operations: reachability, cycle handling, depth.

The concept layer of a taxonomy (subconcept → concept edges) must stay a
DAG for hypernym closure queries to terminate.  Extraction can produce
cycles (教育机构 → 机构 → 教育机构 via noisy tags), so the graph exposes
cycle detection and a deterministic minimum-score cycle breaker.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.errors import TaxonomyError


class TaxonomyGraph:
    """Directed concept graph; edge u→v means *u isA v*."""

    def __init__(self) -> None:
        self._parents: dict[str, dict[str, float]] = defaultdict(dict)
        self._children: dict[str, set[str]] = defaultdict(set)
        self._nodes: set[str] = set()

    # -- construction -------------------------------------------------------

    def add_edge(self, child: str, parent: str, score: float = 1.0) -> None:
        if not child or not parent:
            raise TaxonomyError("graph edges need non-empty endpoints")
        if child == parent:
            raise TaxonomyError(f"self-loop rejected: {child!r}")
        self._parents[child][parent] = max(
            score, self._parents[child].get(parent, float("-inf"))
        )
        self._children[parent].add(child)
        self._nodes.add(child)
        self._nodes.add(parent)

    def add_edges(self, edges: Iterable[tuple[str, str]]) -> None:
        for child, parent in edges:
            self.add_edge(child, parent)

    def remove_edge(self, child: str, parent: str) -> None:
        if parent in self._parents.get(child, {}):
            del self._parents[child][parent]
            self._children[parent].discard(child)

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def parents(self, node: str) -> frozenset[str]:
        return frozenset(self._parents.get(node, ()))

    def children(self, node: str) -> frozenset[str]:
        return frozenset(self._children.get(node, ()))

    def has_edge(self, child: str, parent: str) -> bool:
        return parent in self._parents.get(child, {})

    def edge_count(self) -> int:
        return sum(len(ps) for ps in self._parents.values())

    def ancestors(self, node: str) -> frozenset[str]:
        """Transitive hypernyms of *node* (cycle-safe)."""
        seen: set[str] = set()
        frontier = list(self._parents.get(node, ()))
        while frontier:
            parent = frontier.pop()
            if parent in seen:
                continue
            seen.add(parent)
            frontier.extend(self._parents.get(parent, ()))
        seen.discard(node)
        return frozenset(seen)

    def descendants(self, node: str) -> frozenset[str]:
        """Transitive hyponyms of *node* (cycle-safe)."""
        seen: set[str] = set()
        frontier = list(self._children.get(node, ()))
        while frontier:
            child = frontier.pop()
            if child in seen:
                continue
            seen.add(child)
            frontier.extend(self._children.get(child, ()))
        seen.discard(node)
        return frozenset(seen)

    def depth(self, node: str) -> int:
        """Longest upward path length from *node* to any root."""
        ancestors = self.ancestors(node)
        if not ancestors:
            return 0
        memo: dict[str, int] = {}

        def walk(current: str, trail: frozenset[str]) -> int:
            if current in memo:
                return memo[current]
            parents = [p for p in self._parents.get(current, ()) if p not in trail]
            if not parents:
                return 0
            value = 1 + max(walk(p, trail | {current}) for p in parents)
            memo[current] = value
            return value

        return walk(node, frozenset())

    # -- cycles -------------------------------------------------------------------

    def find_cycle(self) -> list[str] | None:
        """Return one cycle as a node list, or None when the graph is a DAG."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[str, int] = {node: WHITE for node in self._nodes}
        stack_trail: list[str] = []

        def visit(node: str) -> list[str] | None:
            color[node] = GRAY
            stack_trail.append(node)
            for parent in self._parents.get(node, ()):
                if color.get(parent, WHITE) == GRAY:
                    idx = stack_trail.index(parent)
                    return stack_trail[idx:] + [parent]
                if color.get(parent, WHITE) == WHITE:
                    found = visit(parent)
                    if found:
                        return found
            stack_trail.pop()
            color[node] = BLACK
            return None

        for node in sorted(self._nodes):
            if color[node] == WHITE:
                found = visit(node)
                if found:
                    return found
        return None

    def break_cycles(self) -> list[tuple[str, str]]:
        """Remove minimum-score edges until acyclic; returns removed edges.

        Deterministic: within a cycle the lowest-score edge is cut, ties
        broken lexicographically — so repeated builds produce identical
        taxonomies.
        """
        removed: list[tuple[str, str]] = []
        while True:
            cycle = self.find_cycle()
            if cycle is None:
                return removed
            edges = list(zip(cycle, cycle[1:]))
            child, parent = min(
                edges,
                key=lambda e: (self._parents[e[0]].get(e[1], 0.0), e),
            )
            self.remove_edge(child, parent)
            removed.append((child, parent))

    def is_dag(self) -> bool:
        return self.find_cycle() is None
