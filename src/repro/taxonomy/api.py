"""Serving layer: the paper's three public APIs with usage accounting.

Table II of the paper reports per-API call counts after six months on
Aliyun (men2ent 43.9M, getConcept 13.8M, getEntity 25.8M).
:class:`TaxonomyAPI` serves the three lookups and counts what it serves.

Workload *generation* has moved to :mod:`repro.workloads` (declarative
scenarios, deterministic schedules, an open-loop runner).
:class:`WorkloadGenerator` remains as a deprecated shim over
:class:`~repro.workloads.sampling.TableIICallStream` so historical
seeded call streams stay reproducible.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.errors import APIError
from repro.taxonomy.store import ReadOptimizedTaxonomy, Taxonomy

# Call mix from Table II, normalised.
PAPER_API_CALLS = {
    "men2ent": 43_896_044,
    "getConcept": 13_815_076,
    "getEntity": 25_793_372,
}
_TOTAL_PAPER_CALLS = sum(PAPER_API_CALLS.values())
PAPER_API_MIX = {
    name: count / _TOTAL_PAPER_CALLS for name, count in PAPER_API_CALLS.items()
}


@dataclass
class APIUsage:
    """Per-API call, hit and unknown-argument counters.

    ``unknown`` counts requests the workload *intended* to miss —
    generated out-of-taxonomy arguments (including draws from an empty
    pool, which historically surfaced as the silent constant ``"空"``
    and were never counted anywhere).
    """

    calls: dict[str, int] = field(
        default_factory=lambda: {"men2ent": 0, "getConcept": 0, "getEntity": 0}
    )
    hits: dict[str, int] = field(
        default_factory=lambda: {"men2ent": 0, "getConcept": 0, "getEntity": 0}
    )
    unknown: dict[str, int] = field(
        default_factory=lambda: {"men2ent": 0, "getConcept": 0, "getEntity": 0}
    )

    def record(self, api: str, hit: bool) -> None:
        if api not in self.calls:
            known = ", ".join(sorted(self.calls))
            raise APIError(f"unknown API {api!r}; known APIs: {known}")
        self.calls[api] += 1
        if hit:
            self.hits[api] += 1

    def record_unknown(self, api: str) -> None:
        """Count one generated unknown (intended-miss) argument."""
        if api not in self.unknown:
            known = ", ".join(sorted(self.unknown))
            raise APIError(f"unknown API {api!r}; known APIs: {known}")
        self.unknown[api] += 1

    @property
    def total_calls(self) -> int:
        return sum(self.calls.values())

    @property
    def total_unknown(self) -> int:
        return sum(self.unknown.values())

    def hit_rate(self, api: str) -> float:
        calls = self.calls[api]
        return self.hits[api] / calls if calls else 0.0

    def mix(self) -> dict[str, float]:
        total = self.total_calls
        if total == 0:
            return {name: 0.0 for name in self.calls}
        return {name: count / total for name, count in self.calls.items()}


class TaxonomyAPI:
    """The three public APIs of CN-Probase (Table II).

    Works over any store exposing the three lookups — the mutable
    :class:`Taxonomy` or a frozen
    :class:`~repro.taxonomy.store.ReadOptimizedTaxonomy` (what the
    serving snapshots use).
    """

    def __init__(self, taxonomy: "Taxonomy | ReadOptimizedTaxonomy") -> None:
        self._taxonomy = taxonomy
        self.usage = APIUsage()

    def men2ent(self, mention: str) -> list[str]:
        """mention → disambiguated entity page_ids."""
        if not mention:
            raise APIError("men2ent requires a non-empty mention")
        result = self._taxonomy.men2ent(mention)
        self.usage.record("men2ent", bool(result))
        return result

    def get_concept(self, page_id: str) -> list[str]:
        """entity → hypernym list."""
        if not page_id:
            raise APIError("getConcept requires a non-empty entity id")
        result = self._taxonomy.get_concepts(page_id)
        self.usage.record("getConcept", bool(result))
        return result

    def get_entity(self, concept: str) -> list[str]:
        """concept → hyponym (entity) list."""
        if not concept:
            raise APIError("getEntity requires a non-empty concept")
        result = self._taxonomy.get_entities(concept)
        self.usage.record("getEntity", bool(result))
        return result

    def reset_usage(self) -> None:
        self.usage = APIUsage()


@dataclass(frozen=True)
class APICall:
    """One workload request: API name + argument.

    ``expected_miss`` marks generated out-of-taxonomy arguments (the
    workload intended this request to miss); it defaults to ``False``
    so historical two-field constructions keep working.
    """

    api: str
    argument: str
    expected_miss: bool = False


class WorkloadGenerator:
    """Deprecated: use :mod:`repro.workloads` instead.

    Thin shim over :class:`~repro.workloads.sampling.TableIICallStream`
    with argument pools drawn from the taxonomy
    (:meth:`~repro.workloads.sampling.ArgumentPools.from_taxonomy`).
    RNG consumption is identical to the historical generator, so the
    same seed produces the same call stream (asserted by the test
    suite) — with one deliberate fix: an empty argument pool now
    yields a seeded unknown marker counted in the usage ledger instead
    of the silent constant ``"空"``.

    New code wants :class:`~repro.workloads.spec.Scenario` +
    :func:`~repro.workloads.schedule.compile_schedule` +
    :func:`~repro.workloads.runner.run_schedule` (open-loop, measured),
    or :func:`~repro.workloads.runner.replay_calls` for a plain
    closed-loop replay.
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        seed: int = 0,
        mix: dict[str, float] | None = None,
        miss_rate: float = 0.05,
    ) -> None:
        warnings.warn(
            "WorkloadGenerator is deprecated; use repro.workloads "
            "(Scenario/compile_schedule/run_schedule, or "
            "TableIICallStream for a plain seeded stream) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.workloads.sampling import (
            ArgumentPools,
            TableIICallStream,
        )

        if not 0.0 <= miss_rate <= 1.0:
            raise APIError(f"miss_rate must be a probability, got {miss_rate}")
        mix = dict(mix) if mix is not None else dict(PAPER_API_MIX)
        if abs(sum(mix.values()) - 1.0) > 1e-6:
            raise APIError(f"API mix must sum to 1, got {mix}")
        self._stream = TableIICallStream(
            ArgumentPools.from_taxonomy(taxonomy),
            seed=seed,
            mix=mix,
            miss_rate=miss_rate,
        )

    def generate(self, n_calls: int) -> list[APICall]:
        if n_calls <= 0:
            raise APIError(f"n_calls must be positive, got {n_calls}")
        return [
            APICall(call.api, call.argument, call.expected_miss)
            for call in self._stream.generate(n_calls)
        ]

    def run(self, api: TaxonomyAPI, n_calls: int) -> APIUsage:
        """Generate and serve *n_calls* requests; returns the usage ledger.

        Intended misses (unknown-argument draws, including empty-pool
        draws) are counted in the ledger's ``unknown`` column.
        """
        for call in self.generate(n_calls):
            if call.api == "men2ent":
                api.men2ent(call.argument)
            elif call.api == "getConcept":
                api.get_concept(call.argument)
            else:
                api.get_entity(call.argument)
            if call.expected_miss:
                api.usage.record_unknown(call.api)
        return api.usage

    def run_service(self, service, n_calls: int, batch_size: int = 1):
        """Replay *n_calls* requests against a service-shaped front.

        *service* is anything exposing the canonical
        :class:`~repro.taxonomy.service.BatchedServingAPI` surface with a
        ``metrics`` ledger.  Delegates to
        :func:`repro.workloads.runner.replay_calls`; returns the
        service's cumulative metrics ledger.
        """
        if batch_size < 1:
            raise APIError(f"batch_size must be >= 1, got {batch_size}")
        from repro.workloads.runner import replay_calls

        return replay_calls(
            service, self.generate(n_calls), batch_size=batch_size
        )
