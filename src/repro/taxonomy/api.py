"""Serving layer: the paper's three public APIs with usage accounting.

Table II of the paper reports per-API call counts after six months on
Aliyun (men2ent 43.9M, getConcept 13.8M, getEntity 25.8M).  The
:class:`WorkloadGenerator` reproduces that call mix at configurable volume
against a built taxonomy, and :class:`TaxonomyAPI` counts what it serves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import APIError
from repro.taxonomy.store import ReadOptimizedTaxonomy, Taxonomy

# Call mix from Table II, normalised.
PAPER_API_CALLS = {
    "men2ent": 43_896_044,
    "getConcept": 13_815_076,
    "getEntity": 25_793_372,
}
_TOTAL_PAPER_CALLS = sum(PAPER_API_CALLS.values())
PAPER_API_MIX = {
    name: count / _TOTAL_PAPER_CALLS for name, count in PAPER_API_CALLS.items()
}


@dataclass
class APIUsage:
    """Per-API call and hit counters."""

    calls: dict[str, int] = field(
        default_factory=lambda: {"men2ent": 0, "getConcept": 0, "getEntity": 0}
    )
    hits: dict[str, int] = field(
        default_factory=lambda: {"men2ent": 0, "getConcept": 0, "getEntity": 0}
    )

    def record(self, api: str, hit: bool) -> None:
        if api not in self.calls:
            known = ", ".join(sorted(self.calls))
            raise APIError(f"unknown API {api!r}; known APIs: {known}")
        self.calls[api] += 1
        if hit:
            self.hits[api] += 1

    @property
    def total_calls(self) -> int:
        return sum(self.calls.values())

    def hit_rate(self, api: str) -> float:
        calls = self.calls[api]
        return self.hits[api] / calls if calls else 0.0

    def mix(self) -> dict[str, float]:
        total = self.total_calls
        if total == 0:
            return {name: 0.0 for name in self.calls}
        return {name: count / total for name, count in self.calls.items()}


class TaxonomyAPI:
    """The three public APIs of CN-Probase (Table II).

    Works over any store exposing the three lookups — the mutable
    :class:`Taxonomy` or a frozen
    :class:`~repro.taxonomy.store.ReadOptimizedTaxonomy` (what the
    serving snapshots use).
    """

    def __init__(self, taxonomy: "Taxonomy | ReadOptimizedTaxonomy") -> None:
        self._taxonomy = taxonomy
        self.usage = APIUsage()

    def men2ent(self, mention: str) -> list[str]:
        """mention → disambiguated entity page_ids."""
        if not mention:
            raise APIError("men2ent requires a non-empty mention")
        result = self._taxonomy.men2ent(mention)
        self.usage.record("men2ent", bool(result))
        return result

    def get_concept(self, page_id: str) -> list[str]:
        """entity → hypernym list."""
        if not page_id:
            raise APIError("getConcept requires a non-empty entity id")
        result = self._taxonomy.get_concepts(page_id)
        self.usage.record("getConcept", bool(result))
        return result

    def get_entity(self, concept: str) -> list[str]:
        """concept → hyponym (entity) list."""
        if not concept:
            raise APIError("getEntity requires a non-empty concept")
        result = self._taxonomy.get_entities(concept)
        self.usage.record("getEntity", bool(result))
        return result

    def reset_usage(self) -> None:
        self.usage = APIUsage()


@dataclass(frozen=True)
class APICall:
    """One workload request: API name + argument."""

    api: str
    argument: str


class WorkloadGenerator:
    """Generates API request streams following the paper's call mix.

    Arguments are drawn from the taxonomy itself (mentions, entity ids,
    concepts) plus a configurable miss rate of out-of-taxonomy arguments,
    because production traffic always contains unknown strings.
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        seed: int = 0,
        mix: dict[str, float] | None = None,
        miss_rate: float = 0.05,
    ) -> None:
        if not 0.0 <= miss_rate <= 1.0:
            raise APIError(f"miss_rate must be a probability, got {miss_rate}")
        self._taxonomy = taxonomy
        self._rng = random.Random(seed)
        self._mix = dict(mix) if mix is not None else dict(PAPER_API_MIX)
        if abs(sum(self._mix.values()) - 1.0) > 1e-6:
            raise APIError(f"API mix must sum to 1, got {self._mix}")
        self._miss_rate = miss_rate
        # One pass over one materialisation of relations() collects all
        # three argument pools (the taxonomy can hold millions of
        # relations; scanning it three times dominated init).
        entity_ids: set[str] = set()
        concepts: set[str] = set()
        for relation in taxonomy.relations():
            concepts.add(relation.hypernym)
            if relation.hyponym_kind == "entity":
                entity_ids.add(relation.hyponym)
        self._entities = sorted(entity_ids)
        self._mentions = sorted(
            {m for e in (taxonomy.entity(p) for p in self._entities)
             if e is not None for m in e.mentions}
        )
        self._concepts = sorted(concepts)

    def generate(self, n_calls: int) -> list[APICall]:
        if n_calls <= 0:
            raise APIError(f"n_calls must be positive, got {n_calls}")
        apis = list(self._mix)
        weights = [self._mix[a] for a in apis]
        calls: list[APICall] = []
        for _ in range(n_calls):
            api = self._rng.choices(apis, weights=weights)[0]
            calls.append(APICall(api=api, argument=self._argument_for(api)))
        return calls

    def _argument_for(self, api: str) -> str:
        if self._rng.random() < self._miss_rate:
            return "未知词" + str(self._rng.randint(0, 10_000))
        if api == "men2ent" and self._mentions:
            return self._rng.choice(self._mentions)
        if api == "getConcept" and self._entities:
            return self._rng.choice(self._entities)
        if api == "getEntity" and self._concepts:
            return self._rng.choice(self._concepts)
        return "空"

    def run(self, api: TaxonomyAPI, n_calls: int) -> APIUsage:
        """Generate and serve *n_calls* requests; returns the usage ledger."""
        for call in self.generate(n_calls):
            if call.api == "men2ent":
                api.men2ent(call.argument)
            elif call.api == "getConcept":
                api.get_concept(call.argument)
            else:
                api.get_entity(call.argument)
        return api.usage

    def run_service(self, service, n_calls: int, batch_size: int = 1):
        """Replay *n_calls* requests against a service-shaped front.

        *service* is anything exposing the canonical
        :class:`~repro.taxonomy.service.BatchedServingAPI` surface with a
        ``metrics`` ledger — :class:`~repro.taxonomy.service.TaxonomyService`,
        the sharded store, the replica router, or the HTTP
        :class:`~repro.serving.client.TaxonomyClient`.  With
        ``batch_size > 1`` requests are buffered per API and served
        through the batched variants, the way a real gateway amortises
        round trips.  Returns the service's cumulative metrics ledger.
        """
        if batch_size < 1:
            raise APIError(f"batch_size must be >= 1, got {batch_size}")
        from repro.taxonomy.service import WIRE_API_METHODS

        single = {
            api: getattr(service, names[0])
            for api, names in WIRE_API_METHODS.items()
        }
        batched = {
            api: getattr(service, names[1])
            for api, names in WIRE_API_METHODS.items()
        }
        buffers: dict[str, list[str]] = {name: [] for name in single}
        for call in self.generate(n_calls):
            if batch_size == 1:
                single[call.api](call.argument)
                continue
            buffer = buffers[call.api]
            buffer.append(call.argument)
            if len(buffer) >= batch_size:
                batched[call.api](buffer)
                buffer.clear()
        for name, buffer in buffers.items():
            if buffer:
                batched[name](buffer)
        return service.metrics
