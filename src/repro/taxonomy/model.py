"""Typed records for taxonomy content.

An :class:`IsARelation` keeps its extraction provenance (which of the four
sources produced it), because the paper evaluates per-source precision
(bracket 96.2%, tag 97.4%) and the verification heuristics weight sources
differently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TaxonomyError

# Extraction sources (Figure 2 of the paper).
SOURCE_BRACKET = "bracket"
SOURCE_ABSTRACT = "abstract"
SOURCE_INFOBOX = "infobox"
SOURCE_TAG = "tag"

KNOWN_SOURCES = frozenset(
    {SOURCE_BRACKET, SOURCE_ABSTRACT, SOURCE_INFOBOX, SOURCE_TAG, "baseline"}
)

# Provenances registered at runtime by third-party generation stages
# (see :meth:`repro.core.stages.StageRegistry.register_source`).
_EXTRA_SOURCES: set[str] = set()


def register_source_name(name: str) -> None:
    """Allow *name* as an :class:`IsARelation` provenance.

    Loading a saved taxonomy that contains custom-source relations
    requires the producing stage to be registered first in that process.
    """
    if not name:
        raise TaxonomyError("source name must be non-empty")
    _EXTRA_SOURCES.add(name)


def is_known_source(name: str) -> bool:
    return name in KNOWN_SOURCES or name in _EXTRA_SOURCES


def extra_source_names() -> frozenset[str]:
    """The runtime-registered provenances (beyond :data:`KNOWN_SOURCES`).

    The process-pool build backend ships these to worker processes: a
    ``spawn``-started worker has a fresh module state, so a custom
    stage constructing relations there needs its source name
    re-registered before validation sees it.
    """
    return frozenset(_EXTRA_SOURCES)

# Hyponym kinds: entity-concept vs subconcept-concept relations, reported
# separately by the paper (32.4M vs 527K).
HYPONYM_ENTITY = "entity"
HYPONYM_CONCEPT = "concept"


@dataclass(frozen=True)
class Entity:
    """A disambiguated entity: page identity plus its mention surfaces."""

    page_id: str
    name: str
    aliases: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.page_id:
            raise TaxonomyError("entity page_id must be non-empty")
        if not self.name:
            raise TaxonomyError(f"entity {self.page_id!r} has an empty name")

    @property
    def mentions(self) -> tuple[str, ...]:
        """All surfaces under which this entity can be mentioned."""
        return (self.name, *self.aliases)


@dataclass(frozen=True)
class IsARelation:
    """One hypernym-hyponym pair with provenance.

    ``hyponym`` is a page_id when ``hyponym_kind == "entity"`` and a
    concept string when ``hyponym_kind == "concept"``.  ``hypernym`` is
    always a concept string.
    """

    hyponym: str
    hypernym: str
    source: str
    hyponym_kind: str = HYPONYM_ENTITY
    score: float = 1.0

    def __post_init__(self) -> None:
        if not self.hyponym or not self.hypernym:
            raise TaxonomyError(
                f"isA relation needs both sides, got "
                f"({self.hyponym!r}, {self.hypernym!r})"
            )
        if self.hyponym_kind not in (HYPONYM_ENTITY, HYPONYM_CONCEPT):
            raise TaxonomyError(f"unknown hyponym kind {self.hyponym_kind!r}")
        if not is_known_source(self.source):
            raise TaxonomyError(f"unknown source {self.source!r}")

    @property
    def key(self) -> tuple[str, str]:
        """Identity of the pair regardless of provenance (for dedup)."""
        return (self.hyponym, self.hypernym)

    def with_source(self, source: str) -> "IsARelation":
        return IsARelation(
            hyponym=self.hyponym,
            hypernym=self.hypernym,
            source=source,
            hyponym_kind=self.hyponym_kind,
            score=self.score,
        )
