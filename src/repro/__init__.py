"""CN-Probase reproduction: generation + verification framework for
large-scale Chinese taxonomy construction (Chen et al., ICDE 2019).

The package is organised as one subpackage per subsystem:

- :mod:`repro.nlp` — Chinese NLP substrate (segmentation, PMI, NER, POS).
- :mod:`repro.encyclopedia` — CN-DBpedia-shaped encyclopedia substrate and
  the synthetic world generator that replaces the proprietary 2017 dump.
- :mod:`repro.neural` — numpy CopyNet-style seq2seq used by the abstract
  source of the generation module.
- :mod:`repro.taxonomy` — taxonomy data model, graph, indexed store and the
  three public serving APIs (men2ent / getConcept / getEntity).
- :mod:`repro.core` — the paper's contribution: the four generation
  algorithms, the three verification heuristics and the build pipeline.
- :mod:`repro.baselines` — Chinese WikiTaxonomy, Bigcilin and Probase-Tran.
- :mod:`repro.eval` — precision sampling, QA coverage and report rendering.

Quickstart::

    from repro import build_cn_probase
    from repro.encyclopedia import SyntheticWorld

    world = SyntheticWorld.generate(seed=7, n_entities=2000)
    result = build_cn_probase(world.dump())
    print(result.taxonomy.stats())
"""

__version__ = "1.0.0"

# Public names are resolved lazily (PEP 562) so that importing `repro`
# stays cheap and subpackages do not import each other at module load.
_LAZY_EXPORTS = {
    "BuildResult": "repro.core.pipeline",
    "CNProbaseBuilder": "repro.core.pipeline",
    "build_cn_probase": "repro.core.pipeline",
    "EncyclopediaDump": "repro.encyclopedia",
    "EncyclopediaPage": "repro.encyclopedia",
    "SyntheticWorld": "repro.encyclopedia",
    "Taxonomy": "repro.taxonomy",
    "TaxonomyAPI": "repro.taxonomy",
}


def __getattr__(name: str):
    module_path = _LAZY_EXPORTS.get(name)
    if module_path is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_path)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))

__all__ = [
    "BuildResult",
    "CNProbaseBuilder",
    "EncyclopediaDump",
    "EncyclopediaPage",
    "SyntheticWorld",
    "Taxonomy",
    "TaxonomyAPI",
    "build_cn_probase",
    "__version__",
]
