"""CN-Probase reproduction: generation + verification framework for
large-scale Chinese taxonomy construction (Chen et al., ICDE 2019).

The package is organised as one subpackage per subsystem:

- :mod:`repro.nlp` — Chinese NLP substrate (segmentation, PMI, NER, POS).
- :mod:`repro.encyclopedia` — CN-DBpedia-shaped encyclopedia substrate and
  the synthetic world generator that replaces the proprietary 2017 dump.
- :mod:`repro.neural` — numpy CopyNet-style seq2seq used by the abstract
  source of the generation module.
- :mod:`repro.taxonomy` — taxonomy data model, graph, indexed store, the
  three public serving APIs (men2ent / getConcept / getEntity) and the
  versioned :class:`~repro.taxonomy.service.TaxonomyService` facade
  (immutable snapshots, atomic swap-on-rebuild, batched variants,
  per-API latency accounting).
- :mod:`repro.core` — the paper's contribution as an open, composable
  pipeline.  :mod:`repro.core.stages` defines the stage architecture: a
  ``GenerationSource`` / ``Verifier`` protocol pair, a named, ordered
  ``StageRegistry`` (the built-in bracket/abstract/infobox/tag sources
  and syntax/ner/incompatible verifiers come from
  :func:`~repro.core.stages.default_registry`) and a ``BuildContext``
  carrying the shared NLP resources (lexicon, segmenter, tagger,
  recognizer, PMI, titles) so stages never re-derive them.
  :class:`~repro.core.pipeline.CNProbaseBuilder` is a thin driver that
  iterates the registry and records per-stage wall-clock and candidate
  counts into ``BuildResult.stage_trace``; third-party stages plug in
  by registering against the builder's registry, no core edits needed.
- :mod:`repro.serving` — the deployment shape of the paper's shared
  service: a :class:`~repro.serving.sharding.ShardedSnapshotStore`
  (N key-hashed shards of one read-optimized taxonomy, swapped
  all-or-nothing so no batch ever spans two versions), a
  replication-aware :class:`~repro.serving.router.ReplicatedRouter`
  (R replicas per shard, failover + health probes), a stdlib HTTP/JSON
  server with hot-swap admin endpoints, and the
  :class:`~repro.serving.client.TaxonomyClient` SDK — all behind the
  same canonical serving surface as the in-process facade
  (``cn-probase serve <taxonomy> --shards N --replicas R``).
- :mod:`repro.workloads` — the declarative scenario factory and load
  harness: frozen :class:`~repro.workloads.spec.Scenario` specs
  compiled to byte-deterministic call schedules and replayed open-loop
  against any serving front (in-process, sharded, replicated or a
  live HTTP cluster) with p50/p95/p99, schedule lateness and a
  mixed-version audit for publishes under load
  (``cn-probase workload list | compile | run``).
- :mod:`repro.baselines` — Chinese WikiTaxonomy, Bigcilin and Probase-Tran.
- :mod:`repro.eval` — precision sampling, QA coverage and report rendering.

Quickstart::

    from repro import build_cn_probase
    from repro.encyclopedia import SyntheticWorld

    world = SyntheticWorld.generate(seed=7, n_entities=2000)
    result = build_cn_probase(world.dump())
    print(result.taxonomy.stats())
"""

__version__ = "1.0.0"

# Public names are resolved lazily (PEP 562) so that importing `repro`
# stays cheap and subpackages do not import each other at module load.
_LAZY_EXPORTS = {
    "BuildResult": "repro.core.pipeline",
    "CNProbaseBuilder": "repro.core.pipeline",
    "IncrementalBuildResult": "repro.core.pipeline",
    "PipelineConfig": "repro.core.pipeline",
    "PreviousBuild": "repro.core.pipeline",
    "build_cn_probase": "repro.core.pipeline",
    "StageRegistry": "repro.core.stages",
    "StageTrace": "repro.core.stages",
    "default_registry": "repro.core.stages",
    "DumpDiff": "repro.encyclopedia",
    "EncyclopediaDump": "repro.encyclopedia",
    "EncyclopediaPage": "repro.encyclopedia",
    "diff_dumps": "repro.encyclopedia",
    "SyntheticWorld": "repro.encyclopedia",
    "Taxonomy": "repro.taxonomy",
    "TaxonomyAPI": "repro.taxonomy",
    "TaxonomyDelta": "repro.taxonomy",
    "TaxonomyService": "repro.taxonomy",
    "ReplicatedRouter": "repro.serving",
    "ShardedSnapshotStore": "repro.serving",
    "TaxonomyClient": "repro.serving",
    "build_cluster": "repro.serving",
    "start_server": "repro.serving",
    "Scenario": "repro.workloads",
    "TrafficSpec": "repro.workloads",
    "WorldSpec": "repro.workloads",
    "compile_schedule": "repro.workloads",
    "get_scenario": "repro.workloads",
    "prepare_scenario": "repro.workloads",
    "run_scenario": "repro.workloads",
}


def __getattr__(name: str):
    module_path = _LAZY_EXPORTS.get(name)
    if module_path is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_path)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))

__all__ = [
    "BuildResult",
    "CNProbaseBuilder",
    "DumpDiff",
    "EncyclopediaDump",
    "EncyclopediaPage",
    "IncrementalBuildResult",
    "PipelineConfig",
    "PreviousBuild",
    "ReplicatedRouter",
    "Scenario",
    "ShardedSnapshotStore",
    "StageRegistry",
    "StageTrace",
    "SyntheticWorld",
    "Taxonomy",
    "TaxonomyAPI",
    "TaxonomyClient",
    "TaxonomyDelta",
    "TaxonomyService",
    "TrafficSpec",
    "WorldSpec",
    "build_cluster",
    "build_cn_probase",
    "compile_schedule",
    "default_registry",
    "diff_dumps",
    "get_scenario",
    "prepare_scenario",
    "run_scenario",
    "start_server",
    "__version__",
]
