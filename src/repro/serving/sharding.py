"""Key-hashed sharding of a read-optimized taxonomy.

:class:`ShardedSnapshotStore` partitions one
:class:`~repro.taxonomy.store.ReadOptimizedTaxonomy` into ``n_shards``
shards and serves the exact
:class:`~repro.taxonomy.service.BatchedServingAPI` surface over them.
The partitioning invariant that makes this answer-preserving is that
each of the three serving indexes is keyed independently:

- ``men2ent`` is routed by the mention string,
- ``getConcept`` by the entity page_id,
- ``getEntity`` by the concept string,

and a key's complete (already sorted) result tuple lives wholly in the
shard :func:`shard_for` maps it to — so a sharded answer is the same
bytes the unsharded facade returns, at any shard count.

Versioning is all-or-nothing: a swap partitions the *entire* rebuilt
taxonomy into a fresh :class:`ShardSet` first and only then publishes it
with a single reference assignment.  Readers pin one ``ShardSet`` per
batch, so no request can ever observe shards from two versions — the
mixed-version ("torn") read a per-shard swap loop would allow.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from repro.obs.clock import elapsed
from typing import Sequence

from repro.errors import APIError, DeltaConflictError, TaxonomyError
from repro.obs import current_trace_id, get_hub
from repro.taxonomy.delta import DeltaHistory, bump_version
from repro.taxonomy.model import HYPONYM_ENTITY
from repro.taxonomy.service import (
    PROBE_KEY,
    WIRE_API_METHODS,
    BatchedServingAPI,
    ServiceMetrics,
)
from repro.taxonomy.store import ReadOptimizedTaxonomy, Taxonomy, TaxonomyStats


def shard_for(key: str, n_shards: int) -> int:
    """Stable shard index for *key* (crc32, identical across processes).

    Python's builtin ``hash()`` is salted per process, so a router in
    one process and a store in another would disagree on placement;
    crc32 over the UTF-8 bytes gives every member of the cluster the
    same answer forever.
    """
    if n_shards < 1:
        raise APIError(f"n_shards must be >= 1, got {n_shards}")
    return zlib.crc32(key.encode("utf-8")) % n_shards


#: api wire name → ReadOptimizedTaxonomy lookup method name (the
#: canonical single names coincide with the view's lookups by design)
_API_LOOKUPS = {
    api: single for api, (single, _) in WIRE_API_METHODS.items()
}


@dataclass(frozen=True)
class ShardSnapshot:
    """One shard of one published version: an immutable read view."""

    shard_id: int
    version: int
    read_view: ReadOptimizedTaxonomy

    @property
    def version_id(self) -> str:
        return f"v{self.version}"

    def lookup(self, api_name: str, argument: str) -> list[str]:
        return getattr(self.read_view, _API_LOOKUPS[api_name])(argument)


@dataclass(frozen=True)
class ShardSet:
    """All shards of one published version, swapped as a unit.

    ``content_hash`` is the canonical-bytes sha256 of the *cluster-level*
    taxonomy this set was partitioned from (or advanced to by a stamped
    delta) — the content-addressed version id probes and resyncs
    converge on.  ``None`` when the source could not provide one (a
    frozen view swap, or an unstamped hand-built delta).
    """

    version: int
    shards: tuple[ShardSnapshot, ...]
    content_hash: str | None = None

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def version_id(self) -> str:
        return f"v{self.version}"

    def shard_of(self, key: str) -> ShardSnapshot:
        return self.shards[shard_for(key, len(self.shards))]

    @classmethod
    def partition(
        cls,
        version: int,
        taxonomy: "Taxonomy | ReadOptimizedTaxonomy",
        n_shards: int,
        *,
        content_hash: str | None = None,
    ) -> "ShardSet":
        """Split *taxonomy* into *n_shards* key-hashed read views.

        Works from the frozen view (a mutable :class:`Taxonomy` is
        frozen first), so a published shard set is immune to later
        mutation of the builder's taxonomy, exactly like an unsharded
        snapshot.  *content_hash* stamps the set; when omitted it is
        computed from a mutable :class:`Taxonomy` source (a frozen view
        cannot reproduce the canonical bytes, so it stays ``None``).
        """
        if n_shards < 1:
            raise APIError(f"n_shards must be >= 1, got {n_shards}")
        if isinstance(taxonomy, Taxonomy):
            if content_hash is None:
                content_hash = taxonomy.content_hash()
            taxonomy = taxonomy.freeze()
        mentions, entity_hypernyms, concept_entities = taxonomy.as_indexes()
        split_mentions: list[dict] = [{} for _ in range(n_shards)]
        split_hypernyms: list[dict] = [{} for _ in range(n_shards)]
        split_entities: list[dict] = [{} for _ in range(n_shards)]
        for split, index in (
            (split_mentions, mentions),
            (split_hypernyms, entity_hypernyms),
            (split_entities, concept_entities),
        ):
            for key, members in index.items():
                split[shard_for(key, n_shards)][key] = members
        shards = []
        for shard_id in range(n_shards):
            hypernyms = split_hypernyms[shard_id]
            n_relations = sum(len(v) for v in hypernyms.values())
            shards.append(
                ShardSnapshot(
                    shard_id=shard_id,
                    version=version,
                    read_view=ReadOptimizedTaxonomy(
                        name=f"{taxonomy.name}/shard{shard_id}",
                        mention_index=split_mentions[shard_id],
                        entity_hypernyms=hypernyms,
                        concept_entities=split_entities[shard_id],
                        # Shard-local stats describe the serving indexes
                        # this shard holds (concept-layer relations are
                        # not routed, so they are not counted here).
                        stats=TaxonomyStats(
                            n_entities=len(hypernyms),
                            n_concepts=len(split_entities[shard_id]),
                            n_entity_concept=n_relations,
                            n_subconcept_concept=0,
                        ),
                        n_relations=n_relations,
                    ),
                )
            )
        return cls(
            version=version, shards=tuple(shards), content_hash=content_hash
        )


def _validate_delta_base(shard_set: ShardSet, delta, keep=None) -> None:
    """Refuse a delta that was not computed against the published version.

    The frozen shards carry no scores, so the check is structural
    (index membership): every record the delta removes or changes must
    be present, every record it adds must be absent.  Validation runs
    *before* any shard is rebuilt, preserving the all-or-nothing swap
    guarantee — a mismatched delta leaves the old set serving.
    Concept-layer relations have no serving index to check and pass
    through (the mutable :meth:`Taxonomy.apply_delta` validates them).

    *keep* (a key predicate) restricts the check to the slice of the
    keyspace this store owns: a replica serving one shard of a larger
    cluster receives per-shard-sliced deltas and must not refuse them
    just because a record's *other* keys (mentions hashing to other
    shards) are not served here.
    """

    def kept(key: str) -> bool:
        return keep is None or keep(key)

    def present(api_name: str, key: str, member: str) -> bool:
        return member in shard_set.shard_of(key).lookup(api_name, key)

    def refuse(what: str) -> None:
        raise TaxonomyError(
            f"delta does not match the published version: {what}"
        )

    for entity in delta.entities_removed:
        for mention in entity.mentions:
            if kept(mention) and not present(
                "men2ent", mention, entity.page_id
            ):
                refuse(f"entity {entity.page_id!r} to remove is not served")
    for old, _new in delta.entities_changed:
        for mention in old.mentions:
            if kept(mention) and not present("men2ent", mention, old.page_id):
                refuse(f"entity {old.page_id!r} to change is not served")
    for entity in delta.entities_added:
        for mention in entity.mentions:
            if kept(mention) and present(
                "men2ent", mention, entity.page_id
            ):
                refuse(f"entity {entity.page_id!r} to add already served")
    for relation in delta.relations_removed:
        if relation.hyponym_kind == HYPONYM_ENTITY and kept(
            relation.hyponym
        ) and not present(
            "getConcept", relation.hyponym, relation.hypernym
        ):
            refuse(f"relation {relation.key!r} to remove is not served")
    for old, _new in delta.relations_changed:
        if old.hyponym_kind == HYPONYM_ENTITY and kept(
            old.hyponym
        ) and not present("getConcept", old.hyponym, old.hypernym):
            refuse(f"relation {old.key!r} to change is not served")
    removed_keys = {r.key for r in delta.relations_removed}
    for relation in delta.relations_added:
        # a remove + re-add of one key in the same delta is legitimate
        # (a pair whose hyponym_kind flipped between the index layers)
        if (
            relation.hyponym_kind == HYPONYM_ENTITY
            and relation.key not in removed_keys
            and kept(relation.hyponym)
            and present("getConcept", relation.hyponym, relation.hypernym)
        ):
            refuse(f"relation {relation.key!r} to add already served")


class ShardedSnapshotStore(BatchedServingAPI):
    """N key-hashed shards behind the exact ``TaxonomyService`` surface.

    Every call routes by key hash into the currently published
    :class:`ShardSet`; batch calls pin one set up front and answer in
    argument order (the per-shard sub-batch grouping that decides which
    *replica* serves a group belongs to the
    :class:`~repro.serving.router.ReplicatedRouter`).

    :meth:`swap` is atomic and all-or-nothing: the full replacement
    :class:`ShardSet` is partitioned before the single reference
    assignment that publishes it, so a failed rebuild leaves the old
    version serving and no reader ever sees two versions in one batch.
    """

    def __init__(
        self,
        taxonomy: "Taxonomy | ReadOptimizedTaxonomy",
        *,
        n_shards: int = 4,
        version: int = 1,
        metrics: ServiceMetrics | None = None,
        hub=None,
        component: str = "store",
    ) -> None:
        self._lock = threading.Lock()
        self._shard_set = ShardSet.partition(version, taxonomy, n_shards)
        shared_metrics = metrics is not None
        self.metrics = metrics if shared_metrics else ServiceMetrics()
        #: Ring of applied deltas with their version lineage — what a
        #: lagging replica catches up from (chain instead of snapshot).
        self.delta_history = DeltaHistory()
        self._hub = hub if hub is not None else get_hub()
        if not shared_metrics:
            # a handed-in ledger is already registered by its owner
            self._hub.registry.register_collector(component, self.metrics)

    # -- versioning ------------------------------------------------------------

    @property
    def shard_set(self) -> ShardSet:
        """The currently published shard set (a single atomic read)."""
        # lint: allow[lock-discipline] atomic reference read; swap publishes
        return self._shard_set

    @property
    def n_shards(self) -> int:
        # lint: allow[lock-discipline] atomic reference read
        return self._shard_set.n_shards

    @property
    def version_id(self) -> str:
        # lint: allow[lock-discipline] atomic reference read
        return self._shard_set.version_id

    @property
    def content_hash(self) -> str | None:
        """The published set's cluster-level canonical-bytes sha256."""
        # lint: allow[lock-discipline] atomic reference read
        return self._shard_set.content_hash

    def shard_versions(self) -> list[str]:
        """Per-shard version ids: the version each shard last changed at.

        All equal after a full :meth:`swap`; after a
        :meth:`publish_delta` only touched shards advance, so the list
        doubles as the per-shard publish lineage.
        """
        # lint: allow[lock-discipline] atomic reference read
        return [shard.version_id for shard in self._shard_set.shards]

    def stats(self) -> list[TaxonomyStats]:
        """Shard-local serving-index stats, in shard order."""
        # lint: allow[lock-discipline] atomic reference read
        return [s.read_view.stats() for s in self._shard_set.shards]

    def version_lineage(self) -> list[str]:
        """Version ids the delta publishes produced, oldest first.

        The replica lineage ``/version`` reports; see
        :meth:`~repro.taxonomy.delta.DeltaHistory.lineage_ids`.
        """
        return self.delta_history.lineage_ids()

    def swap(
        self,
        taxonomy: "Taxonomy | ReadOptimizedTaxonomy",
        *,
        version: int | None = None,
        content_hash: str | None = None,
    ) -> ShardSet:
        """Publish a rebuilt taxonomy across every shard atomically.

        The new set is fully partitioned *before* the lock-protected
        reference assignment: if partitioning raises, the store keeps
        serving the old version untouched (all-or-nothing), and readers
        that pinned the old set mid-batch finish on it.

        *version* stamps the published set explicitly (it must be newer
        than the current one) — how a snapshot-healed replica is
        brought back into lockstep with the cluster's version lineage
        instead of restarting its own count.
        """
        with self._lock:
            shard_set = ShardSet.partition(
                bump_version(self._shard_set.version, version),
                taxonomy,
                self._shard_set.n_shards,
                content_hash=content_hash,
            )
            previous = self._shard_set
            self._shard_set = shard_set
            self.metrics.swaps += 1
            self._hub.emit(
                "swap", component="store",
                from_version=previous.version_id,
                version=shard_set.version_id,
                content_hash=shard_set.content_hash,
            )
            return shard_set

    def publish_delta(
        self,
        delta,
        *,
        key_filter=None,
        version: int | None = None,
        base_version: int | None = None,
    ) -> ShardSet:
        """Publish a :class:`~repro.taxonomy.delta.TaxonomyDelta`,
        repartitioning only the shards whose keys it touches.

        Every serving key the delta can affect is hashed with the same
        :func:`shard_for` the read path uses; shards owning none of
        those keys are carried into the new :class:`ShardSet` as the
        *same objects* — identical :class:`ShardSnapshot` and read view,
        still stamped with the version they were last rebuilt at (the
        per-shard lineage ``shard_versions()`` reports).  An empty delta
        therefore touches nothing: every shard crosses the publish
        object-identical and no ``shard_versions()`` entry moves (only
        the set version advances, keeping the lineage handshake alive).
        Touched shards get a fresh read view advanced touched-keys-only
        through :meth:`ReadOptimizedTaxonomy.apply_delta` with this
        shard's hash predicate as the key filter, so each shard applies
        exactly its slice of the delta.

        *key_filter* further restricts both validation and application
        to the keys this store owns — a remote replica serving one
        shard's slice of a larger cluster passes the cluster-level
        shard predicate so a sliced delta applies cleanly.  *version*
        stamps the new set explicitly (replication lockstep, see
        :meth:`swap`).  *base_version* is the replication handshake,
        checked **under the publish lock** so two concurrent publishes
        naming the same base can never both pass: a mismatch raises
        :class:`~repro.errors.DeltaConflictError` (the HTTP layer's
        409) with the old set still serving.

        The swap guarantee is unchanged: the complete replacement set is
        assembled before one atomic reference assignment, readers pin
        one set per batch, and a delta that fails to apply leaves the
        old set serving.
        """
        with self._lock:
            current = self._shard_set
            base_mismatch = (
                base_version is not None and base_version != current.version
            ) or (
                delta.base_content_hash is not None
                and current.content_hash is not None
                and delta.base_content_hash != current.content_hash
            )
            if base_mismatch:
                if (
                    delta.new_content_hash is not None
                    and delta.new_content_hash == current.content_hash
                ):
                    # merge: this store already holds the exact bytes the
                    # delta produces (a second publisher shipped the same
                    # nightly delta) — converge instead of 409
                    self._hub.emit(
                        "delta_merge", component="store",
                        version=current.version_id,
                        content_hash=current.content_hash,
                    )
                    return current
                base_label = (
                    f"v{base_version}" if base_version is not None
                    else "unpinned"
                )
                self._hub.emit(
                    "delta_conflict", component="store",
                    version=current.version_id,
                    content_hash=current.content_hash,
                    base=base_label,
                    base_content_hash=delta.base_content_hash,
                )
                raise DeltaConflictError(
                    f"delta base ({base_label}, "
                    f"{delta.base_content_hash or 'unhashed'}) does not "
                    f"match the published version {current.version_id}",
                    server_version=current.version_id,
                    server_content_hash=current.content_hash,
                )
            target = bump_version(current.version, version)
            _validate_delta_base(current, delta, key_filter)
            n_shards = current.n_shards
            touched = {
                shard_for(key, n_shards)
                for key in delta.touched_serving_keys()
                if key_filter is None or key_filter(key)
            }
            shards: list[ShardSnapshot] = []
            for shard in current.shards:
                if shard.shard_id not in touched:
                    shards.append(shard)  # object identity preserved
                    continue
                shard_id = shard.shard_id
                read_view = shard.read_view.apply_delta(
                    delta,
                    key_filter=lambda key, sid=shard_id: (
                        shard_for(key, n_shards) == sid
                        and (key_filter is None or key_filter(key))
                    ),
                )
                shards.append(
                    ShardSnapshot(
                        shard_id=shard_id,
                        version=target,
                        read_view=read_view,
                    )
                )
            shard_set = ShardSet(
                version=target,
                shards=tuple(shards),
                # the cluster-level stamp the delta carries (slices keep
                # it); an unstamped delta leaves the new set unhashed
                content_hash=delta.new_content_hash,
            )
            self._shard_set = shard_set
            self.metrics.swaps += 1
            self.delta_history.record(
                current.version,
                target,
                delta,
                base_content_hash=current.content_hash,
                content_hash=delta.new_content_hash,
            )
            self._hub.emit(
                "publish", component="store",
                from_version=current.version_id,
                version=shard_set.version_id,
                content_hash=delta.new_content_hash,
                touched_shards=sorted(touched),
            )
            return shard_set

    # -- serving hooks ---------------------------------------------------------

    def _serve(
        self, shard_set: ShardSet, api_name: str, argument: str
    ) -> list[str]:
        shard = shard_set.shard_of(argument)
        if argument == PROBE_KEY:
            # probes exercise the lookup path but stay out of the ledgers
            return shard.lookup(api_name, argument)
        started = elapsed()
        result = shard.lookup(api_name, argument)
        seconds = elapsed() - started
        self.metrics.observe(api_name, seconds, bool(result))
        trace_id = current_trace_id()
        if trace_id is not None:
            self._hub.record_span(
                trace_id, "shard", api_name, seconds,
                outcome="hit" if result else "miss",
                shard=shard.shard_id,
                version=shard_set.version_id,
                content_hash=shard_set.content_hash,
            )
        return result

    def _single(self, api_name: str, argument: str) -> list[str]:
        # lint: allow[lock-discipline] atomic reference read of the published set
        return self._serve(self._shard_set, api_name, argument)

    def _batch(
        self, api_name: str, arguments: Sequence[str]
    ) -> list[list[str]]:
        # Pin one version for the whole batch; per-argument routing is
        # a hash into the pinned set, so answering in argument order is
        # already the fan-out/merge — the per-shard *grouping* (one
        # sub-request per shard on one replica) lives in the router,
        # where it changes which backend serves the group.
        # lint: allow[lock-discipline] atomic reference read pins one version
        shard_set = self._shard_set
        return [
            self._serve(shard_set, api_name, argument)
            for argument in arguments
        ]
