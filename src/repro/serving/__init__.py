"""repro.serving — the sharded HTTP serving cluster.

The paper's system runs as a shared Aliyun service answering the
Table-II workload (tens of millions of ``men2ent`` / ``getConcept`` /
``getEntity`` calls) while the taxonomy behind it is periodically
rebuilt.  This package turns the PR-1/2 in-process facade into that
deployment shape, stdlib-only:

Architecture (request path, top to bottom)::

    TaxonomyClient          urllib SDK: batching, retries, own metrics
        │  JSON over HTTP
    ClusterHTTPServer       ThreadingHTTPServer, one thread per request
        │
    ReplicatedRouter        key→shard routing + R replicas per shard,
        │                   retry-on-failure, health marks, probes
    ShardedSnapshotStore    N crc32-hashed shards of one frozen
        │                   ReadOptimizedTaxonomy, swapped as a unit
    ShardSnapshot × N       per-shard immutable read views

- **Sharding** (:mod:`repro.serving.sharding`): each serving index is
  keyed independently (mention / page_id / concept), so splitting every
  index by ``crc32(key) % N`` preserves per-key answers exactly —
  sharded responses are byte-identical to the unsharded facade at any
  shard count.  Batches pin one :class:`~repro.serving.sharding.ShardSet`,
  fan out one ordered group per shard and merge by position; a swap
  partitions the *whole* replacement set before one atomic reference
  assignment, so a failed rebuild keeps the old version serving and no
  batch ever spans two versions.  A
  :class:`~repro.taxonomy.delta.TaxonomyDelta` publishes incrementally
  through :meth:`~repro.serving.sharding.ShardedSnapshotStore.publish_delta`:
  only shards owning a touched key are rebuilt (touched-keys-only
  inside each), untouched shards cross the swap as the same objects,
  and ``shard_versions()`` becomes the per-shard publish lineage.
- **Routing** (:mod:`repro.serving.router`): reads spread round-robin
  over R replicas per shard (the healthy-subset scan and the rotation
  advance are one atomic step, so the survivors of a failure keep
  splitting load evenly); a replica that raises is marked unhealthy
  and the call retries on the next one (configurable attempts); an
  unhealthy replica rejoins only after a probe passes (auto-probed
  every ``probe_after`` skips, or forced via ``probe()``).
- **Replica backends** (:mod:`repro.serving.replica`): the
  :class:`~repro.serving.replica.ReplicaBackend` protocol the router
  routes over — in-process :class:`StoreShardReplica` views,
  :class:`~repro.serving.replica.RemoteReplica` driving another
  serving process through :class:`TaxonomyClient`, or
  :class:`~repro.serving.replica.LocalReplica` (an in-process replica
  with its own independent store — the fault-injection twin)
  (``router.attach_replica(shard_id, backend)`` adds one).
- **Delta-aware replication**:
  :meth:`~repro.serving.router.ReplicatedRouter.publish_delta` ships
  each shard's *slice* of a delta by value to every remote-capable
  replica instead of a full snapshot, stamped with the target version
  and guarded by a ``base_version`` handshake; a replica published at
  any other version refuses with 409 and is healed — by a composed
  catch-up chain when the store's
  :class:`~repro.taxonomy.delta.DeltaHistory` ring covers its lag
  (``cn-probase delta-squash`` is the offline spelling of the same
  compose), by one full-snapshot ``/admin/swap`` otherwise — so a
  lagging or freshly-restarted replica always rejoins.  Outcomes land
  in ``router.last_publish_report`` and the
  ``chain_catchups``/``snapshot_heals`` counters.
- **Content-addressed versions + probe-time auto-resync**: every
  publish from a full taxonomy stamps the canonical-bytes sha256
  (:meth:`~repro.taxonomy.store.Taxonomy.content_hash`); deltas carry
  ``base_content_hash``/``new_content_hash`` stamps that survive
  slicing, so replicas converge on the *cluster-level* hash and the
  handshake can tell a diverged replica from one that already holds
  the target bytes (two publishers shipping the same nightly delta
  **merge** instead of 409).  A replica the version-aware probe finds
  alive-but-stale pulls its own catch-up chain
  (:func:`~repro.serving.replica.resync_replica`, wire spelling
  ``GET /admin/delta-chain``) without waiting for the next publish —
  outcomes in ``router.last_resync_report`` and the
  ``probe_resyncs``/``resync_chains``/``resync_heals`` counters.
- **Server** (:mod:`repro.serving.server`): the JSON wire (below) plus
  ``/healthz``, ``/version``, ``/metrics`` (the
  :class:`~repro.taxonomy.service.ServiceMetrics` ledger with
  p50/p95/p99 tail latencies) and bearer-token-authenticated
  ``/admin/swap`` + ``/admin/shutdown``.
- **Client** (:mod:`repro.serving.client`): a
  :class:`~repro.serving.client.TaxonomyClient` exposing the canonical
  :class:`~repro.taxonomy.service.BatchedServingAPI` surface, so
  ``WorkloadGenerator.run_service`` drives a remote cluster unchanged.

Wire format (all JSON, UTF-8, ``ensure_ascii=False``):

- ``GET /v1/{men2ent|getConcept|getEntity}?q=<argument>`` →
  ``{"api": ..., "version": "v3", "argument": ..., "results": [...]}``
- ``POST /v1/{api}`` body ``{"arguments": ["a", "b", ...]}`` →
  ``{"api": ..., "version": "v3", "results": [[...], [...], ...]}``
  (position-for-position, one pinned version per shard group)
- ``GET /healthz`` → ``{"status": "ok", "version": ..., "shards": N}``;
  when routing is on and a shard has zero healthy replicas the status
  becomes ``degraded`` with ``unhealthy_shards`` listed, served as 503
  so load balancers rotate the instance out
- ``GET /version`` → version + shard/replica topology +
  ``lineage`` (the versions delta publishes produced, oldest first —
  how far back this replica can be caught up by chain) +
  ``content_hash`` (the published bytes' sha256, when stamped)
- ``GET /admin/delta-chain?from=<hash or vN>`` (admin auth) →
  ``{"version": ..., "content_hash": ..., "covered": true, "deltas":
  [...]}`` — the catch-up chain a recovering replica pulls;
  ``covered: false`` (still 200) means heal by snapshot
- ``GET /metrics`` → cumulative per-API calls/hits/mean/p50/p95/p99/max
  plus router attempt/failover/probe/catch-up/heal counters when
  routing is on
- ``POST /admin/swap`` body ``{"taxonomy": "<server-side path>"}``
  (optional ``"version": 7`` stamps the published version — the
  snapshot-heal path uses it for lockstep), header
  ``Authorization: Bearer <token>`` →
  ``{"swapped": true, "version": "v4"}``; 401 on bad token, 403 when
  the server runs without a token, 400 (old version still serving) on a
  failed load
- ``POST /admin/apply-delta`` body ``{"delta": "<server-side path>"}``
  or ``{"delta": {...inline to_wire() object...}}`` (same auth),
  optional ``"base_version": "v3"`` (handshake: refused with **409**
  ``{"conflict": true, "version": "v1", "content_hash": ...}`` when
  the served version differs — the replication layer reads it to pick
  chain catch-up vs snapshot heal, and a delta targeting bytes the
  replica already holds merges instead), ``"version": 4`` (stamp) and
  ``"slice":
  {"shard_id": s, "n_shards": n}`` (validate/apply only this cluster
  shard's keys) → ``{"applied": true, "version": "v4", "delta": {...
  record counts ...}, "shard_versions": [...]}``; the delta is
  validated against the currently served version and refused with 400
  (old version still serving) on a base mismatch or unreadable file
- ``POST /admin/shutdown`` (same auth) → ``{"shutting_down": true}``
- errors → ``{"error": "<message>"}``; 400 for caller mistakes
  (never retried by the client), 503 when no healthy replica can serve
  a shard (transient — the client's retry/backoff applies), plus
  401/403/404/500

``cn-probase serve <taxonomy> --shards N --replicas R --port P`` wires
the stack up from a taxonomy file; :func:`build_cluster` does the same
in-process.

Remaining follow-ups (refreshed after content-addressed versions and
probe-time auto-resync landed): process-per-shard workers behind the
same router protocol; auth beyond a single bearer token.
"""

from __future__ import annotations

from repro.errors import APIError
from repro.serving.client import TaxonomyClient
from repro.serving.replica import (
    LocalReplica,
    RemoteReplica,
    ReplicaBackend,
    resync_replica,
)
from repro.serving.router import ReplicatedRouter, StoreShardReplica
from repro.serving.server import (
    ClusterHTTPServer,
    start_server,
)
from repro.serving.sharding import (
    ShardSet,
    ShardSnapshot,
    ShardedSnapshotStore,
    shard_for,
)

__all__ = [
    "ClusterHTTPServer",
    "LocalReplica",
    "RemoteReplica",
    "ReplicaBackend",
    "ReplicatedRouter",
    "ShardSet",
    "ShardSnapshot",
    "ShardedSnapshotStore",
    "StoreShardReplica",
    "TaxonomyClient",
    "build_cluster",
    "resync_replica",
    "shard_for",
    "start_server",
]


def build_cluster(taxonomy, *, shards: int = 1, replicas: int = 1, hub=None):
    """The service front ``cn-probase serve`` puts behind HTTP.

    Always a :class:`ShardedSnapshotStore` (``shards=1`` degenerates to
    the unsharded layout with the same swap guarantees); with
    ``replicas > 1`` a :class:`ReplicatedRouter` spreads reads over R
    in-process replicas per shard and the router is returned instead
    (its ``swap`` delegates to the store, so admin hot-swaps behave
    identically either way).
    """
    if shards < 1:
        raise APIError(f"shards must be >= 1, got {shards}")
    if replicas < 1:
        raise APIError(f"replicas must be >= 1, got {replicas}")
    store = ShardedSnapshotStore(taxonomy, n_shards=shards, hub=hub)
    if replicas == 1:
        return store
    return ReplicatedRouter.from_store(store, replicas=replicas)
