"""`TaxonomyClient` — the urllib-based SDK for the serving cluster.

The client exposes the same canonical
:class:`~repro.taxonomy.service.BatchedServingAPI` surface as the
in-process service, so anything written against ``TaxonomyService`` —
including :meth:`~repro.taxonomy.api.WorkloadGenerator.run_service` —
drives a remote cluster unchanged.  Singles go over
``GET /v1/{api}?q=...``, batches over ``POST /v1/{api}``; transient
transport failures and 5xx responses are retried with capped, jittered
exponential backoff (seeded, so retry schedules are reproducible),
while 4xx responses surface immediately as :class:`APIError` (the
server already rejected the request; resending it cannot help).

The client keeps its own :class:`ServiceMetrics` ledger of end-to-end
(wire-inclusive) latencies, which is what
``WorkloadGenerator.run_service`` returns when driven with a client.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from random import Random
from typing import Sequence

from repro.errors import APIError, DeltaConflictError
from repro.taxonomy.service import (
    PROBE_KEY,
    WIRE_API_METHODS,
    BatchedServingAPI,
    ServiceMetrics,
)

#: wire api names, in the order the paper lists them (Table II)
WIRE_API_NAMES = tuple(WIRE_API_METHODS)


class TaxonomyClient(BatchedServingAPI):
    """Small SDK over the cluster's JSON wire format."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 10.0,
        retries: int = 2,
        backoff_seconds: float = 0.05,
        backoff_cap_seconds: float = 1.0,
        jitter_seed: int | None = None,
        admin_token: str | None = None,
    ) -> None:
        if retries < 0:
            raise APIError(f"retries must be >= 0, got {retries}")
        if backoff_cap_seconds < backoff_seconds:
            raise APIError(
                f"backoff_cap_seconds ({backoff_cap_seconds}) must be >= "
                f"backoff_seconds ({backoff_seconds})"
            )
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout
        self._retries = retries
        self._backoff_seconds = backoff_seconds
        self._backoff_cap_seconds = backoff_cap_seconds
        # Seeded jitter: retries back off exponentially (doubling per
        # attempt, capped) with a multiplicative [0.5, 1.0) spread so a
        # herd of clients retrying the same blip fans out instead of
        # stampeding in lockstep — and a fixed seed keeps any one
        # client's schedule reproducible run to run.
        self._rng = Random(jitter_seed)
        self._admin_token = admin_token
        self.metrics = ServiceMetrics()

    # -- transport -------------------------------------------------------------

    def _request(
        self,
        path: str,
        *,
        body: dict | None = None,
        admin: bool = False,
        idempotent: bool = True,
        degraded_ok: bool = False,
    ) -> dict:
        """One JSON round trip with bounded retries.

        Retries cover connection errors and 5xx (the replica/router
        layer may have failed over by the next attempt); 4xx raise
        immediately with the server's error message.  Non-idempotent
        calls (admin mutations like swap) are never resent: a timeout
        after the server already acted would otherwise repeat the
        action.  With ``degraded_ok`` a non-2xx JSON body that is a
        status report rather than an error (the 503 ``/healthz``
        answers when a shard has no healthy replicas) is returned
        instead of retried — health callers want to *read* that state,
        not throw on it.
        """
        url = f"{self._base_url}{path}"
        headers = {"Content-Type": "application/json; charset=utf-8"}
        if admin:
            if self._admin_token is None:
                raise APIError(
                    "admin call needs a client constructed with admin_token"
                )
            headers["Authorization"] = f"Bearer {self._admin_token}"
        data = (
            json.dumps(body, ensure_ascii=False).encode("utf-8")
            if body is not None
            else None
        )
        attempts = (self._retries + 1) if idempotent else 1
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                backoff = min(
                    self._backoff_cap_seconds,
                    self._backoff_seconds * (2 ** (attempt - 1)),
                )
                time.sleep(backoff * (0.5 + 0.5 * self._rng.random()))
            request = urllib.request.Request(
                url, data=data, headers=headers,
                method="POST" if data is not None else "GET",
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self._timeout
                ) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                payload = self._error_payload(exc)
                if degraded_ok and "error" not in payload:
                    return payload  # a status report, not a failure
                detail = payload.get("error", payload.get("_raw", exc))
                if exc.code == 409:  # version handshake refused the write
                    raise DeltaConflictError(
                        f"{path}: HTTP 409: {detail}",
                        server_version=payload.get("version"),
                        server_content_hash=payload.get("content_hash"),
                    ) from exc
                if exc.code < 500:  # the server meant it: don't retry
                    raise APIError(
                        f"{path}: HTTP {exc.code}: {detail}"
                    ) from exc
                last_error = APIError(f"{path}: HTTP {exc.code}: {detail}")
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                last_error = exc
        raise APIError(
            f"{path}: no response after {attempts} attempts: {last_error}"
        ) from last_error

    @staticmethod
    def _error_payload(exc: urllib.error.HTTPError) -> dict:
        """The JSON body of a non-2xx response, if it has one."""
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            if isinstance(payload, dict):
                return payload
            return {"_raw": str(payload)}
        except Exception:
            reason = exc.reason if isinstance(exc.reason, str) else str(exc)
            return {"_raw": reason}

    # -- serving hooks (BatchedServingAPI) -------------------------------------

    def _single(self, api_name: str, argument: str) -> list[str]:
        query = urllib.parse.urlencode({"q": argument})
        started = time.perf_counter()
        payload = self._request(f"/v1/{api_name}?{query}")
        results = payload.get("results")
        if not isinstance(results, list):
            raise APIError(f"{api_name}: malformed response {payload!r}")
        if argument != PROBE_KEY:  # probes stay out of the ledgers
            self.metrics.observe(
                api_name, time.perf_counter() - started, bool(results)
            )
        return results

    def _batch(
        self, api_name: str, arguments: Sequence[str]
    ) -> list[list[str]]:
        started = time.perf_counter()
        payload = self._request(
            f"/v1/{api_name}", body={"arguments": list(arguments)}
        )
        results = payload.get("results")
        if not isinstance(results, list) or len(results) != len(arguments):
            raise APIError(f"{api_name}: malformed batch response")
        elapsed = time.perf_counter() - started
        # One wire round trip served the whole batch; attribute the
        # cost evenly so per-call means stay comparable with singles.
        per_call = elapsed / len(results) if results else elapsed
        for argument, result in zip(arguments, results):
            if argument != PROBE_KEY:  # probes stay out of the ledgers
                self.metrics.observe(api_name, per_call, bool(result))
        return results

    # -- cluster info ----------------------------------------------------------

    def healthz(self) -> dict:
        """Cluster liveness — including the degraded state.

        A degraded cluster answers 503 with a health body
        (``{"status": "degraded", "unhealthy_shards": [...]}``); that
        payload is returned, not raised, so monitors can read it.
        """
        return self._request("/healthz", degraded_ok=True)

    def version(self) -> dict:
        return self._request("/version")

    def server_metrics(self) -> dict:
        """The server-side ledger (the client's own is ``.metrics``)."""
        return self._request("/metrics")

    # -- admin -----------------------------------------------------------------

    def swap(self, taxonomy_path: str, *, version: int | None = None) -> dict:
        """Hot-swap the server onto the taxonomy file at *taxonomy_path*.

        The path is resolved by the **server** process; the file must be
        readable there.  *version* stamps the published version
        explicitly — the snapshot-heal path of delta replication uses
        it to bring a lagging replica back into version lockstep.

        Never resent: a retry after a timeout could repeat a swap the
        server already performed.
        """
        body: dict = {"taxonomy": str(taxonomy_path)}
        if version is not None:
            body["version"] = int(version)
        return self._request(
            "/admin/swap", body=body, admin=True, idempotent=False
        )

    def apply_delta(self, delta_path: str) -> dict:
        """Publish the taxonomy-delta file at *delta_path* incrementally.

        The path is resolved by the **server** process, which validates
        the delta against the taxonomy it currently serves; a delta
        computed against a different base is refused (400) with the old
        version still serving.

        Never resent (one attempt): after a timeout the server may
        already have applied the delta, and resending it against the
        advanced base would fail spuriously.  Ship with
        :meth:`apply_delta_wire` and a ``base_version`` when you need
        that situation to surface as a clean
        :class:`~repro.errors.DeltaConflictError` instead.
        """
        return self._request(
            "/admin/apply-delta",
            body={"delta": str(delta_path)},
            admin=True,
            idempotent=False,
        )

    def apply_delta_wire(
        self,
        delta,
        *,
        base_version: str | None = None,
        version: int | None = None,
        slice_spec: dict | None = None,
    ) -> dict:
        """Ship a :class:`~repro.taxonomy.delta.TaxonomyDelta` by value.

        The delta-aware replication wire: the delta travels inline as
        its :meth:`~repro.taxonomy.delta.TaxonomyDelta.to_wire` object,
        so the replica needs no shared filesystem.  *base_version*
        ("v3") arms the handshake — a replica published at any other
        version refuses with HTTP 409, raised here as
        :class:`~repro.errors.DeltaConflictError` carrying the
        replica's current version.  *version* stamps the produced
        version (lockstep), *slice_spec* (``{"shard_id": s,
        "n_shards": n}``) tells the replica which slice of the cluster
        keyspace this delta was cut to, so it validates and applies
        only keys it owns.

        Never resent (one attempt), like every admin mutation.
        """
        body: dict = {"delta": delta.to_wire()}
        if base_version is not None:
            body["base_version"] = base_version
        if version is not None:
            body["version"] = int(version)
        if slice_spec is not None:
            body["slice"] = dict(slice_spec)
        return self._request(
            "/admin/apply-delta", body=body, admin=True, idempotent=False
        )

    def fetch_chain(self, from_ref: str) -> dict:
        """The catch-up chain from *from_ref* to the server's version.

        *from_ref* is what this side holds — a content hash (preferred:
        meaningful even after a restart reset the ordinal counter) or a
        version id ("v3").  The server answers with its current
        ``version`` / ``content_hash`` and, when its delta history
        covers the span, ``covered: true`` plus the ordered ``deltas``
        (each hop carrying its lineage endpoints and the inline
        :meth:`~repro.taxonomy.delta.TaxonomyDelta.to_wire` object).
        ``covered: false`` is a normal answer, not an error — the
        caller falls back to a snapshot heal.

        Idempotent (a pure read), so it retries like any query.
        """
        query = urllib.parse.urlencode({"from": from_ref})
        return self._request(f"/admin/delta-chain?{query}", admin=True)

    def shutdown_server(self) -> dict:
        return self._request(
            "/admin/shutdown", body={}, admin=True, idempotent=False
        )
