"""`TaxonomyClient` — the urllib-based SDK for the serving cluster.

The client exposes the same canonical
:class:`~repro.taxonomy.service.BatchedServingAPI` surface as the
in-process service, so anything written against ``TaxonomyService`` —
including :meth:`~repro.taxonomy.api.WorkloadGenerator.run_service` —
drives a remote cluster unchanged.  Singles go over
``GET /v1/{api}?q=...``, batches over ``POST /v1/{api}``; transient
transport failures and 5xx responses are retried with capped, jittered
exponential backoff (seeded, so retry schedules are reproducible),
while 4xx responses surface immediately as :class:`APIError` (the
server already rejected the request; resending it cannot help).

The client keeps its own :class:`ServiceMetrics` ledger of end-to-end
(wire-inclusive) latencies, which is what
``WorkloadGenerator.run_service`` returns when driven with a client,
plus a :class:`ClientWireStats` retry/backoff ledger registered with
the telemetry hub.  With ``trace_every=N`` the client mints an
``X-Trace-Id`` for every Nth call (or propagates the ambient trace
context) so a slow wire call can be correlated with the server /
router / shard spans that served it.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from random import Random
from typing import Sequence

from repro.errors import APIError, DeltaConflictError
from repro.obs import (
    TRACE_HEADER,
    TraceIdSource,
    current_trace_id,
    get_hub,
)
from repro.obs.metrics import MetricSnapshot, Sample
from repro.taxonomy.service import (
    PROBE_KEY,
    WIRE_API_METHODS,
    BatchedServingAPI,
    ServiceMetrics,
)

#: wire api names, in the order the paper lists them (Table II)
WIRE_API_NAMES = tuple(WIRE_API_METHODS)


class ClientWireStats:
    """The client's transport ledger: requests, retries, backoff.

    Lock-protected like every ledger the registry collects, and
    registered under component ``client`` so retry storms and backoff
    stalls show up next to the serving metrics they explain.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.retries = 0
        self.backoff_seconds = 0.0
        self.failures = 0
        self.conflicts = 0

    def observe_request(self) -> None:
        with self._lock:
            self.requests += 1

    def observe_retry(self, backoff_seconds: float) -> None:
        with self._lock:
            self.retries += 1
            self.backoff_seconds += backoff_seconds

    def observe_failure(self) -> None:
        with self._lock:
            self.failures += 1

    def observe_conflict(self) -> None:
        with self._lock:
            self.conflicts += 1

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "retries": self.retries,
                "backoff_seconds": self.backoff_seconds,
                "failures": self.failures,
                "conflicts": self.conflicts,
            }

    def metric_samples(self) -> list[MetricSnapshot]:
        with self._lock:
            counters = (
                ("client_requests_total",
                 "Wire round trips attempted", float(self.requests)),
                ("client_retries_total",
                 "Retried wire round trips", float(self.retries)),
                ("client_backoff_seconds_total",
                 "Cumulative retry backoff slept", self.backoff_seconds),
                ("client_request_failures_total",
                 "Requests exhausted without a response",
                 float(self.failures)),
                ("client_conflicts_total",
                 "409 version-handshake refusals", float(self.conflicts)),
            )
        return [
            MetricSnapshot(name, "counter", help, (Sample((), value),))
            for name, help, value in counters
        ]


class TaxonomyClient(BatchedServingAPI):
    """Small SDK over the cluster's JSON wire format."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 10.0,
        retries: int = 2,
        backoff_seconds: float = 0.05,
        backoff_cap_seconds: float = 1.0,
        jitter_seed: int | None = None,
        admin_token: str | None = None,
        trace_every: int = 0,
        hub=None,
    ) -> None:
        if retries < 0:
            raise APIError(f"retries must be >= 0, got {retries}")
        if trace_every < 0:
            raise APIError(f"trace_every must be >= 0, got {trace_every}")
        if backoff_cap_seconds < backoff_seconds:
            raise APIError(
                f"backoff_cap_seconds ({backoff_cap_seconds}) must be >= "
                f"backoff_seconds ({backoff_seconds})"
            )
        self._base_url = base_url.rstrip("/")
        self._timeout = timeout
        self._retries = retries
        self._backoff_seconds = backoff_seconds
        self._backoff_cap_seconds = backoff_cap_seconds
        # Seeded jitter: retries back off exponentially (doubling per
        # attempt, capped) with a multiplicative [0.5, 1.0) spread so a
        # herd of clients retrying the same blip fans out instead of
        # stampeding in lockstep — and a fixed seed keeps any one
        # client's schedule reproducible run to run.
        self._rng = Random(jitter_seed)
        self._admin_token = admin_token
        self.metrics = ServiceMetrics()
        self.wire_stats = ClientWireStats()
        self._hub = hub if hub is not None else get_hub()
        self._hub.registry.register_collector("client", self)
        #: Sample every Nth serving call into a trace (0 = off).  An
        #: ambient trace context always propagates regardless.
        self._trace_every = trace_every
        self._trace_source = TraceIdSource("c")
        self._sample_lock = threading.Lock()
        self._calls_seen = 0

    def metric_samples(self) -> list[MetricSnapshot]:
        """Registry collector hook: wire transport + serving ledgers."""
        return (
            self.wire_stats.metric_samples()
            + self.metrics.metric_samples()
        )

    def _trace_id_for(self, argument: str | None) -> str | None:
        """The trace id this call should carry, minting when sampled.

        An ambient trace context (the workload runner wrapping a timed
        action) always wins — the minting counter doesn't advance, so
        sampling cadence is driven by untraced calls only.  Probes are
        never traced.
        """
        if argument == PROBE_KEY:
            return None
        ambient = current_trace_id()
        if ambient is not None:
            return ambient
        if not self._trace_every:
            return None
        with self._sample_lock:
            self._calls_seen += 1
            sampled = (self._calls_seen - 1) % self._trace_every == 0
        return self._trace_source.mint() if sampled else None

    # -- transport -------------------------------------------------------------

    def _request(
        self,
        path: str,
        *,
        body: dict | None = None,
        admin: bool = False,
        idempotent: bool = True,
        degraded_ok: bool = False,
        trace_id: str | None = None,
    ) -> dict:
        """One JSON round trip with bounded retries.

        Retries cover connection errors and 5xx (the replica/router
        layer may have failed over by the next attempt); 4xx raise
        immediately with the server's error message.  Non-idempotent
        calls (admin mutations like swap) are never resent: a timeout
        after the server already acted would otherwise repeat the
        action.  With ``degraded_ok`` a non-2xx JSON body that is a
        status report rather than an error (the 503 ``/healthz``
        answers when a shard has no healthy replicas) is returned
        instead of retried — health callers want to *read* that state,
        not throw on it.
        """
        url = f"{self._base_url}{path}"
        headers = {"Content-Type": "application/json; charset=utf-8"}
        if trace_id is not None:
            headers[TRACE_HEADER] = trace_id
        if admin:
            if self._admin_token is None:
                raise APIError(
                    "admin call needs a client constructed with admin_token"
                )
            headers["Authorization"] = f"Bearer {self._admin_token}"
        data = (
            json.dumps(body, ensure_ascii=False).encode("utf-8")
            if body is not None
            else None
        )
        attempts = (self._retries + 1) if idempotent else 1
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                backoff = min(
                    self._backoff_cap_seconds,
                    self._backoff_seconds * (2 ** (attempt - 1)),
                )
                slept = backoff * (0.5 + 0.5 * self._rng.random())
                self.wire_stats.observe_retry(slept)
                time.sleep(slept)
            self.wire_stats.observe_request()
            request = urllib.request.Request(
                url, data=data, headers=headers,
                method="POST" if data is not None else "GET",
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self._timeout
                ) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                payload = self._error_payload(exc)
                if degraded_ok and "error" not in payload:
                    return payload  # a status report, not a failure
                detail = payload.get("error", payload.get("_raw", exc))
                if exc.code == 409:  # version handshake refused the write
                    self.wire_stats.observe_conflict()
                    raise DeltaConflictError(
                        f"{path}: HTTP 409: {detail}",
                        server_version=payload.get("version"),
                        server_content_hash=payload.get("content_hash"),
                    ) from exc
                if exc.code < 500:  # the server meant it: don't retry
                    raise APIError(
                        f"{path}: HTTP {exc.code}: {detail}"
                    ) from exc
                last_error = APIError(f"{path}: HTTP {exc.code}: {detail}")
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                last_error = exc
        self.wire_stats.observe_failure()
        raise APIError(
            f"{path}: no response after {attempts} attempts: {last_error}"
        ) from last_error

    @staticmethod
    def _error_payload(exc: urllib.error.HTTPError) -> dict:
        """The JSON body of a non-2xx response, if it has one."""
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            if isinstance(payload, dict):
                return payload
            return {"_raw": str(payload)}
        except Exception:
            reason = exc.reason if isinstance(exc.reason, str) else str(exc)
            return {"_raw": reason}

    # -- serving hooks (BatchedServingAPI) -------------------------------------

    def _single(self, api_name: str, argument: str) -> list[str]:
        query = urllib.parse.urlencode({"q": argument})
        trace_id = self._trace_id_for(argument)
        started = time.perf_counter()
        payload = self._request(f"/v1/{api_name}?{query}", trace_id=trace_id)
        results = payload.get("results")
        if not isinstance(results, list):
            raise APIError(f"{api_name}: malformed response {payload!r}")
        elapsed = time.perf_counter() - started
        if argument != PROBE_KEY:  # probes stay out of the ledgers
            self.metrics.observe(api_name, elapsed, bool(results))
        if trace_id is not None:
            self._hub.record_span(
                trace_id, "client", api_name, elapsed,
                outcome="hit" if results else "miss",
                version=payload.get("version"),
            )
        return results

    def _batch(
        self, api_name: str, arguments: Sequence[str]
    ) -> list[list[str]]:
        trace_id = self._trace_id_for(arguments[0] if arguments else None)
        started = time.perf_counter()
        payload = self._request(
            f"/v1/{api_name}", body={"arguments": list(arguments)},
            trace_id=trace_id,
        )
        results = payload.get("results")
        if not isinstance(results, list) or len(results) != len(arguments):
            raise APIError(f"{api_name}: malformed batch response")
        elapsed = time.perf_counter() - started
        # One wire round trip served the whole batch; attribute the
        # cost evenly so per-call means stay comparable with singles.
        per_call = elapsed / len(results) if results else elapsed
        for argument, result in zip(arguments, results):
            if argument != PROBE_KEY:  # probes stay out of the ledgers
                self.metrics.observe(api_name, per_call, bool(result))
        if trace_id is not None:
            self._hub.record_span(
                trace_id, "client", api_name, elapsed,
                outcome="batch", version=payload.get("version"),
            )
        return results

    # -- cluster info ----------------------------------------------------------

    def healthz(self) -> dict:
        """Cluster liveness — including the degraded state.

        A degraded cluster answers 503 with a health body
        (``{"status": "degraded", "unhealthy_shards": [...]}``); that
        payload is returned, not raised, so monitors can read it.
        """
        return self._request("/healthz", degraded_ok=True)

    def version(self) -> dict:
        return self._request("/version")

    def server_metrics(self) -> dict:
        """The server-side ledger (the client's own is ``.metrics``)."""
        return self._request("/metrics")

    def server_metrics_text(self) -> str:
        """The server's Prometheus-style text exposition."""
        url = f"{self._base_url}/metrics?format=text"
        request = urllib.request.Request(url, method="GET")
        try:
            with urllib.request.urlopen(
                request, timeout=self._timeout
            ) as response:
                return response.read().decode("utf-8")
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise APIError(f"/metrics?format=text: {exc}") from exc

    def fetch_traces(
        self, *, limit: int | None = None, trace_id: str | None = None
    ) -> dict:
        """Recent server-side spans (``GET /admin/traces``), oldest
        first; *limit* keeps the newest N, *trace_id* filters to one
        trace."""
        params = {}
        if limit is not None:
            params["limit"] = int(limit)
        if trace_id is not None:
            params["trace_id"] = trace_id
        query = f"?{urllib.parse.urlencode(params)}" if params else ""
        return self._request(f"/admin/traces{query}", admin=True)

    def fetch_events(
        self, *, since: int = 0, limit: int | None = None
    ) -> dict:
        """Structured events after sequence *since*
        (``GET /admin/events``) — the cursor surface ``obs tail``
        polls."""
        params: dict = {}
        if since:
            params["since"] = int(since)
        if limit is not None:
            params["limit"] = int(limit)
        query = f"?{urllib.parse.urlencode(params)}" if params else ""
        return self._request(f"/admin/events{query}", admin=True)

    # -- admin -----------------------------------------------------------------

    def swap(self, taxonomy_path: str, *, version: int | None = None) -> dict:
        """Hot-swap the server onto the taxonomy file at *taxonomy_path*.

        The path is resolved by the **server** process; the file must be
        readable there.  *version* stamps the published version
        explicitly — the snapshot-heal path of delta replication uses
        it to bring a lagging replica back into version lockstep.

        Never resent: a retry after a timeout could repeat a swap the
        server already performed.
        """
        body: dict = {"taxonomy": str(taxonomy_path)}
        if version is not None:
            body["version"] = int(version)
        return self._request(
            "/admin/swap", body=body, admin=True, idempotent=False
        )

    def apply_delta(self, delta_path: str) -> dict:
        """Publish the taxonomy-delta file at *delta_path* incrementally.

        The path is resolved by the **server** process, which validates
        the delta against the taxonomy it currently serves; a delta
        computed against a different base is refused (400) with the old
        version still serving.

        Never resent (one attempt): after a timeout the server may
        already have applied the delta, and resending it against the
        advanced base would fail spuriously.  Ship with
        :meth:`apply_delta_wire` and a ``base_version`` when you need
        that situation to surface as a clean
        :class:`~repro.errors.DeltaConflictError` instead.
        """
        return self._request(
            "/admin/apply-delta",
            body={"delta": str(delta_path)},
            admin=True,
            idempotent=False,
        )

    def apply_delta_wire(
        self,
        delta,
        *,
        base_version: str | None = None,
        version: int | None = None,
        slice_spec: dict | None = None,
    ) -> dict:
        """Ship a :class:`~repro.taxonomy.delta.TaxonomyDelta` by value.

        The delta-aware replication wire: the delta travels inline as
        its :meth:`~repro.taxonomy.delta.TaxonomyDelta.to_wire` object,
        so the replica needs no shared filesystem.  *base_version*
        ("v3") arms the handshake — a replica published at any other
        version refuses with HTTP 409, raised here as
        :class:`~repro.errors.DeltaConflictError` carrying the
        replica's current version.  *version* stamps the produced
        version (lockstep), *slice_spec* (``{"shard_id": s,
        "n_shards": n}``) tells the replica which slice of the cluster
        keyspace this delta was cut to, so it validates and applies
        only keys it owns.

        Never resent (one attempt), like every admin mutation.
        """
        body: dict = {"delta": delta.to_wire()}
        if base_version is not None:
            body["base_version"] = base_version
        if version is not None:
            body["version"] = int(version)
        if slice_spec is not None:
            body["slice"] = dict(slice_spec)
        return self._request(
            "/admin/apply-delta", body=body, admin=True, idempotent=False
        )

    def fetch_chain(self, from_ref: str) -> dict:
        """The catch-up chain from *from_ref* to the server's version.

        *from_ref* is what this side holds — a content hash (preferred:
        meaningful even after a restart reset the ordinal counter) or a
        version id ("v3").  The server answers with its current
        ``version`` / ``content_hash`` and, when its delta history
        covers the span, ``covered: true`` plus the ordered ``deltas``
        (each hop carrying its lineage endpoints and the inline
        :meth:`~repro.taxonomy.delta.TaxonomyDelta.to_wire` object).
        ``covered: false`` is a normal answer, not an error — the
        caller falls back to a snapshot heal.

        Idempotent (a pure read), so it retries like any query.
        """
        query = urllib.parse.urlencode({"from": from_ref})
        return self._request(f"/admin/delta-chain?{query}", admin=True)

    def shutdown_server(self) -> dict:
        return self._request(
            "/admin/shutdown", body={}, admin=True, idempotent=False
        )
