"""stdlib HTTP server for the taxonomy serving cluster.

A thin JSON wire over any service-shaped front (the in-process
:class:`~repro.taxonomy.service.TaxonomyService`, a
:class:`~repro.serving.sharding.ShardedSnapshotStore`, or a
:class:`~repro.serving.router.ReplicatedRouter`).  One thread per
request (:class:`ThreadingHTTPServer`), which the snapshot/shard-set
pinning underneath is already built to serve safely.

Endpoints (see the package docstring for the full wire format):

- ``GET /v1/{men2ent,getConcept,getEntity}?q=<arg>`` — single query
- ``POST /v1/{api}`` with ``{"arguments": [...]}`` — batched query
- ``GET /healthz`` / ``GET /version`` (incl. the delta-publish
  ``lineage`` and the ``content_hash`` of the published bytes) /
  ``GET /metrics`` (JSON; ``?format=text`` serves the Prometheus-style
  exposition of the unified registry)
- ``GET /admin/traces?limit=N`` — recent request spans from the
  telemetry hub's bounded ring (requests carrying an ``X-Trace-Id``
  header are traced through server → router → shard)
- ``GET /admin/events?since=N`` — structured serving-layer events
  (publishes, merges, conflicts, resyncs, heals, health transitions)
  after sequence number N
- ``GET /admin/delta-chain?from=<hash or vN>`` — the catch-up chain
  from the caller's state to the served version (probe-time
  auto-resync pulls this); ``covered: false`` when the delta history
  does not span it
- ``POST /admin/swap`` with ``{"taxonomy": "<path>"}`` — load the
  taxonomy file server-side and hot-swap it atomically; an optional
  ``"version"`` stamps the published version (replication lockstep)
- ``POST /admin/apply-delta`` with ``{"delta": "<path>"}`` (file) or
  ``{"delta": {...}}`` (inline
  :meth:`~repro.taxonomy.delta.TaxonomyDelta.to_wire` object) —
  publish a delta incrementally (only touched shards repartition);
  optional ``base_version`` arms the 409-conflict handshake,
  ``version`` stamps the result, ``slice`` restricts to one cluster
  shard's keys
- ``POST /admin/shutdown`` — stop serving after the response is sent

Admin endpoints require ``Authorization: Bearer <token>`` matching the
token the server was started with; with no token configured they are
disabled (403).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    APIError,
    DeltaConflictError,
    ReproError,
    ServiceUnavailableError,
)
from repro.obs import TRACE_HEADER, get_hub, trace_context
from repro.taxonomy.service import WIRE_API_METHODS
from repro.taxonomy.store import Taxonomy

#: Ops/admin endpoints whose latency must stay out of the serving
#: quantiles — a metrics scrape or a probe-time admin read is plumbing,
#: not workload, exactly like ``PROBE_KEY`` traffic.
OPS_PATHS = ("/metrics", "/healthz", "/version", "/admin/")


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(payload, ensure_ascii=False).encode("utf-8")


class TaxonomyRequestHandler(BaseHTTPRequestHandler):
    """Dispatch one request against ``self.server.service``."""

    server_version = "cn-probase/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logs stay out of test/benchmark output

    def _respond(self, status: int, payload: dict) -> None:
        body = _json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._respond(status, {"error": message})

    def _respond_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _drain_body(self) -> bytes:
        """Read the request body off the socket unconditionally.

        With HTTP/1.1 keep-alive an unread body would be parsed as the
        next request line, so every POST drains it up front — including
        the paths (bad auth, unknown endpoint) that never look at it.
        """
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    @staticmethod
    def _parse_json_body(raw: bytes) -> dict:
        if not raw:
            raise APIError("request body must be a JSON object")
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise APIError(f"invalid JSON body: {exc}") from exc
        if not isinstance(body, dict):
            raise APIError("request body must be a JSON object")
        return body

    def _authorized(self) -> bool:
        token = self.server.admin_token
        if token is None:
            self._error(403, "admin API disabled: server started "
                             "without --admin-token")
            return False
        supplied = self.headers.get("Authorization", "")
        if supplied != f"Bearer {token}":
            self._error(401, "missing or invalid admin bearer token")
            return False
        return True

    # -- HTTP verbs ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch(self._route_get)

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch(self._route_post)

    def _dispatch(self, route) -> None:
        """Route one request with tracing + request accounting.

        An ``X-Trace-Id`` header binds the trace context around the
        whole dispatch, so every span the service front records during
        this request correlates with the server span recorded here.
        """
        url = urlsplit(self.path)
        trace_id = self.headers.get(TRACE_HEADER) or None
        started = perf_counter()
        outcome = "ok"
        try:
            if trace_id is not None:
                with trace_context(trace_id):
                    route(url)
            else:
                route(url)
        except ServiceUnavailableError as exc:  # transient: clients retry
            self._error(503, str(exc))
            outcome = "unavailable"
        except APIError as exc:
            self._error(400, str(exc))
            outcome = "error"
        except Exception as exc:  # pragma: no cover - defensive 500
            self._error(500, f"internal error: {exc}")
            outcome = "error"
        self.server.observe_request(
            url.path, perf_counter() - started, outcome, trace_id
        )

    def _route_get(self, url) -> None:
        if url.path == "/healthz":
            payload = self.server.health_payload()
            status = 200 if payload["status"] == "ok" else 503
            self._respond(status, payload)
        elif url.path == "/version":
            self._respond(200, self.server.version_payload())
        elif url.path == "/metrics":
            formats = parse_qs(url.query).get("format")
            if formats and formats[0] == "text":
                self._respond_text(
                    200, self.server.hub.registry.render_text()
                )
            else:
                self._respond(200, self.server.metrics_payload())
        elif url.path == "/admin/delta-chain":
            if self._authorized():
                self._admin_delta_chain(url)
        elif url.path == "/admin/traces":
            if self._authorized():
                self._admin_traces(url)
        elif url.path == "/admin/events":
            if self._authorized():
                self._admin_events(url)
        elif url.path.startswith("/v1/"):
            self._query_single(url)
        else:
            self._error(404, f"no such endpoint: {url.path}")

    def _route_post(self, url) -> None:
        raw_body = self._drain_body()
        if url.path == "/admin/swap":
            if self._authorized():
                self._admin_swap(raw_body)
        elif url.path == "/admin/apply-delta":
            if self._authorized():
                self._admin_apply_delta(raw_body)
        elif url.path == "/admin/shutdown":
            if self._authorized():
                self._respond(200, {"shutting_down": True})
                self.server.shutdown_soon()
        elif url.path.startswith("/v1/"):
            self._query_batch(url, raw_body)
        else:
            self._error(404, f"no such endpoint: {url.path}")

    # -- queries ---------------------------------------------------------------

    def _wire_api(self, url) -> tuple[str, tuple[str, str]]:
        api_name = url.path[len("/v1/"):]
        methods = WIRE_API_METHODS.get(api_name)
        if methods is None:
            known = ", ".join(sorted(WIRE_API_METHODS))
            raise APIError(f"unknown API {api_name!r}; known APIs: {known}")
        return api_name, methods

    def _query_single(self, url) -> None:
        api_name, (single, _) = self._wire_api(url)
        arguments = parse_qs(url.query).get("q")
        if not arguments:
            raise APIError(f"{api_name} needs a ?q=<argument> query")
        results = getattr(self.server.service, single)(arguments[0])
        self._respond(200, {
            "api": api_name,
            "version": self.server.service_version(),
            "argument": arguments[0],
            "results": results,
        })

    def _query_batch(self, url, raw_body: bytes) -> None:
        api_name, (_, batch) = self._wire_api(url)
        body = self._parse_json_body(raw_body)
        arguments = body.get("arguments")
        if not isinstance(arguments, list):
            raise APIError(
                f"{api_name} batch body must be "
                '{"arguments": ["...", ...]}'
            )
        results = getattr(self.server.service, batch)(arguments)
        self._respond(200, {
            "api": api_name,
            "version": self.server.service_version(),
            "results": results,
        })

    # -- admin -----------------------------------------------------------------

    @staticmethod
    def _target_version(body: dict) -> int | None:
        """The explicit publish version a body may carry (int or "vN").

        Strict: booleans, floats and unparseable strings are garbage
        (a silently-coerced stamp would desync the sender's lockstep
        expectation), mirroring ``check_format_version``.
        """
        from repro.taxonomy.delta import parse_version_id

        version = body.get("version")
        if version is None:
            return None
        if isinstance(version, str):
            parsed = parse_version_id(version)
            if parsed is None:
                raise APIError(f"malformed publish version {version!r}")
            return parsed
        if isinstance(version, bool) or not isinstance(version, int):
            raise APIError(f"malformed publish version {version!r}")
        return version

    @staticmethod
    def _base_version(body: dict) -> int | None:
        """The handshake base a body may carry, as an int.

        Only parsed here — the *comparison* happens inside the service
        front's ``publish_delta`` under its publish lock, so two
        concurrent publishes naming the same base can never both pass.
        """
        from repro.taxonomy.delta import parse_version_id

        base_version = body.get("base_version")
        if base_version is None:
            return None
        parsed = parse_version_id(base_version)
        if parsed is None:
            raise APIError(f"malformed base_version {base_version!r}")
        return parsed

    def _admin_delta_chain(self, url) -> None:
        """Answer a recovering replica's catch-up query (a pure read).

        ``?from=`` is the caller's state: a content hash (preferred —
        meaningful even after a restart reset its ordinal counter) or a
        version id ("v3").  The response always reports the served
        ``version`` / ``content_hash``; when the delta history covers
        the span it adds ``covered: true`` and the ordered ``deltas``
        (lineage endpoints + the inline ``to_wire`` object per hop).
        An uncovered span is a normal 200 with ``covered: false`` —
        the caller's signal to heal by snapshot instead.
        """
        from repro.taxonomy.delta import parse_version_id

        refs = parse_qs(url.query).get("from")
        if not refs or not refs[0]:
            raise APIError(
                "delta-chain needs a ?from=<content hash or version id> "
                "query"
            )
        from_ref = refs[0]
        service = self.server.service
        history = getattr(service, "delta_history", None)
        if history is None:
            raise APIError(
                "this service front does not keep a delta history"
            )
        version_id = getattr(service, "published_version_id", None)
        if version_id is None:
            version_id = self.server.service_version()
        content_hash = getattr(service, "content_hash", None)
        from_version = parse_version_id(from_ref)
        entries = None
        if from_version is not None:
            to_version = parse_version_id(version_id)
            if to_version is not None:
                entries = history.chain_entries(from_version, to_version)
        elif content_hash is not None:
            entries = history.chain_entries_by_hash(from_ref, content_hash)
        payload: dict = {
            "version": version_id,
            "content_hash": content_hash,
            "covered": entries is not None,
            "deltas": [],
        }
        if entries:
            # advertise the chain's own endpoint, not the re-read
            # current state: a publish landing mid-handler must not
            # produce a payload whose deltas stop short of the version
            # it claims — a consistent prefix beats a torn answer (the
            # next probe chains the replica the rest of the way)
            last = entries[-1]
            payload["version"] = f"v{last.version}"
            if last.content_hash is not None:
                payload["content_hash"] = last.content_hash
            payload["deltas"] = [
                {
                    "base_version": f"v{entry.base_version}",
                    "version": f"v{entry.version}",
                    "base_content_hash": entry.base_content_hash,
                    "content_hash": entry.content_hash,
                    "delta": entry.delta.to_wire(),
                }
                for entry in entries
            ]
        self._respond(200, payload)

    @staticmethod
    def _int_param(url, name: str) -> int | None:
        values = parse_qs(url.query).get(name)
        if not values or not values[0]:
            return None
        try:
            parsed = int(values[0])
        except ValueError as exc:
            raise APIError(f"{name} must be an integer") from exc
        if parsed < 0:
            raise APIError(f"{name} must be >= 0")
        return parsed

    def _admin_traces(self, url) -> None:
        limit = self._int_param(url, "limit")
        trace_ids = parse_qs(url.query).get("trace_id")
        trace_id = trace_ids[0] if trace_ids and trace_ids[0] else None
        traces = self.server.hub.traces
        spans = traces.spans(trace_id=trace_id, limit=limit)
        self._respond(
            200,
            {
                "spans": [span.as_dict() for span in spans],
                "capacity": traces.capacity,
                "last_seq": traces.last_seq,
            },
        )

    def _admin_events(self, url) -> None:
        since = self._int_param(url, "since") or 0
        limit = self._int_param(url, "limit")
        events = self.server.hub.events
        self._respond(
            200,
            {
                "events": events.records(since=since, limit=limit),
                "last_seq": events.last_seq,
            },
        )

    def _admin_swap(self, raw_body: bytes) -> None:
        body = self._parse_json_body(raw_body)
        path = body.get("taxonomy")
        if not isinstance(path, str) or not path:
            raise APIError('swap body must be {"taxonomy": "<path>"}')
        version = self._target_version(body)
        try:
            taxonomy = Taxonomy.load(path)
            if version is None:
                published = self.server.service.swap(taxonomy)
            else:
                published = self.server.service.swap(
                    taxonomy, version=version
                )
        except (ReproError, OSError) as exc:  # bad path/perms: caller error
            raise APIError(f"swap failed, still serving "
                           f"{self.server.service_version()}: {exc}") from exc
        version_id = getattr(
            published, "version_id", self.server.service_version()
        )
        self._respond(200, {"swapped": True, "version": version_id})

    def _admin_apply_delta(self, raw_body: bytes) -> None:
        """Publish a delta incrementally — by file path or by value.

        ``{"delta": "<path>"}`` loads the delta file server-side;
        ``{"delta": {...to_wire() object...}}`` applies the inline
        delta the replication layer ships.  Optional fields:
        ``base_version`` arms the version handshake (409 on mismatch,
        old version still serving), ``version`` stamps the produced
        version (replication lockstep), ``slice`` (``{"shard_id": s,
        "n_shards": n}``) restricts validation + application to the
        cluster-shard keyspace this replica owns.  The delta is always
        structurally validated against the currently served taxonomy,
        so a failed apply keeps the old version serving — same
        contract as a failed ``/admin/swap``.
        """
        from repro.serving.sharding import shard_for
        from repro.taxonomy.delta import TaxonomyDelta

        body = self._parse_json_body(raw_body)
        source = body.get("delta")
        publish = getattr(self.server.service, "publish_delta", None)
        if not callable(publish):
            raise APIError(
                "this service front does not support delta publishes"
            )
        kwargs: dict = {}
        version = self._target_version(body)
        if version is not None:
            kwargs["version"] = version
        base_version = self._base_version(body)
        if base_version is not None:
            kwargs["base_version"] = base_version
        slice_spec = body.get("slice")
        if slice_spec is not None:
            try:
                shard_id = int(slice_spec["shard_id"])
                n_shards = int(slice_spec["n_shards"])
            except (TypeError, KeyError, ValueError) as exc:
                raise APIError(
                    'slice must be {"shard_id": s, "n_shards": n}, '
                    f"got {slice_spec!r}"
                ) from exc
            kwargs["key_filter"] = (
                lambda key: shard_for(key, n_shards) == shard_id
            )
        if not (isinstance(source, str) and source) \
                and not isinstance(source, dict):
            raise APIError(
                'apply-delta body must be {"delta": "<path>"} or '
                '{"delta": {...inline delta...}}'
            )
        if kwargs:
            # capability check by signature, not by catching TypeError
            # around the call — an internal TypeError from a legitimate
            # publish must surface as the 500 it is, not masquerade as
            # a capability gap the replication layer would "heal"
            import inspect

            try:
                parameters = inspect.signature(publish).parameters
                takes_kwargs = any(
                    p.kind == p.VAR_KEYWORD for p in parameters.values()
                )
                unsupported = [
                    name
                    for name in kwargs
                    if name not in parameters and not takes_kwargs
                ]
            except (TypeError, ValueError):  # uninspectable callable
                unsupported = []
            if unsupported:
                raise APIError(
                    "this service front does not support "
                    f"{'/'.join(sorted(unsupported))} on delta publishes"
                )
        try:
            if isinstance(source, str):
                delta = Taxonomy.load_delta(source)
            else:
                delta = TaxonomyDelta.from_wire(source, "request body")
            published = publish(delta, **kwargs)
        except DeltaConflictError as exc:
            # the handshake (checked under the publish lock) refused:
            # tell the sender which version is serving so it can pick
            # chain catch-up vs snapshot heal
            self._respond(409, {
                "error": str(exc),
                "conflict": True,
                "version": exc.server_version
                or self.server.service_version(),
                # the replica's content-addressed state, so the sender
                # can tell "diverged" from "already has these bytes"
                "content_hash": exc.server_content_hash
                or getattr(self.server.service, "content_hash", None),
            })
            return
        except (ReproError, OSError) as exc:  # bad path/base: caller error
            raise APIError(
                f"apply-delta failed, still serving "
                f"{self.server.service_version()}: {exc}"
            ) from exc
        version_id = getattr(
            published, "version_id", self.server.service_version()
        )
        payload = {"applied": True, "version": version_id}
        summary = getattr(delta, "summary", None)
        if callable(summary):
            payload["delta"] = summary()
        shard_versions = getattr(self.server.service, "shard_versions", None)
        if callable(shard_versions):
            payload["shard_versions"] = shard_versions()
        self._respond(200, payload)


class ClusterHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a service front + admin token."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service,
        *,
        admin_token: str | None = None,
        hub=None,
    ) -> None:
        super().__init__(address, TaxonomyRequestHandler)
        self.service = service
        self.admin_token = admin_token
        self._thread: threading.Thread | None = None
        if hub is None:
            # prefer the hub the service front already reports into, so
            # server-side spans land in the same rings as service spans
            hub = getattr(service, "_hub", None) or get_hub()
        self.hub = hub
        self._http_requests = hub.registry.counter(
            "http_requests_total", "HTTP requests served, by path class."
        )
        self._http_seconds = hub.registry.summary(
            "http_request_seconds",
            "Server-side latency of /v1 query requests, by api.",
        )

    def observe_request(
        self, path: str, seconds: float, outcome: str, trace_id
    ) -> None:
        """Account one finished request; record a server span if traced.

        Ops/admin paths (``OPS_PATHS``) are counted but excluded from
        the latency summary — a metrics scrape or health probe is
        plumbing, not workload, exactly like ``PROBE_KEY`` traffic.
        """
        is_query = path.startswith("/v1/")
        api = path[len("/v1/") :] if is_query else None
        if is_query:
            label = f"/v1/{api}"
        elif any(
            path == ops or (ops.endswith("/") and path.startswith(ops))
            for ops in OPS_PATHS
        ):
            label = path if not path.startswith("/admin/") else "/admin/*"
        else:
            label = "other"
        self._http_requests.labels(path=label).inc()
        if is_query:
            self._http_seconds.labels(api=api).observe(seconds)
        if trace_id:
            self.hub.record_span(
                trace_id=trace_id,
                component="server",
                operation=api or path,
                seconds=seconds,
                outcome=outcome,
                version=self.service_version(),
            )

    # -- info payloads ---------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def service_version(self) -> str:
        return getattr(self.service, "version_id", "v?")

    def health_payload(self) -> dict:
        """Liveness that reflects real serving capacity.

        With a router in front, a shard whose replicas are all down
        cannot answer its slice of the keyspace — report ``degraded``
        (the handler returns it as 503) so a load balancer rotates this
        instance out instead of feeding it traffic that will fail.
        """
        payload = {
            "status": "ok",
            "version": self.service_version(),
            "shards": getattr(self.service, "n_shards", 1),
        }
        health = getattr(self.service, "health", None)
        if callable(health):
            dead_shards = [
                shard_id
                for shard_id, replicas in enumerate(health())
                if not any(state["healthy"] for state in replicas)
            ]
            if dead_shards:
                payload["status"] = "degraded"
                payload["unhealthy_shards"] = dead_shards
        return payload

    def version_payload(self) -> dict:
        payload = {
            "version": self.service_version(),
            "shards": getattr(self.service, "n_shards", 1),
            "replicas": getattr(self.service, "n_replicas", 1),
        }
        content_hash = getattr(self.service, "content_hash", None)
        if content_hash is not None:
            # the content-addressed version id: the canonical-bytes
            # sha256 every converged replica advertises identically
            payload["content_hash"] = content_hash
        shard_versions = getattr(self.service, "shard_versions", None)
        if callable(shard_versions):
            payload["shard_versions"] = shard_versions()
        lineage = getattr(self.service, "version_lineage", None)
        if callable(lineage):
            # the versions delta publishes produced (oldest first) —
            # how far back this replica can be caught up by chain
            payload["lineage"] = lineage()
        return payload

    def metrics_payload(self) -> dict:
        metrics = self.service.metrics
        payload = {
            "version": self.service_version(),
            "swaps": metrics.swaps,
            "total_calls": metrics.total_calls,
            "apis": metrics.as_dict(),
        }
        stats = getattr(self.service, "stats", None)
        health = getattr(self.service, "health", None)
        if hasattr(stats, "as_dict") and callable(health):
            payload["router"] = {
                "stats": stats.as_dict(),
                "replicas": health(),
            }
        # the unified registry view: same snapshot that ?format=text
        # renders, so the two expositions cannot drift apart
        payload["metrics"] = self.hub.registry.as_dict()
        return payload

    # -- lifecycle -------------------------------------------------------------

    def start_background(self) -> "ClusterHTTPServer":
        thread = threading.Thread(
            target=lambda: self.serve_forever(poll_interval=0.05),
            name="cn-probase-serve",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def shutdown_soon(self) -> None:
        """Stop the serve loop without deadlocking the calling handler."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def wait(self) -> None:
        """Block until the serve loop exits (CLI foreground mode)."""
        if self._thread is not None:
            self._thread.join()

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def start_server(
    service,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    admin_token: str | None = None,
    hub=None,
) -> ClusterHTTPServer:
    """Bind, start serving on a background thread, return the server.

    ``port=0`` picks a free port; read the bound address back from
    ``server.url``.  Call ``server.close()`` (or POST /admin/shutdown)
    to stop.
    """
    server = ClusterHTTPServer(
        (host, port), service, admin_token=admin_token, hub=hub
    )
    return server.start_background()
