"""Replica backends: the protocol the router routes over, plus remotes.

:class:`~repro.serving.router.ReplicatedRouter` never cares what a
replica *is* — only what it answers.  This module names that contract
(:class:`ReplicaBackend`) and provides the remote implementation that
turns the router into a real multi-process cluster:
:class:`RemoteReplica` drives another serving process through its
:class:`~repro.serving.client.TaxonomyClient`, including the
delta-aware replication surface (ship a per-shard-sliced
:class:`~repro.taxonomy.delta.TaxonomyDelta` by value, handshake on
``base_version``, heal by full snapshot when the handshake fails).

The in-process counterpart,
:class:`~repro.serving.router.StoreShardReplica`, lives next to the
router; both satisfy the same protocol, so a shard's replica set can
mix local views and remote processes freely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import APIError

if TYPE_CHECKING:
    from repro.serving.client import TaxonomyClient
    from repro.taxonomy.delta import TaxonomyDelta


@runtime_checkable
class ReplicaBackend(Protocol):
    """What the router requires of a replica: the three shard lookups.

    Everything else is optional and discovered by ``getattr``:

    - ``healthcheck() -> bool`` — probed instead of a benign lookup;
    - ``pinned()`` / ``pinned_in(shard_set)`` — snapshot pinning hooks
      so a batch group never spans two published versions (only
      in-process store views can offer these; remote replicas degrade
      to per-request consistency, which per-key answers make exact);
    - the replication surface (``published_version()``,
      ``publish_delta(...)``, ``publish_snapshot(...)``) — backends
      exposing it receive delta publishes from
      :meth:`~repro.serving.router.ReplicatedRouter.publish_delta`;
      backends without it (plain read replicas over a shared store)
      are updated through the store instead.
    """

    def men2ent(self, mention: str) -> list[str]: ...

    def get_concepts(self, page_id: str) -> list[str]: ...

    def get_entities(self, concept: str) -> list[str]: ...


class RemoteReplica:
    """One remote serving process as a shard replica backend.

    Reads go over the wire as singles (the router already grouped the
    batch per shard; a remote *serving* process applies its own
    batching underneath).  Writes are the delta-aware replication
    surface: :meth:`publish_delta` ships a delta by value with the
    ``base_version`` handshake, :meth:`publish_snapshot` is the
    one-shot full heal (``/admin/swap`` on a server-side path) for a
    replica whose version fell outside every chain.

    *shard_id* / *n_shards* name the slice of the cluster keyspace this
    replica serves; they are sent as the wire ``slice`` so the replica
    validates and applies exactly the keys the router will ever route
    to it.  A replica serving the full keyspace (n_shards=1 cluster, or
    a full-copy replica) omits them.
    """

    def __init__(
        self,
        client: "TaxonomyClient",
        *,
        shard_id: int | None = None,
        n_shards: int | None = None,
    ) -> None:
        if (shard_id is None) != (n_shards is None):
            raise APIError(
                "shard_id and n_shards name one slice: give both or neither"
            )
        self._client = client
        self._shard_id = shard_id
        self._n_shards = n_shards

    @property
    def client(self) -> "TaxonomyClient":
        return self._client

    @property
    def slice_spec(self) -> dict | None:
        """The wire ``slice`` object, or None for a full-keyspace replica."""
        if self._shard_id is None:
            return None
        return {"shard_id": self._shard_id, "n_shards": self._n_shards}

    def __repr__(self) -> str:  # in failover logs and reports
        where = self._client._base_url
        if self._shard_id is not None:
            where += f"#shard{self._shard_id}/{self._n_shards}"
        return f"RemoteReplica({where})"

    # -- the three shard lookups -----------------------------------------------

    def men2ent(self, mention: str) -> list[str]:
        return self._client.men2ent(mention)

    def get_concepts(self, page_id: str) -> list[str]:
        return self._client.get_concepts(page_id)

    def get_entities(self, concept: str) -> list[str]:
        return self._client.get_entities(concept)

    # -- health ----------------------------------------------------------------

    def healthcheck(self) -> bool:
        return self._client.healthz().get("status") == "ok"

    # -- replication -----------------------------------------------------------

    def published_version(self) -> str:
        """The version id the remote currently serves ("v3")."""
        return str(self._client.version().get("version"))

    def publish_delta(
        self,
        delta: "TaxonomyDelta",
        *,
        base_version: str | None = None,
        version: int | None = None,
    ) -> dict:
        """Ship *delta* by value; raises
        :class:`~repro.errors.DeltaConflictError` when the remote's
        published version does not match *base_version*."""
        return self._client.apply_delta_wire(
            delta,
            base_version=base_version,
            version=version,
            slice_spec=self.slice_spec,
        )

    def publish_snapshot(
        self, taxonomy_path: str, *, version: int | None = None
    ) -> dict:
        """Full-snapshot heal: ``/admin/swap`` onto *taxonomy_path*.

        The path is resolved by the **remote** process.  *version*
        stamps the swapped version so the replica rejoins the cluster's
        lineage instead of restarting its own count.
        """
        return self._client.swap(taxonomy_path, version=version)
