"""Replica backends: the protocol the router routes over, plus remotes.

:class:`~repro.serving.router.ReplicatedRouter` never cares what a
replica *is* — only what it answers.  This module names that contract
(:class:`ReplicaBackend`) and provides the remote implementation that
turns the router into a real multi-process cluster:
:class:`RemoteReplica` drives another serving process through its
:class:`~repro.serving.client.TaxonomyClient`, including the
delta-aware replication surface (ship a per-shard-sliced
:class:`~repro.taxonomy.delta.TaxonomyDelta` by value, handshake on
``base_version``, heal by full snapshot when the handshake fails).

The in-process counterpart,
:class:`~repro.serving.router.StoreShardReplica`, lives next to the
router; both satisfy the same protocol, so a shard's replica set can
mix local views and remote processes freely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import APIError, ReproError
from repro.taxonomy.delta import TaxonomyDelta, compose, parse_version_id

if TYPE_CHECKING:
    from repro.serving.client import TaxonomyClient
    from repro.taxonomy.store import Taxonomy


@runtime_checkable
class ReplicaBackend(Protocol):
    """What the router requires of a replica: the three shard lookups.

    Everything else is optional and discovered by ``getattr``:

    - ``healthcheck() -> bool`` — probed instead of a benign lookup;
    - ``pinned()`` / ``pinned_in(shard_set)`` — snapshot pinning hooks
      so a batch group never spans two published versions (only
      in-process store views can offer these; remote replicas degrade
      to per-request consistency, which per-key answers make exact);
    - the replication surface (``published_version()``,
      ``publish_delta(...)``, ``publish_snapshot(...)``) — backends
      exposing it receive delta publishes from
      :meth:`~repro.serving.router.ReplicatedRouter.publish_delta`;
      backends without it (plain read replicas over a shared store)
      are updated through the store instead.
    """

    def men2ent(self, mention: str) -> list[str]: ...

    def get_concepts(self, page_id: str) -> list[str]: ...

    def get_entities(self, concept: str) -> list[str]: ...


class RemoteReplica:
    """One remote serving process as a shard replica backend.

    Reads go over the wire as singles (the router already grouped the
    batch per shard; a remote *serving* process applies its own
    batching underneath).  Writes are the delta-aware replication
    surface: :meth:`publish_delta` ships a delta by value with the
    ``base_version`` handshake, :meth:`publish_snapshot` is the
    one-shot full heal (``/admin/swap`` on a server-side path) for a
    replica whose version fell outside every chain.

    *shard_id* / *n_shards* name the slice of the cluster keyspace this
    replica serves; they are sent as the wire ``slice`` so the replica
    validates and applies exactly the keys the router will ever route
    to it.  A replica serving the full keyspace (n_shards=1 cluster, or
    a full-copy replica) omits them.
    """

    def __init__(
        self,
        client: "TaxonomyClient",
        *,
        shard_id: int | None = None,
        n_shards: int | None = None,
    ) -> None:
        if (shard_id is None) != (n_shards is None):
            raise APIError(
                "shard_id and n_shards name one slice: give both or neither"
            )
        self._client = client
        self._shard_id = shard_id
        self._n_shards = n_shards

    @property
    def client(self) -> "TaxonomyClient":
        return self._client

    @property
    def slice_spec(self) -> dict | None:
        """The wire ``slice`` object, or None for a full-keyspace replica."""
        if self._shard_id is None:
            return None
        return {"shard_id": self._shard_id, "n_shards": self._n_shards}

    def __repr__(self) -> str:  # in failover logs and reports
        where = self._client._base_url
        if self._shard_id is not None:
            where += f"#shard{self._shard_id}/{self._n_shards}"
        return f"RemoteReplica({where})"

    # -- the three shard lookups -----------------------------------------------

    def men2ent(self, mention: str) -> list[str]:
        return self._client.men2ent(mention)

    def get_concepts(self, page_id: str) -> list[str]:
        return self._client.get_concepts(page_id)

    def get_entities(self, concept: str) -> list[str]:
        return self._client.get_entities(concept)

    # -- health ----------------------------------------------------------------

    def healthcheck(self) -> bool:
        return self._client.healthz().get("status") == "ok"

    # -- replication -----------------------------------------------------------

    def published_version(self) -> str:
        """The version id the remote currently serves ("v3")."""
        return str(self._client.version().get("version"))

    def published_content_hash(self) -> str | None:
        """The content-addressed version the remote serves, if stamped.

        The canonical-bytes sha256 ``/version`` advertises; ``None``
        when the remote's published state was never hashed (a frozen
        view swap), in which case callers fall back to ordinals.
        """
        value = self._client.version().get("content_hash")
        return value if isinstance(value, str) else None

    def publish_delta(
        self,
        delta: "TaxonomyDelta",
        *,
        base_version: str | None = None,
        version: int | None = None,
    ) -> dict:
        """Ship *delta* by value; raises
        :class:`~repro.errors.DeltaConflictError` when the remote's
        published version does not match *base_version*."""
        return self._client.apply_delta_wire(
            delta,
            base_version=base_version,
            version=version,
            slice_spec=self.slice_spec,
        )

    def publish_snapshot(
        self, taxonomy_path: str, *, version: int | None = None
    ) -> dict:
        """Full-snapshot heal: ``/admin/swap`` onto *taxonomy_path*.

        The path is resolved by the **remote** process.  *version*
        stamps the swapped version so the replica rejoins the cluster's
        lineage instead of restarting its own count.
        """
        return self._client.swap(taxonomy_path, version=version)

    def resync(self, source, *, snapshot_path: str | None = None) -> dict:
        """Pull this replica back into lockstep with *source*.

        The probe-time self-heal surface the router drives; see
        :func:`resync_replica` for the algorithm.
        """
        return resync_replica(self, source, snapshot_path=snapshot_path)


def _resync_plan(
    source, have_version: int | None, have_hash: str | None
) -> tuple[int | None, str | None, "list[TaxonomyDelta] | None"]:
    """What *source* says the replica must apply to catch up.

    Returns ``(want_version, want_hash, deltas)``: the source's
    published ordinal and content hash, plus the ordered catch-up
    chain — ``[]`` when the replica is already at the target, ``None``
    when the span is not covered (caller falls back to a snapshot).

    Two source shapes are understood:

    - a wire client with ``fetch_chain`` (the replica pulls its own
      chain from the hub's ``GET /admin/delta-chain``), and
    - an in-process publisher with ``delta_history`` + ``content_hash``
      + a version id (a sharded store, or a router standing in for
      one) — the chain is read straight out of the history ring.

    When both content hashes are known the hash chain is authoritative:
    a replica whose bytes are not on the source's recorded lineage is
    *diverged*, and guessing by ordinal would chain the wrong deltas
    onto it.  Ordinals are only consulted when a hash is missing.
    """
    fetch = getattr(source, "fetch_chain", None)
    if callable(fetch):
        from_ref = have_hash
        if from_ref is None and have_version is not None:
            from_ref = f"v{have_version}"
        if from_ref is None:
            raise APIError(
                "resync needs the replica's version or content hash"
            )
        payload = fetch(from_ref)
        want_version = parse_version_id(payload.get("version"))
        want_hash = payload.get("content_hash")
        if not isinstance(want_hash, str):
            want_hash = None
        if not payload.get("covered"):
            return want_version, want_hash, None
        deltas = [
            TaxonomyDelta.from_wire(hop.get("delta"), "delta-chain")
            for hop in payload.get("deltas", ())
        ]
        return want_version, want_hash, deltas

    history = source.delta_history
    want_id = getattr(source, "published_version_id", None)
    if want_id is None:
        want_id = getattr(source, "version_id", None)
    want_version = parse_version_id(want_id)
    want_hash = source.content_hash
    if have_hash is not None and want_hash is not None:
        entries = history.chain_entries_by_hash(have_hash, want_hash)
    elif have_version is not None and want_version is not None:
        entries = history.chain_entries(have_version, want_version)
    else:
        entries = None
    if entries is None:
        return want_version, want_hash, None
    return want_version, want_hash, [entry.delta for entry in entries]


def resync_replica(replica, source, *, snapshot_path=None) -> dict:
    """Self-heal *replica* against *source*; returns an outcome report.

    The core of probe-time auto-resync, shared by every backend kind
    (:class:`RemoteReplica` pulls over the wire, :class:`LocalReplica`
    reads the publisher's history in-process).  The replica states what
    it holds (ordinal + content hash), :func:`_resync_plan` answers
    with the span, and the cheapest sufficient repair is applied:

    - already at the target bytes → ``"aligned"`` (nothing applied);
    - the span is covered by the source's delta history → one composed
      catch-up delta published with the full base handshake →
      ``"chained"``;
    - otherwise (evicted ring, broken lineage, diverged bytes, or a
      chain publish that fails) → full snapshot swap from
      *snapshot_path* → ``"healed"``; with no snapshot configured the
      failure surfaces as :class:`~repro.errors.APIError`.
    """
    have_version_id = replica.published_version()
    have_version = parse_version_id(have_version_id)
    have_hash: str | None = None
    hash_of = getattr(replica, "published_content_hash", None)
    if callable(hash_of):
        have_hash = hash_of()
    want_version, want_hash, deltas = _resync_plan(
        source, have_version, have_hash
    )
    report: dict = {
        "from_version": have_version_id,
        "from_hash": have_hash,
        "to_version": (
            f"v{want_version}" if want_version is not None else None
        ),
        "to_hash": want_hash,
    }
    aligned = deltas == [] or (
        want_hash is not None and want_hash == have_hash
    )
    if aligned:
        report["outcome"] = "aligned"
        return report
    if deltas:
        try:
            composed = compose(deltas)
            replica.publish_delta(
                composed, base_version=have_version_id, version=want_version
            )
            report["outcome"] = "chained"
            report["hops"] = len(deltas)
            return report
        except ReproError as exc:
            if snapshot_path is None:
                raise
            report["chain_error"] = str(exc)
    if snapshot_path is None:
        raise APIError(
            f"cannot resync from {have_version_id} "
            f"({have_hash or 'unhashed'}): span not covered by the "
            "source's delta history and no snapshot path configured"
        )
    replica.publish_snapshot(str(snapshot_path), version=want_version)
    report["outcome"] = "healed"
    return report


class LocalReplica:
    """An in-process replica owning its own independent store.

    The fault-injection twin of :class:`RemoteReplica`: it satisfies
    the same replication surface (``published_version`` /
    ``published_content_hash`` / ``publish_delta`` /
    ``publish_snapshot`` / ``resync``), but the "process" is a private
    :class:`~repro.serving.sharding.ShardedSnapshotStore` — so a chaos
    harness can kill and restart it without sockets while the router
    replicates to it exactly as it would to a remote.  Like a remote,
    it shares *nothing* with its peers: a publish that never reaches it
    leaves it genuinely stale until the handshake or a resync heals it.

    *shard_id* / *n_shards* name the slice of the cluster keyspace this
    replica serves (deltas are applied under that key filter); a
    full-keyspace replica omits them.
    """

    def __init__(
        self,
        taxonomy: "Taxonomy",
        *,
        version: int = 1,
        shard_id: int | None = None,
        n_shards: int | None = None,
        name: str = "local",
        hub=None,
    ) -> None:
        from repro.serving.sharding import ShardedSnapshotStore

        if (shard_id is None) != (n_shards is None):
            raise APIError(
                "shard_id and n_shards name one slice: give both or neither"
            )
        self._shard_id = shard_id
        self._n_shards = n_shards
        self.name = name
        # one internal shard: intra-replica sharding buys nothing, the
        # cluster-level sharding happens in the router above.  The
        # store registers its ledger under "replica" so a chaos
        # cluster's per-replica stores don't masquerade as the front.
        self._store = ShardedSnapshotStore(
            taxonomy, n_shards=1, version=version, hub=hub,
            component="replica",
        )

    @property
    def store(self):
        """The private store (chaos harnesses inspect it directly)."""
        return self._store

    @property
    def slice_spec(self) -> dict | None:
        """The wire ``slice`` object, or None for a full-keyspace replica."""
        if self._shard_id is None:
            return None
        return {"shard_id": self._shard_id, "n_shards": self._n_shards}

    def _key_filter(self):
        if self._shard_id is None:
            return None
        from repro.serving.sharding import shard_for

        shard_id, n_shards = self._shard_id, self._n_shards
        return lambda key: shard_for(key, n_shards) == shard_id

    def __repr__(self) -> str:  # in failover logs and reports
        return f"LocalReplica({self.name}@{self._store.version_id})"

    # -- the three shard lookups -----------------------------------------------

    def men2ent(self, mention: str) -> list[str]:
        return self._store.men2ent(mention)

    def get_concepts(self, page_id: str) -> list[str]:
        return self._store.get_concepts(page_id)

    def get_entities(self, concept: str) -> list[str]:
        return self._store.get_entities(concept)

    def pinned(self):
        """One snapshot view for a whole batch group (swap-proof).

        Without this hook the router serves a group lookup-by-lookup
        against the live store, and a publish landing mid-group would
        tear the batch across versions — the exact torn read the
        serving layer promises away.
        """
        return self._store.shard_set.shards[0].read_view

    # -- health ----------------------------------------------------------------

    def healthcheck(self) -> bool:
        return True

    # -- replication -----------------------------------------------------------

    def published_version(self) -> str:
        return self._store.version_id

    def published_content_hash(self) -> str | None:
        return self._store.content_hash

    def publish_delta(
        self,
        delta: "TaxonomyDelta",
        *,
        base_version: str | None = None,
        version: int | None = None,
    ) -> dict:
        base: int | None = None
        if base_version is not None:
            base = parse_version_id(base_version)
            if base is None:
                raise APIError(f"malformed base_version {base_version!r}")
        shard_set = self._store.publish_delta(
            delta,
            key_filter=self._key_filter(),
            version=version,
            base_version=base,
        )
        return {
            "applied": True,
            "version": shard_set.version_id,
            "content_hash": shard_set.content_hash,
        }

    def publish_snapshot(
        self, taxonomy_path: str, *, version: int | None = None
    ) -> dict:
        from repro.taxonomy.store import Taxonomy

        taxonomy = Taxonomy.load(taxonomy_path)
        shard_set = self._store.swap(taxonomy, version=version)
        return {
            "swapped": True,
            "version": shard_set.version_id,
            "content_hash": shard_set.content_hash,
        }

    def resync(self, source, *, snapshot_path: str | None = None) -> dict:
        """Self-heal against *source*; see :func:`resync_replica`."""
        return resync_replica(self, source, snapshot_path=snapshot_path)
