"""Replication-aware routing over shard replicas.

:class:`ReplicatedRouter` is the availability layer of the cluster: it
owns the key→shard routing (the same stable :func:`~repro.serving.sharding.shard_for`
hash the store uses) and, for each shard, spreads reads round-robin over
``R`` replica backends.  A replica that raises is marked unhealthy and
the call fails over to the next healthy replica, up to a configurable
number of retries; unhealthy replicas are skipped until a probe passes
(probes run automatically every ``probe_after`` skips, and can be forced
with :meth:`ReplicatedRouter.probe`).

A replica backend is anything with the three single-key lookups
(``men2ent`` / ``get_concepts`` / ``get_entities``) answering for that
shard's slice of the keyspace — in-process
:class:`StoreShardReplica` views over a
:class:`~repro.serving.sharding.ShardedSnapshotStore` (what
``cn-probase serve --replicas R`` wires up), or remote per-shard
clients in a real deployment.

Consistency note: a store-backed router pins one
:class:`~repro.serving.sharding.ShardSet` per *batch* (via the
``pinned_in()`` backend hook), so a batched response never mixes
versions even when a swap lands between shard groups — the same
guarantee the store itself gives.  Backends without ``pinned_in`` (e.g.
truly remote replicas) degrade to per-group pinning: answers within a
shard group are still never torn, but cross-shard atomicity would need
cross-node coordination the wire protocol does not carry.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

from repro.errors import APIError, ServiceUnavailableError
from repro.serving.sharding import (
    _API_LOOKUPS,
    ShardedSnapshotStore,
    shard_for,
)
from repro.taxonomy.service import BatchedServingAPI, ServiceMetrics

#: The benign lookup a probe sends when the backend has no healthcheck().
PROBE_KEY = "__probe__"


class StoreShardReplica:
    """In-process replica of one shard of a :class:`ShardedSnapshotStore`.

    Late-binding: every lookup reads the store's *current* shard set, so
    a swap on the store propagates to all replicas at once.  One replica
    object per (shard, replica slot) keeps health state meaningful even
    though process-local replicas share the underlying index memory.
    """

    def __init__(self, store: ShardedSnapshotStore, shard_id: int) -> None:
        self._store = store
        self._shard_id = shard_id

    def _view(self):
        return self._store.shard_set.shards[self._shard_id].read_view

    def men2ent(self, mention: str) -> list[str]:
        return self._view().men2ent(mention)

    def get_concepts(self, page_id: str) -> list[str]:
        return self._view().get_concepts(page_id)

    def get_entities(self, concept: str) -> list[str]:
        return self._view().get_entities(concept)

    def pinned(self):
        """One snapshot view for a whole batch group (swap-proof)."""
        return self._view()

    def pinned_in(self, shard_set):
        """This replica's view inside an explicitly pinned shard set.

        The router pins one set per *batch* (not per group) with this,
        so a swap landing between shard groups cannot mix versions
        within one batched response.
        """
        return shard_set.shards[self._shard_id].read_view

    def healthcheck(self) -> bool:
        self._view()
        return True


@dataclass
class ReplicaState:
    """Router-side health bookkeeping for one replica backend."""

    backend: object
    healthy: bool = True
    failures: int = 0
    skips_since_down: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "healthy": self.healthy,
            "failures": self.failures,
            "skips_since_down": self.skips_since_down,
        }


@dataclass
class RouterStats:
    """Cumulative routing outcomes (for ``/metrics`` and tests)."""

    attempts: int = 0
    failovers: int = 0
    probes: int = 0
    probe_recoveries: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "attempts": self.attempts,
            "failovers": self.failovers,
            "probes": self.probes,
            "probe_recoveries": self.probe_recoveries,
        }


class ReplicatedRouter(BatchedServingAPI):
    """Route the canonical serving surface over shards × replicas."""

    def __init__(
        self,
        replica_sets: Sequence[Sequence[object]],
        *,
        retries: int = 2,
        probe_after: int = 16,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        if not replica_sets or any(not replicas for replicas in replica_sets):
            raise APIError("router needs >= 1 replica for every shard")
        if retries < 0:
            raise APIError(f"retries must be >= 0, got {retries}")
        if probe_after < 1:
            raise APIError(f"probe_after must be >= 1, got {probe_after}")
        self._replicas: list[list[ReplicaState]] = [
            [ReplicaState(backend) for backend in replicas]
            for replicas in replica_sets
        ]
        self._rr: list[int] = [0] * len(self._replicas)
        self._retries = retries
        self._probe_after = probe_after
        self._lock = threading.Lock()
        self._store: ShardedSnapshotStore | None = None
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.stats = RouterStats()

    @classmethod
    def from_store(
        cls,
        store: ShardedSnapshotStore,
        *,
        replicas: int = 2,
        retries: int = 2,
        probe_after: int = 16,
    ) -> "ReplicatedRouter":
        """R in-process replicas per shard over one sharded store.

        The router delegates :meth:`swap` to the store, so an admin
        hot-swap through the router republishes every replica of every
        shard in the store's single atomic assignment.  Router and store
        share one metrics ledger: the front is one service, however the
        calls reach it.
        """
        if replicas < 1:
            raise APIError(f"replicas must be >= 1, got {replicas}")
        router = cls(
            [
                [StoreShardReplica(store, shard_id) for _ in range(replicas)]
                for shard_id in range(store.n_shards)
            ],
            retries=retries,
            probe_after=probe_after,
            metrics=store.metrics,
        )
        router._store = store
        return router

    # -- cluster topology / versioning ----------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._replicas)

    @property
    def n_replicas(self) -> int:
        return max(len(replicas) for replicas in self._replicas)

    @property
    def version_id(self) -> str:
        if self._store is None:
            raise APIError("router has no backing store to version")
        return self._store.version_id

    def shard_versions(self) -> list[str]:
        if self._store is None:
            raise APIError("router has no backing store to version")
        return self._store.shard_versions()

    def swap(self, taxonomy):
        """Hot-swap the backing store (store-backed routers only)."""
        if self._store is None:
            raise APIError(
                "router has no backing store; swap the shard backends "
                "directly"
            )
        return self._store.swap(taxonomy)

    def publish_delta(self, delta):
        """Apply a taxonomy delta to the backing store (store-backed only).

        Replicas are late-binding views over the store's shard set, so a
        per-shard delta publish propagates to every replica at once —
        replicas of untouched shards keep serving the identical read
        view objects.
        """
        if self._store is None:
            raise APIError(
                "router has no backing store; apply the delta to the "
                "shard backends directly"
            )
        return self._store.publish_delta(delta)

    # -- health ----------------------------------------------------------------

    def health(self) -> list[list[dict[str, object]]]:
        """Per-shard, per-replica health (shard order, replica order)."""
        return [
            [state.as_dict() for state in replicas]
            for replicas in self._replicas
        ]

    def mark_unhealthy(self, shard_id: int, replica_index: int) -> None:
        state = self._replicas[shard_id][replica_index]
        with self._lock:
            state.healthy = False
            state.skips_since_down = 0

    def probe(self, shard_id: int, replica_index: int) -> bool:
        """Probe one replica; on success it rejoins the rotation."""
        state = self._replicas[shard_id][replica_index]
        with self._lock:
            self.stats.probes += 1
        try:
            check = getattr(state.backend, "healthcheck", None)
            if check is not None:
                ok = bool(check())
            else:
                state.backend.men2ent(PROBE_KEY)
                ok = True
        except Exception:
            ok = False
        with self._lock:
            if ok:
                if not state.healthy:
                    self.stats.probe_recoveries += 1
                state.healthy = True
                state.skips_since_down = 0
            else:
                state.healthy = False
                state.skips_since_down = 0
        return ok

    def probe_all(self) -> int:
        """Probe every unhealthy replica; returns how many recovered."""
        recovered = 0
        for shard_id, replicas in enumerate(self._replicas):
            for replica_index, state in enumerate(replicas):
                if not state.healthy and self.probe(shard_id, replica_index):
                    recovered += 1
        return recovered

    # -- routing ---------------------------------------------------------------

    def _pick(self, shard_id: int, exclude: set[int]) -> int | None:
        """Next replica for *shard_id*: round-robin over healthy ones.

        Every pick counts one skip against each unhealthy replica;
        after ``probe_after`` skips a replica is probed in-line, so a
        recovered backend rejoins the rotation without an operator
        call (a failed probe resets the countdown — cheap exponential-ish
        backoff).  Returns None when every replica is excluded or down.
        """
        replicas = self._replicas[shard_id]
        with self._lock:
            start = self._rr[shard_id]
            self._rr[shard_id] = (start + 1) % len(replicas)
            probe_candidate: int | None = None
            for index, state in enumerate(replicas):
                if state.healthy or index in exclude:
                    continue
                state.skips_since_down += 1
                if (
                    probe_candidate is None
                    and state.skips_since_down >= self._probe_after
                ):
                    probe_candidate = index
        if probe_candidate is not None:
            self.probe(shard_id, probe_candidate)
        for offset in range(len(replicas)):
            index = (start + offset) % len(replicas)
            if index in exclude:
                continue
            if replicas[index].healthy:
                return index
        return None

    def _serve_group(
        self,
        api_name: str,
        shard_id: int,
        arguments: Sequence[str],
        pin=None,
    ) -> list[list[str]]:
        """Serve one shard's argument group on one replica.

        The replica is pinned for the whole group — against *pin* (the
        shard set a batch captured up front) via the backend's
        ``pinned_in()`` hook when both exist, else via its ``pinned()``
        hook — so a concurrent swap cannot tear the group.  A replica
        failure marks it unhealthy and the *entire* group fails over to
        the next one; metrics are only recorded for the replica that
        answered.
        """
        lookup_name = _API_LOOKUPS[api_name]
        attempts = self._retries + 1
        tried: set[int] = set()
        last_error: Exception | None = None
        for _ in range(attempts):
            index = self._pick(shard_id, tried)
            if index is None:
                break
            state = self._replicas[shard_id][index]
            with self._lock:
                self.stats.attempts += 1
            pinned_in = getattr(state.backend, "pinned_in", None)
            pinned = getattr(state.backend, "pinned", None)
            if pin is not None and pinned_in is not None:
                target = pinned_in(pin)
            elif pinned is not None:
                target = pinned()
            else:
                target = state.backend
            try:
                call = getattr(target, lookup_name)
                served: list[tuple[list[str], float]] = []
                for argument in arguments:
                    started = perf_counter()
                    result = call(argument)
                    served.append((result, perf_counter() - started))
            except Exception as exc:  # failed replica: mark + fail over
                last_error = exc
                tried.add(index)
                with self._lock:
                    state.healthy = False
                    state.failures += 1
                    state.skips_since_down = 0
                    self.stats.failovers += 1
                continue
            for result, elapsed in served:
                self.metrics.observe(api_name, elapsed, bool(result))
            return [result for result, _ in served]
        detail = f": {last_error}" if last_error is not None else ""
        raise ServiceUnavailableError(
            f"{api_name}: no healthy replica for shard {shard_id} "
            f"after {attempts} attempts{detail}"
        )

    # -- serving hooks ---------------------------------------------------------

    def _single(self, api_name: str, argument: str) -> list[str]:
        shard_id = shard_for(argument, self.n_shards)
        return self._serve_group(api_name, shard_id, [argument])[0]

    def _batch(
        self, api_name: str, arguments: Sequence[str]
    ) -> list[list[str]]:
        # Group by shard so each shard's group lands on one replica —
        # the per-shard sub-batch a network front would send as one
        # request.  Order is restored by position on merge.  For a
        # store-backed router one shard set is pinned for the whole
        # batch, so a swap landing between groups cannot mix versions
        # in one response (the same guarantee the store itself gives).
        pin = self._store.shard_set if self._store is not None else None
        groups: dict[int, list[int]] = {}
        for position, argument in enumerate(arguments):
            groups.setdefault(
                shard_for(argument, self.n_shards), []
            ).append(position)
        results: list[list[str] | None] = [None] * len(arguments)
        for shard_id, positions in groups.items():
            group = self._serve_group(
                api_name, shard_id, [arguments[p] for p in positions],
                pin=pin,
            )
            for position, result in zip(positions, group):
                results[position] = result
        return results  # type: ignore[return-value]
