"""Replication-aware routing over shard replicas.

:class:`ReplicatedRouter` is the availability layer of the cluster: it
owns the key→shard routing (the same stable :func:`~repro.serving.sharding.shard_for`
hash the store uses) and, for each shard, spreads reads round-robin over
``R`` replica backends.  A replica that raises is marked unhealthy and
the call fails over to the next healthy replica, up to a configurable
number of retries; unhealthy replicas are skipped until a probe passes
(probes run automatically every ``probe_after`` skips, and can be forced
with :meth:`ReplicatedRouter.probe`).

A replica backend is anything satisfying the
:class:`~repro.serving.replica.ReplicaBackend` protocol — the three
single-key lookups (``men2ent`` / ``get_concepts`` / ``get_entities``)
answering for that shard's slice of the keyspace.  In-process that is a
:class:`StoreShardReplica` view over a
:class:`~repro.serving.sharding.ShardedSnapshotStore` (what
``cn-probase serve --replicas R`` wires up); across processes it is a
:class:`~repro.serving.replica.RemoteReplica` driving another serving
process through :class:`~repro.serving.client.TaxonomyClient`
(:meth:`ReplicatedRouter.attach_replica` adds one to a shard's
rotation).  :meth:`ReplicatedRouter.publish_delta` keeps remote
replicas fresh the delta-aware way: each shard's slice of the delta is
shipped by value with a ``base_version`` handshake, a refusing replica
is caught up by delta chain when the
:class:`~repro.taxonomy.delta.DeltaHistory` ring covers its lag, and
healed by a one-shot full snapshot (``/admin/swap``) otherwise.

Consistency note: a store-backed router pins one
:class:`~repro.serving.sharding.ShardSet` per *batch* (via the
``pinned_in()`` backend hook), so a batched response never mixes
versions even when a swap lands between shard groups — the same
guarantee the store itself gives.  Backends without ``pinned_in`` (e.g.
truly remote replicas) degrade to per-group pinning: answers within a
shard group are still never torn, but cross-shard atomicity would need
cross-node coordination the wire protocol does not carry.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from repro.obs.clock import elapsed
from typing import Sequence

from repro.errors import (
    APIError,
    DeltaConflictError,
    ServiceUnavailableError,
    TaxonomyError,
)
from repro.obs import current_trace_id, get_hub
from repro.obs.metrics import MetricSnapshot, Sample
from repro.serving.sharding import (
    _API_LOOKUPS,
    ShardedSnapshotStore,
    shard_for,
)
from repro.taxonomy.delta import (
    DeltaHistory,
    bump_version,
    compose,
    parse_version_id,
)
from repro.taxonomy.service import (
    #: The benign lookup a probe sends when the backend has no
    #: healthcheck() — re-exported here for compatibility (the router
    #: was its original home).
    PROBE_KEY,
    BatchedServingAPI,
    ServiceMetrics,
)


class StoreShardReplica:
    """In-process replica of one shard of a :class:`ShardedSnapshotStore`.

    Late-binding: every lookup reads the store's *current* shard set, so
    a swap on the store propagates to all replicas at once.  One replica
    object per (shard, replica slot) keeps health state meaningful even
    though process-local replicas share the underlying index memory.
    """

    def __init__(self, store: ShardedSnapshotStore, shard_id: int) -> None:
        self._store = store
        self._shard_id = shard_id

    def _view(self):
        return self._store.shard_set.shards[self._shard_id].read_view

    def men2ent(self, mention: str) -> list[str]:
        return self._view().men2ent(mention)

    def get_concepts(self, page_id: str) -> list[str]:
        return self._view().get_concepts(page_id)

    def get_entities(self, concept: str) -> list[str]:
        return self._view().get_entities(concept)

    def pinned(self):
        """One snapshot view for a whole batch group (swap-proof)."""
        return self._view()

    def pinned_in(self, shard_set):
        """This replica's view inside an explicitly pinned shard set.

        The router pins one set per *batch* (not per group) with this,
        so a swap landing between shard groups cannot mix versions
        within one batched response.
        """
        return shard_set.shards[self._shard_id].read_view

    def healthcheck(self) -> bool:
        self._view()
        return True


@dataclass
class ReplicaState:
    """Router-side health bookkeeping for one replica backend."""

    backend: object
    healthy: bool = True
    failures: int = 0
    skips_since_down: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "healthy": self.healthy,
            "failures": self.failures,
            "skips_since_down": self.skips_since_down,
        }


@dataclass
class RouterStats:
    """Cumulative routing outcomes (for ``/metrics`` and tests)."""

    attempts: int = 0
    failovers: int = 0
    probes: int = 0
    probe_recoveries: int = 0
    chain_catchups: int = 0
    snapshot_heals: int = 0
    #: probe-time self-healing: a stale-but-alive replica pulled its own
    #: catch-up at probe time (no publish involved)
    probe_resyncs: int = 0
    resync_chains: int = 0
    resync_heals: int = 0
    resync_failures: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "attempts": self.attempts,
            "failovers": self.failovers,
            "probes": self.probes,
            "probe_recoveries": self.probe_recoveries,
            "chain_catchups": self.chain_catchups,
            "snapshot_heals": self.snapshot_heals,
            "probe_resyncs": self.probe_resyncs,
            "resync_chains": self.resync_chains,
            "resync_heals": self.resync_heals,
            "resync_failures": self.resync_failures,
        }

    def metric_samples(self) -> list[MetricSnapshot]:
        """This ledger as one registry-shaped counter family.

        The :class:`~repro.obs.metrics.MetricsRegistry` collector hook:
        every routing outcome becomes a ``router_ops_total{op=...}``
        sample, so dashboards read one family instead of ten ad-hoc
        attributes.
        """
        return [MetricSnapshot(
            "router_ops_total", "counter",
            "Cumulative routing outcomes, per operation",
            tuple(
                Sample((("op", op),), float(value))
                for op, value in self.as_dict().items()
            ),
        )]


class ReplicatedRouter(BatchedServingAPI):
    """Route the canonical serving surface over shards × replicas."""

    def __init__(
        self,
        replica_sets: Sequence[Sequence[object]],
        *,
        retries: int = 2,
        probe_after: int = 16,
        metrics: ServiceMetrics | None = None,
        base_version: int = 1,
        auto_resync: bool = True,
        resync_snapshot_path=None,
        hub=None,
    ) -> None:
        if not replica_sets or any(not replicas for replicas in replica_sets):
            raise APIError("router needs >= 1 replica for every shard")
        if retries < 0:
            raise APIError(f"retries must be >= 0, got {retries}")
        if probe_after < 1:
            raise APIError(f"probe_after must be >= 1, got {probe_after}")
        self._replicas: list[list[ReplicaState]] = [
            [ReplicaState(backend) for backend in replicas]
            for replicas in replica_sets
        ]
        self._rr: list[int] = [0] * len(self._replicas)
        self._retries = retries
        self._probe_after = probe_after
        self._lock = threading.Lock()
        self._store: ShardedSnapshotStore | None = None
        # storeless (pure-remote) routers track their own publish
        # lineage; store-backed ones defer to the store's
        self._published_version = base_version
        self._published_hash: str | None = None
        self._delta_history = DeltaHistory()
        shared_metrics = metrics is not None
        self.metrics = metrics if shared_metrics else ServiceMetrics()
        self.stats = RouterStats()
        self._owns_metrics = not shared_metrics
        self._hub = hub if hub is not None else get_hub()
        self._hub.registry.register_collector("router", self)
        #: Probe-time self-healing: when a probe finds a replica alive
        #: but stale and its backend can ``resync``, the router hands it
        #: the catch-up source instead of leaving it parked for the next
        #: publish.  ``resync_snapshot_path`` arms the snapshot
        #: fall-back for replicas whose lag the delta ring no longer
        #: covers.
        self.auto_resync = auto_resync
        self.resync_snapshot_path = resync_snapshot_path
        #: Per-replica outcomes of the last :meth:`publish_delta`
        #: (``applied`` / ``chained`` / ``healed`` / ``merged`` /
        #: ``failed``).
        self.last_publish_report: list[dict] = []
        #: Recent probe-time resync outcomes (``aligned`` / ``chained``
        #: / ``healed`` / ``failed``), newest last, bounded.
        self.last_resync_report: list[dict] = []

    @classmethod
    def from_store(
        cls,
        store: ShardedSnapshotStore,
        *,
        replicas: int = 2,
        retries: int = 2,
        probe_after: int = 16,
        auto_resync: bool = True,
        resync_snapshot_path=None,
    ) -> "ReplicatedRouter":
        """R in-process replicas per shard over one sharded store.

        The router delegates :meth:`swap` to the store, so an admin
        hot-swap through the router republishes every replica of every
        shard in the store's single atomic assignment.  Router and store
        share one metrics ledger: the front is one service, however the
        calls reach it.
        """
        if replicas < 1:
            raise APIError(f"replicas must be >= 1, got {replicas}")
        router = cls(
            [
                [StoreShardReplica(store, shard_id) for _ in range(replicas)]
                for shard_id in range(store.n_shards)
            ],
            retries=retries,
            probe_after=probe_after,
            metrics=store.metrics,
            auto_resync=auto_resync,
            resync_snapshot_path=resync_snapshot_path,
            hub=store._hub,  # one telemetry hub per cluster
        )
        router._store = store
        return router

    def metric_samples(self) -> list[MetricSnapshot]:
        """Registry collector hook: routing stats, plus the serving
        ledger when this router owns it (a store-backed router shares
        the store's ledger, which the store already registered)."""
        samples = self.stats.metric_samples()
        if self._owns_metrics:
            samples.extend(self.metrics.metric_samples())
        return samples

    # -- cluster topology / versioning ----------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._replicas)

    @property
    def n_replicas(self) -> int:
        return max(len(replicas) for replicas in self._replicas)

    @property
    def version_id(self) -> str:
        if self._store is None:
            raise APIError("router has no backing store to version")
        return self._store.version_id

    @property
    def published_version_id(self) -> str:
        """The version id of the last publish this router made.

        Unlike :attr:`version_id` this also answers for storeless
        routers (from their own publish counter) — it is the version a
        resyncing replica is asked to reach.
        """
        if self._store is not None:
            return self._store.version_id
        return f"v{self._published_version}"

    @property
    def content_hash(self) -> str | None:
        """The published content hash (store's, or router-local)."""
        if self._store is not None:
            return self._store.content_hash
        return self._published_hash

    @property
    def delta_history(self) -> DeltaHistory:
        """The catch-up ring resyncs read (store's, or router-local)."""
        if self._store is not None:
            return self._store.delta_history
        return self._delta_history

    def shard_versions(self) -> list[str]:
        if self._store is None:
            raise APIError("router has no backing store to version")
        return self._store.shard_versions()

    def version_lineage(self) -> list[str]:
        """Versions delta publishes produced (store's, or router-local)."""
        if self._store is not None:
            return self._store.version_lineage()
        return self._delta_history.lineage_ids()

    def attach_replica(self, shard_id: int, backend) -> None:
        """Add a backend to one shard's rotation — e.g. a
        :class:`~repro.serving.replica.RemoteReplica` joining a
        store-backed cluster as an extra read replica.

        A version-reporting backend that is *behind* the published
        version joins parked (unhealthy): admitting it would mix
        taxonomy versions in the rotation.  The next
        :meth:`publish_delta` catches it up (chain or heal) and
        re-admits it; the version-aware probe also re-admits it once
        it is aligned.
        """
        if not 0 <= shard_id < len(self._replicas):
            raise APIError(
                f"no shard {shard_id} (router has {len(self._replicas)})"
            )
        state = ReplicaState(backend, healthy=self._version_aligned(backend))
        with self._lock:
            self._replicas[shard_id].append(state)
            replica_index = len(self._replicas[shard_id]) - 1
        self._hub.emit(
            "replica_attached", shard=shard_id, replica=replica_index,
            backend=repr(backend), healthy=state.healthy,
        )

    def swap(
        self,
        taxonomy,
        *,
        version: int | None = None,
        snapshot_path=None,
    ):
        """Hot-swap the backing store (store-backed routers only).

        Local replicas are late-binding views and see the new version
        immediately.  A full snapshot cannot ship by value, so attached
        *remote* replicas are either healed through ``/admin/swap``
        onto *snapshot_path* (the taxonomy file, resolved by the remote
        process) stamped with the swapped version, or — without a path
        — taken out of the rotation as stale: the version-aware probe
        refuses to re-admit them until a later publish heals them, so
        a swap never leaves the rotation serving two taxonomies.
        Per-replica outcomes land in :attr:`last_publish_report`.
        """
        if self._store is None:
            raise APIError(
                "router has no backing store; swap the shard backends "
                "directly"
            )
        result = self._store.swap(taxonomy, version=version)
        target = result.version
        self._hub.emit(
            "swap", component="router", version=f"v{target}",
            content_hash=result.content_hash,
        )
        report: list[dict] = []
        for shard_id, replicas in enumerate(self._replicas):
            for replica_index, state in enumerate(list(replicas)):
                backend = state.backend
                publish = getattr(backend, "publish_snapshot", None)
                # anything that tracks its own published state is made
                # stale by this swap — even a backend that can only
                # receive deltas must at least be parked
                if not callable(publish) and not callable(
                    getattr(backend, "published_version", None)
                ) and not callable(
                    getattr(backend, "publish_delta", None)
                ):
                    continue
                if snapshot_path is not None and callable(publish):
                    try:
                        publish(str(snapshot_path), version=target)
                        outcome = "healed"
                        with self._lock:
                            self.stats.snapshot_heals += 1
                            # healed = alive + aligned: re-admit (it
                            # may have been parked by an earlier swap)
                            was_healthy = state.healthy
                            state.healthy = True
                            state.skips_since_down = 0
                        if not was_healthy:
                            self._emit_health(state, True, "swap_heal")
                    except Exception:
                        self._mark_failed(state, reason="swap_heal_failed")
                        outcome = "failed"
                else:
                    # stale by construction: park it (not a failure of
                    # the backend, so only the health flag moves)
                    with self._lock:
                        was_healthy = state.healthy
                        state.healthy = False
                        state.skips_since_down = 0
                    if was_healthy:
                        self._emit_health(state, False, "swap_stale")
                    outcome = "stale"
                report.append(self._publish_entry(
                    shard_id, replica_index, state.backend, outcome,
                    target, result.content_hash,
                ))
        self._published_version = target
        self._published_hash = result.content_hash
        self._set_publish_report(report)
        return result

    # -- publish reporting / event plumbing -------------------------------------

    @staticmethod
    def _publish_entry(
        shard, replica, backend, outcome, version, content_hash,
    ) -> dict:
        """One publish-report record; every outcome shares this schema.

        ``shard`` / ``replica`` / ``backend`` are None for cluster-level
        outcomes (a merge converges the whole front at once), never
        absent — consumers can rely on the keys existing.
        """
        return {
            "shard": shard,
            "replica": replica,
            "backend": repr(backend) if backend is not None else None,
            "outcome": outcome,
            "version": f"v{version}" if isinstance(version, int) else version,
            "content_hash": content_hash,
        }

    def _set_publish_report(self, report: list[dict]) -> None:
        """Publish outcomes land in the event log; the attribute is the
        compatibility view over the same records."""
        self.last_publish_report = report
        for entry in report:
            self._hub.emit("publish_outcome", **entry)

    def _locate(self, state) -> tuple[int | None, int | None]:
        for shard_id, replicas in enumerate(self._replicas):
            for replica_index, candidate in enumerate(replicas):
                if candidate is state:
                    return shard_id, replica_index
        return None, None

    def _emit_health(self, state, healthy: bool, reason: str) -> None:
        shard_id, replica_index = self._locate(state)
        self._hub.emit(
            "replica_health",
            shard=shard_id,
            replica=replica_index,
            backend=repr(state.backend),
            healthy=healthy,
            reason=reason,
        )

    # -- delta-aware replication ------------------------------------------------

    def publish_delta(
        self,
        delta,
        *,
        snapshot_path=None,
        key_filter=None,
        version: int | None = None,
        base_version: int | None = None,
    ) -> object:
        """Publish a taxonomy delta to the whole topology.

        Store-backed: the store applies the delta once (replicas are
        late-binding views over its shard set, so a per-shard delta
        publish propagates to every :class:`StoreShardReplica` at once
        — replicas of untouched shards keep serving the identical read
        view objects) and the store's :class:`ShardSet` is returned.

        Remote-capable backends (those exposing ``publish_delta``, the
        :class:`~repro.serving.replica.ReplicaBackend` replication
        surface) are then brought up to date the delta-aware way: each
        shard's *slice* of the delta ships by value with a
        ``base_version`` handshake.  A replica that refuses (its
        published version is not the delta's base) is caught up by a
        composed delta chain when the
        :class:`~repro.taxonomy.delta.DeltaHistory` ring covers its
        lag; otherwise — and for a replica the chain also fails on —
        a one-shot full-snapshot heal (``/admin/swap`` onto
        *snapshot_path*, stamped with the target version) rejoins it.
        A replica that cannot be healed is marked unhealthy and left to
        the probe loop.  Per-replica outcomes land in
        :attr:`last_publish_report`.

        Storeless (pure-remote) routers version the publish themselves
        (``base_version`` at construction, +1 per publish) and return
        the report instead of a shard set.

        *key_filter* and *version* pass through to the store publish —
        a router-fronted replica process (``serve --replicas R``)
        receives sliced, version-stamped wire publishes exactly like a
        bare store does.
        """
        remote_capable = any(
            callable(getattr(state.backend, "publish_delta", None))
            for replicas in self._replicas
            for state in replicas
        )
        if self._store is None and not remote_capable:
            raise APIError(
                "router has no backing store; apply the delta to the "
                "shard backends directly"
            )
        if self._store is not None:
            base = self._store.shard_set.version
            result = self._store.publish_delta(
                delta,
                key_filter=key_filter,
                version=version,
                base_version=base_version,
            )
            target = result.version
            if target == base:
                # the store merged (it already held the delta's target
                # bytes): nothing changed, so shipping the delta to
                # replicas — which also hold those bytes — would only
                # force them through pointless conflict handling
                self._hub.emit(
                    "delta_merge", component="router",
                    version=f"v{target}",
                    content_hash=result.content_hash,
                )
                self._set_publish_report([self._publish_entry(
                    None, None, None, "merged",
                    target, result.content_hash,
                )])
                return result
            history = self._store.delta_history
        else:
            if key_filter is not None:
                # a storeless router has no store to apply a filtered
                # slice to, and recording a full delta while claiming a
                # slice would poison later chain catch-ups — refuse,
                # like the storeless swap does
                raise APIError(
                    "router has no backing store to key-filter; publish "
                    "the sliced delta to the shard backends directly"
                )
            base = self._published_version
            current_hash = self._published_hash
            base_mismatch = (
                base_version is not None and base_version != base
            ) or (
                delta.base_content_hash is not None
                and current_hash is not None
                and delta.base_content_hash != current_hash
            )
            if base_mismatch:
                if (
                    delta.new_content_hash is not None
                    and delta.new_content_hash == current_hash
                ):
                    # merge: a second publisher shipped the same nightly
                    # delta — this router already published those exact
                    # bytes, so converge without re-shipping (replicas
                    # that missed the first publish are resynced by the
                    # probe loop, not by a duplicate fan-out)
                    self._hub.emit(
                        "delta_merge", component="router",
                        version=f"v{base}", content_hash=current_hash,
                    )
                    self._set_publish_report([self._publish_entry(
                        None, None, None, "merged", base, current_hash,
                    )])
                    return self.last_publish_report
                base_label = (
                    f"v{base_version}" if base_version is not None
                    else "unpinned"
                )
                raise DeltaConflictError(
                    f"delta base ({base_label}, "
                    f"{delta.base_content_hash or 'unhashed'}) does not "
                    f"match the published version v{base}",
                    server_version=f"v{base}",
                    server_content_hash=current_hash,
                )
            target = bump_version(base, version)
            history = self._delta_history
            # record before shipping so a refusing replica can be
            # caught up through the ring it just missed
            history.record(
                base,
                target,
                delta,
                base_content_hash=current_hash or delta.base_content_hash,
                content_hash=delta.new_content_hash,
            )
            result = None

        report: list[dict] = []
        n_shards = self.n_shards
        # one lagging version → one compose + one slice per shard, no
        # matter how many replicas lag identically (a hub restart lags
        # them all at once)
        catchup_cache: dict = {}
        for shard_id, replicas in enumerate(self._replicas):
            sliced = None
            for replica_index, state in enumerate(list(replicas)):
                if not callable(
                    getattr(state.backend, "publish_delta", None)
                ):
                    continue
                if sliced is None:
                    sliced = self._slice_for(delta, shard_id, n_shards)
                outcome = self._replicate(
                    state, sliced, base, target, history,
                    shard_id, n_shards, snapshot_path, catchup_cache,
                )
                report.append(self._publish_entry(
                    shard_id, replica_index, state.backend, outcome,
                    target,
                    result.content_hash if result is not None
                    else delta.new_content_hash,
                ))
        self._published_version = target
        self._published_hash = (
            result.content_hash if result is not None
            else delta.new_content_hash
        )
        self._hub.emit(
            "publish", component="router",
            from_version=f"v{base}", version=f"v{target}",
            content_hash=self._published_hash,
        )
        self._set_publish_report(report)
        return result if self._store is not None else report

    @staticmethod
    def _slice_for(delta, shard_id: int, n_shards: int):
        if n_shards == 1:
            return delta
        return delta.slice(
            lambda key: shard_for(key, n_shards) == shard_id
        )

    def _replicate(
        self, state, sliced, base, target, history,
        shard_id, n_shards, snapshot_path, catchup_cache,
    ) -> str:
        """Bring one remote-capable replica to *target*; returns outcome.

        A successful outcome re-admits the replica to the rotation —
        it just proved itself alive and version-aligned (a replica may
        be parked unhealthy purely because it joined behind or missed
        a swap)."""
        outcome = self._replicate_once(
            state, sliced, base, target, history,
            shard_id, n_shards, snapshot_path, catchup_cache,
        )
        if outcome in ("applied", "chained", "healed"):
            with self._lock:
                was_healthy = state.healthy
                state.healthy = True
                state.skips_since_down = 0
            if not was_healthy:
                self._emit_health(state, True, f"publish_{outcome}")
        return outcome

    def _replicate_once(
        self, state, sliced, base, target, history,
        shard_id, n_shards, snapshot_path, catchup_cache,
    ) -> str:
        backend = state.backend
        try:
            backend.publish_delta(
                sliced, base_version=f"v{base}", version=target
            )
            return "applied"
        except DeltaConflictError as exc:
            replica_version = parse_version_id(exc.server_version)
        except Exception:
            self._mark_failed(state)
            return "failed"
        # the handshake refused: the replica is at some other version
        if replica_version == target:
            return "applied"  # duplicate publish (e.g. a resent chain)
        if replica_version is not None:
            catchup = catchup_cache.get((replica_version, shard_id))
            if catchup is None:
                composed = catchup_cache.get(replica_version)
                if composed is None:
                    chain = history.chain(replica_version, target)
                    if chain:
                        try:
                            composed = compose(chain)
                        except TaxonomyError:
                            # recorded deltas that don't actually chain
                            # (independently-computed nights can agree
                            # structurally yet disagree on scores):
                            # catch-up is off the table, the snapshot
                            # heal below decides — never a stack trace
                            # out of a publish
                            composed = None
                        else:
                            catchup_cache[replica_version] = composed
                if composed is not None:
                    catchup = self._slice_for(composed, shard_id, n_shards)
                    catchup_cache[(replica_version, shard_id)] = catchup
            if catchup is not None:
                try:
                    backend.publish_delta(
                        catchup,
                        base_version=f"v{replica_version}",
                        version=target,
                    )
                    with self._lock:
                        self.stats.chain_catchups += 1
                    return "chained"
                except Exception:
                    pass  # fall through to the snapshot heal
        if snapshot_path is not None and callable(
            getattr(backend, "publish_snapshot", None)
        ):
            try:
                backend.publish_snapshot(
                    str(snapshot_path), version=target
                )
                with self._lock:
                    self.stats.snapshot_heals += 1
                return "healed"
            except Exception:
                pass
        self._mark_failed(state)
        return "failed"

    def _mark_failed(self, state, *, reason: str = "error") -> None:
        with self._lock:
            was_healthy = state.healthy
            state.healthy = False
            state.failures += 1
            state.skips_since_down = 0
        if was_healthy:
            self._emit_health(state, False, reason)

    # -- health ----------------------------------------------------------------

    def health(self) -> list[list[dict[str, object]]]:
        """Per-shard, per-replica health (shard order, replica order)."""
        return [
            [state.as_dict() for state in replicas]
            for replicas in self._replicas
        ]

    def mark_unhealthy(self, shard_id: int, replica_index: int) -> None:
        state = self._replicas[shard_id][replica_index]
        with self._lock:
            was_healthy = state.healthy
            state.healthy = False
            state.skips_since_down = 0
        if was_healthy:
            self._emit_health(state, False, "operator")

    def _version_aligned(self, backend) -> bool:
        """Is a version-reporting backend at the published version?

        Probes gate on this: a remote replica that missed a publish
        (its wire apply timed out, or the hub swapped underneath it)
        answers its healthcheck happily while serving stale answers —
        re-admitting it would mix taxonomy versions in the rotation.
        It stays parked until a publish or a probe-time resync heals
        it.  Backends without a ``published_version`` (in-process store
        views) are always aligned: they read the store's current shard
        set.

        When both sides advertise a content hash the comparison is
        content-addressed: byte-equality of the served taxonomy, immune
        to ordinal drift (a replica healed through an out-of-band swap
        with the right bytes but its own counter).  Otherwise it falls
        back to the ordinal lockstep check.
        """
        published = getattr(backend, "published_version", None)
        published_hash = getattr(backend, "published_content_hash", None)
        if not callable(published) and not callable(published_hash):
            return True
        if self._store is not None:
            expected = self._store.shard_set.version
            expected_hash = self._store.content_hash
        elif len(self._delta_history):
            expected = self._published_version
            expected_hash = self._published_hash
        else:
            # this router never published anything (a read-only load
            # balancer over independently-managed replicas): it has no
            # basis to call any served version stale
            return True
        try:
            if callable(published_hash) and expected_hash is not None:
                have = published_hash()
                if have is not None:
                    return have == expected_hash
            if callable(published):
                return parse_version_id(published()) == expected
            return True
        except Exception:
            return False

    def probe(self, shard_id: int, replica_index: int) -> bool:
        """Probe one replica; on success it rejoins the rotation.

        Success means alive *and* version-aligned (see
        :meth:`_version_aligned`) — a healthy-but-stale remote replica
        stays out of the rotation.  When :attr:`auto_resync` is on and
        the backend can ``resync``, an alive-but-stale replica pulls
        its own catch-up chain right here (snapshot fall-back via
        :attr:`resync_snapshot_path`) and rejoins without waiting for
        the next publish — the self-healing half of replication.
        """
        state = self._replicas[shard_id][replica_index]
        with self._lock:
            self.stats.probes += 1
        try:
            check = getattr(state.backend, "healthcheck", None)
            if check is not None:
                ok = bool(check())
            else:
                state.backend.men2ent(PROBE_KEY)
                ok = True
        except Exception:
            ok = False
        if ok:
            aligned = self._version_aligned(state.backend)
            if not aligned and self.auto_resync:
                aligned = self._try_resync(shard_id, replica_index, state)
            ok = aligned
        with self._lock:
            was_healthy = state.healthy
            if ok:
                if not state.healthy:
                    self.stats.probe_recoveries += 1
                state.healthy = True
                state.skips_since_down = 0
            else:
                state.healthy = False
                state.skips_since_down = 0
        if ok != was_healthy:
            self._emit_health(
                state, ok, "probe_recovery" if ok else "probe_failed"
            )
        return ok

    def probe_all(self) -> int:
        """Probe every unhealthy replica; returns how many recovered."""
        recovered = 0
        for shard_id, replicas in enumerate(self._replicas):
            for replica_index, state in enumerate(replicas):
                if not state.healthy and self.probe(shard_id, replica_index):
                    recovered += 1
        return recovered

    #: How many probe-time resync outcomes :attr:`last_resync_report`
    #: keeps (newest last) — observability, not an audit log.
    _RESYNC_REPORT_SIZE = 64

    def _try_resync(self, shard_id: int, replica_index: int, state) -> bool:
        """Let an alive-but-stale replica pull its own catch-up.

        The replica's ``resync`` drives the whole recovery — read its
        own state, chain from this router's (or store's) delta history,
        fall back to the snapshot at :attr:`resync_snapshot_path` —
        so the router stays a coordinator, not a data plane.  Returns
        True when the replica ends aligned.
        """
        resync = getattr(state.backend, "resync", None)
        if not callable(resync):
            return False
        source = self._store if self._store is not None else self
        entry = {
            "shard": shard_id,
            "replica": replica_index,
            "backend": repr(state.backend),
        }
        try:
            result = resync(
                source, snapshot_path=self.resync_snapshot_path
            )
        except Exception as exc:
            with self._lock:
                self.stats.resync_failures += 1
            entry.update(outcome="failed", error=str(exc))
            self._record_resync(entry)
            return False
        # a ReplicaBackend resync returns its full report dict; tolerate
        # a bare outcome string from simpler backends
        if isinstance(result, dict):
            entry.update(result)
        else:
            entry["outcome"] = result
        outcome = entry.get("outcome")
        self._record_resync(entry)
        ok = outcome in ("aligned", "chained", "healed")
        with self._lock:
            if outcome == "chained":
                self.stats.resync_chains += 1
            elif outcome == "healed":
                self.stats.resync_heals += 1
            if ok:
                self.stats.probe_resyncs += 1
            else:
                self.stats.resync_failures += 1
        # trust, then verify: the replica must actually report aligned
        return ok and self._version_aligned(state.backend)

    def _record_resync(self, entry: dict) -> None:
        with self._lock:
            self.last_resync_report.append(entry)
            del self.last_resync_report[: -self._RESYNC_REPORT_SIZE]
        self._hub.emit("resync", **entry)

    # -- routing ---------------------------------------------------------------

    def _pick(self, shard_id: int, exclude: set[int]) -> int | None:
        """Next replica for *shard_id*: round-robin over healthy ones.

        Selection is atomic: the healthy-replica scan and the rotation
        advance happen under one lock acquisition, so two concurrent
        picks can never choose from a half-updated rotation, and the
        cursor only ever advances *past the replica actually chosen* —
        when the healthy subset shrinks, the survivors keep absorbing
        the load evenly instead of whichever one happens to follow the
        dead slot in index order absorbing a double share.

        Every pick still counts one skip against each unhealthy
        replica; after ``probe_after`` skips a replica is probed
        in-line (outside the lock — probes do I/O), so a recovered
        backend rejoins the rotation without an operator call (a failed
        probe resets the countdown — cheap exponential-ish backoff).
        Returns None when every replica is excluded or down.
        """
        replicas = self._replicas[shard_id]
        with self._lock:
            start = self._rr[shard_id]
            chosen: int | None = None
            for offset in range(len(replicas)):
                index = (start + offset) % len(replicas)
                if index in exclude:
                    continue
                if replicas[index].healthy:
                    chosen = index
                    self._rr[shard_id] = (index + 1) % len(replicas)
                    break
            probe_candidate: int | None = None
            for index, state in enumerate(replicas):
                if state.healthy or index in exclude:
                    continue
                state.skips_since_down += 1
                if (
                    probe_candidate is None
                    and state.skips_since_down >= self._probe_after
                ):
                    probe_candidate = index
        if probe_candidate is not None:
            recovered = self.probe(shard_id, probe_candidate)
            if chosen is None and recovered:
                # nothing else was healthy; the probe just brought
                # this replica back, so route to it
                with self._lock:
                    self._rr[shard_id] = (
                        probe_candidate + 1
                    ) % len(replicas)
                return probe_candidate
        return chosen

    def _serve_group(
        self,
        api_name: str,
        shard_id: int,
        arguments: Sequence[str],
        pin=None,
    ) -> list[list[str]]:
        """Serve one shard's argument group on one replica.

        The replica is pinned for the whole group — against *pin* (the
        shard set a batch captured up front) via the backend's
        ``pinned_in()`` hook when both exist, else via its ``pinned()``
        hook — so a concurrent swap cannot tear the group.  A replica
        failure marks it unhealthy and the *entire* group fails over to
        the next one; metrics are only recorded for the replica that
        answered.
        """
        lookup_name = _API_LOOKUPS[api_name]
        attempts = self._retries + 1
        tried: set[int] = set()
        last_error: Exception | None = None
        trace_id = current_trace_id()
        group_started = elapsed() if trace_id is not None else 0.0
        for _ in range(attempts):
            index = self._pick(shard_id, tried)
            if index is None:
                break
            state = self._replicas[shard_id][index]
            with self._lock:
                self.stats.attempts += 1
            pinned_in = getattr(state.backend, "pinned_in", None)
            pinned = getattr(state.backend, "pinned", None)
            try:
                # resolving the pin is the first wire round-trip to the
                # replica — a failure here is a replica failure and must
                # fail over, not escape the group
                if pin is not None and pinned_in is not None:
                    target = pinned_in(pin)
                elif pinned is not None:
                    target = pinned()
                else:
                    target = state.backend
                call = getattr(target, lookup_name)
                served: list[tuple[list[str], float]] = []
                for argument in arguments:
                    started = elapsed()
                    result = call(argument)
                    served.append((result, elapsed() - started))
            except Exception as exc:  # failed replica: mark + fail over
                last_error = exc
                tried.add(index)
                with self._lock:
                    was_healthy = state.healthy
                    state.healthy = False
                    state.failures += 1
                    state.skips_since_down = 0
                    self.stats.failovers += 1
                if was_healthy:
                    self._emit_health(state, False, "serve_failure")
                continue
            for argument, (result, seconds) in zip(arguments, served):
                if argument != PROBE_KEY:  # probes stay out of ledgers
                    self.metrics.observe(api_name, seconds, bool(result))
            if trace_id is not None:
                self._record_group_spans(
                    trace_id, api_name, shard_id, index, pin,
                    sum(seconds for _, seconds in served),
                    elapsed() - group_started,
                )
            return [result for result, _ in served]
        detail = f": {last_error}" if last_error is not None else ""
        if trace_id is not None:
            self._hub.record_span(
                trace_id, "router", api_name,
                elapsed() - group_started,
                outcome="unavailable", shard=shard_id,
            )
        raise ServiceUnavailableError(
            f"{api_name}: no healthy replica for shard {shard_id} "
            f"after {attempts} attempts{detail}"
        )

    def _record_group_spans(
        self, trace_id, api_name, shard_id, replica_index, pin,
        shard_seconds, group_seconds,
    ) -> None:
        """Router + shard spans for one served group.

        The shard span is the time spent inside replica lookups; the
        router span is the whole group including pick/failover, so the
        difference reads directly as routing overhead.
        """
        if pin is not None:
            version, content_hash = pin.version_id, pin.content_hash
        elif self._store is not None:
            shard_set = self._store.shard_set
            version, content_hash = shard_set.version_id, shard_set.content_hash
        else:
            version, content_hash = (
                self.published_version_id, self._published_hash
            )
        self._hub.record_span(
            trace_id, "shard", api_name, shard_seconds,
            shard=shard_id, replica=replica_index,
            version=version, content_hash=content_hash,
        )
        self._hub.record_span(
            trace_id, "router", api_name, group_seconds,
            shard=shard_id, replica=replica_index,
            version=version, content_hash=content_hash,
        )

    # -- serving hooks ---------------------------------------------------------

    def _single(self, api_name: str, argument: str) -> list[str]:
        shard_id = shard_for(argument, self.n_shards)
        return self._serve_group(api_name, shard_id, [argument])[0]

    def _batch(
        self, api_name: str, arguments: Sequence[str]
    ) -> list[list[str]]:
        # Group by shard so each shard's group lands on one replica —
        # the per-shard sub-batch a network front would send as one
        # request.  Order is restored by position on merge.  For a
        # store-backed router one shard set is pinned for the whole
        # batch, so a swap landing between groups cannot mix versions
        # in one response (the same guarantee the store itself gives).
        pin = self._store.shard_set if self._store is not None else None
        groups: dict[int, list[int]] = {}
        for position, argument in enumerate(arguments):
            groups.setdefault(
                shard_for(argument, self.n_shards), []
            ).append(position)
        results: list[list[str] | None] = [None] * len(arguments)
        for shard_id, positions in groups.items():
            group = self._serve_group(
                api_name, shard_id, [arguments[p] for p in positions],
                pin=pin,
            )
            for position, result in zip(positions, group):
                results[position] = result
        return results  # type: ignore[return-value]
