"""Exception hierarchy shared by every repro subsystem."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class LexiconError(ReproError):
    """Raised on invalid lexicon entries or merge conflicts."""


class SegmentationError(ReproError):
    """Raised when a text cannot be segmented (e.g. empty input)."""


class CorpusError(ReproError):
    """Raised on malformed encyclopedia dumps or pages."""


class TaxonomyError(ReproError):
    """Raised on invalid taxonomy operations (unknown ids, cycles...)."""


class VocabularyError(ReproError):
    """Raised by the neural vocabulary on unknown or reserved symbols."""


class TrainingError(ReproError):
    """Raised when neural training is misconfigured."""


class PipelineError(ReproError):
    """Raised when the build pipeline is driven in the wrong order."""


class APIError(ReproError):
    """Raised by the taxonomy serving layer on bad requests."""


class WorkloadError(ReproError):
    """Raised on invalid workload scenario specs, schedules or runs."""


class TelemetryError(ReproError):
    """Raised by the observability spine on invalid metric/event use."""


class AnalysisError(ReproError):
    """Raised by the static-analysis subsystem on bad inputs.

    Unparseable sources, malformed baselines, unknown checker ids —
    driver mistakes, never findings (findings are data, not errors).
    """


class ServiceUnavailableError(APIError):
    """Raised when no healthy replica can serve a request.

    A transient availability failure, not a caller mistake: the HTTP
    layer maps it to 503 so clients retry, unlike the 400 a plain
    :class:`APIError` becomes.
    """


class DeltaConflictError(APIError):
    """A delta publish refused because the replica's version moved.

    The delta-aware replication handshake: a publish carries the
    ``base_version`` it was computed against, and a replica whose
    published version differs answers HTTP 409 with its current
    version instead of applying.  The router heals the replica —
    catch-up chain from :class:`~repro.taxonomy.delta.DeltaHistory`
    when the span is covered, full-snapshot ``/admin/swap`` otherwise —
    so the conflict is a routine signal, never a stack trace.
    ``server_version`` carries the replica's current version id when
    the response included one; ``server_content_hash`` the replica's
    content-addressed version (canonical-bytes sha256), letting the
    publisher distinguish a *diverged* replica from one that already
    holds the exact bytes the delta produces (a merge, not a conflict).
    """

    def __init__(
        self,
        message: str,
        *,
        server_version: str | None = None,
        server_content_hash: str | None = None,
    ):
        super().__init__(message)
        self.server_version = server_version
        self.server_content_hash = server_content_hash
