"""Precision estimation against the world's ground-truth oracle.

``sample_precision`` mirrors the paper's protocol: draw *n* relations
uniformly at random (the paper uses 2000), label each, report the correct
fraction.  ``relation_precision`` labels the whole set — affordable at
our scale and used in tests where sampling noise would flake.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.taxonomy.model import IsARelation

Oracle = Callable[[str, str], bool]


def make_oracle(world) -> Oracle:
    """Annotator-style oracle over a :class:`SyntheticWorld`.

    Accepts page_ids (entity relations), bare mention surfaces (baseline
    taxonomies carry surfaces, not ids — an annotator judges any sense as
    correct) and concept strings.
    """
    senses = world.mention_senses()

    def oracle(hyponym: str, hypernym: str) -> bool:
        if world.is_gold_isa(hyponym, hypernym):
            return True
        for page_id in senses.get(hyponym, ()):
            if world.is_gold_isa(page_id, hypernym):
                return True
        # Page ids carry a '#sense' suffix; an annotator judges the bare
        # surface (concept pages kept as pseudo-entities read as concepts).
        if "#" in hyponym:
            surface = hyponym.split("#", 1)[0]
            if surface != hyponym and oracle(surface, hypernym):
                return True
        return False

    return oracle


@dataclass(frozen=True)
class PrecisionEstimate:
    """Precision over a labelled (sub)sample."""

    n_labelled: int
    n_correct: int

    @property
    def precision(self) -> float:
        if self.n_labelled == 0:
            return 0.0
        return self.n_correct / self.n_labelled

    def __str__(self) -> str:
        return f"{self.precision:.1%} ({self.n_correct}/{self.n_labelled})"


def sample_precision(
    relations: Sequence[IsARelation],
    oracle: Oracle,
    n_samples: int = 2000,
    seed: int = 0,
) -> PrecisionEstimate:
    """The paper's protocol: label a uniform sample of relations."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    if not relations:
        return PrecisionEstimate(0, 0)
    rng = random.Random(seed)
    pool = list(relations)
    if len(pool) > n_samples:
        pool = rng.sample(pool, n_samples)
    correct = sum(1 for r in pool if oracle(r.hyponym, r.hypernym))
    return PrecisionEstimate(n_labelled=len(pool), n_correct=correct)


def relation_precision(
    relations: Sequence[IsARelation], oracle: Oracle
) -> PrecisionEstimate:
    """Exhaustive labelling (no sampling noise)."""
    correct = sum(1 for r in relations if oracle(r.hyponym, r.hypernym))
    return PrecisionEstimate(n_labelled=len(relations), n_correct=correct)


def source_precision(
    per_source_relations: dict[str, list[IsARelation]],
    oracle: Oracle,
    n_samples: int = 2000,
    seed: int = 0,
) -> dict[str, PrecisionEstimate]:
    """Per-source sampled precision (paper: bracket 96.2%, tag 97.4%)."""
    return {
        source: sample_precision(relations, oracle, n_samples, seed)
        for source, relations in per_source_relations.items()
    }
