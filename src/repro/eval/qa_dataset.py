"""Synthetic NLPCC2016-style QA dataset (Section IV-B substitute).

The paper measures coverage on 23,472 open-domain questions.  We generate
questions over the synthetic world with the same structure: most mention
an entity or concept from the world (by templates typical of Chinese KBQA
sets), a calibrated tail mentions out-of-world strings so coverage lands
below 100% the way real data does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.encyclopedia.synthesis.world import SyntheticWorld

_ENTITY_TEMPLATES = (
    "{m}是谁？",
    "{m}是什么？",
    "{m}的代表作品有哪些？",
    "{m}出生在哪里？",
    "{m}属于哪个类别？",
    "关于{m}的介绍有哪些？",
    "{m}获得过什么奖项？",
)
_CONCEPT_TEMPLATES = (
    "有哪些著名的{m}？",
    "{m}一般指什么？",
    "中国最有名的{m}是谁？",
    "{m}有哪些代表？",
)
_OOV_SYLLABLES = "魁罡叕燚赑猋骉鱻麤毳"


@dataclass(frozen=True)
class Question:
    """One QA item: surface text plus the gold mention embedded in it."""

    text: str
    mention: str
    mention_kind: str  # "entity" | "concept" | "oov"


def generate_questions(
    world: SyntheticWorld,
    n_questions: int = 2000,
    seed: int = 0,
    entity_rate: float = 0.78,
    concept_rate: float = 0.16,
) -> list[Question]:
    """Sample *n_questions* questions; the remainder rate is OOV."""
    if n_questions <= 0:
        raise ValueError(f"n_questions must be positive, got {n_questions}")
    if entity_rate + concept_rate > 1.0:
        raise ValueError("entity_rate + concept_rate must not exceed 1")
    rng = random.Random(seed)
    entities = list(world.entities)
    concepts = sorted(world.concepts)
    questions: list[Question] = []
    for _ in range(n_questions):
        roll = rng.random()
        if roll < entity_rate and entities:
            entity = rng.choice(entities)
            template = rng.choice(_ENTITY_TEMPLATES)
            questions.append(
                Question(
                    text=template.format(m=entity.name),
                    mention=entity.name,
                    mention_kind="entity",
                )
            )
        elif roll < entity_rate + concept_rate and concepts:
            concept = rng.choice(concepts)
            template = rng.choice(_CONCEPT_TEMPLATES)
            questions.append(
                Question(
                    text=template.format(m=concept),
                    mention=concept,
                    mention_kind="concept",
                )
            )
        else:
            name = "".join(
                rng.choice(_OOV_SYLLABLES) for _ in range(rng.choice((2, 3)))
            )
            questions.append(
                Question(
                    text=rng.choice(_ENTITY_TEMPLATES).format(m=name),
                    mention=name,
                    mention_kind="oov",
                )
            )
    return questions
