"""Evaluation: sampled precision, QA coverage, report rendering.

The paper estimates precision by manually labelling 2000 randomly sampled
isA relations; here the synthetic world's ground truth plays the
annotator.  Coverage follows Section IV-B: a question is covered when it
contains at least one entity or concept of the taxonomy.
"""

from repro.eval.coverage import CoverageReport, qa_coverage
from repro.eval.metrics import (
    PrecisionEstimate,
    relation_precision,
    sample_precision,
    source_precision,
)
from repro.eval.qa_dataset import Question, generate_questions
from repro.eval.report import render_table

__all__ = [
    "CoverageReport",
    "PrecisionEstimate",
    "Question",
    "generate_questions",
    "qa_coverage",
    "relation_precision",
    "render_table",
    "sample_precision",
    "source_precision",
]
