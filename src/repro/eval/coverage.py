"""QA coverage of a taxonomy (Section IV-B).

A question is covered when its text contains at least one entity mention
or concept of the taxonomy.  Matching scans the question with a
maximum-forward-match over the taxonomy's mention index and concept set —
no gold annotations are consulted, exactly like the paper's protocol.

The companion statistic is the mean number of concepts per covered
entity (the paper reports 2.14), a proxy for how informative coverage is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.eval.qa_dataset import Question
from repro.taxonomy.store import Taxonomy


@dataclass(frozen=True)
class CoverageReport:
    """Coverage metrics over one question set."""

    n_questions: int
    n_covered: int
    total_concepts_of_covered_entities: int
    n_covered_entities: int

    @property
    def coverage(self) -> float:
        if self.n_questions == 0:
            return 0.0
        return self.n_covered / self.n_questions

    @property
    def avg_concepts_per_covered_entity(self) -> float:
        if self.n_covered_entities == 0:
            return 0.0
        return self.total_concepts_of_covered_entities / self.n_covered_entities

    def __str__(self) -> str:
        return (
            f"coverage {self.coverage:.2%} "
            f"({self.n_covered}/{self.n_questions}), "
            f"{self.avg_concepts_per_covered_entity:.2f} concepts/entity"
        )


class _MentionScanner:
    """Maximum forward match over taxonomy mentions and concepts."""

    def __init__(self, taxonomy: Taxonomy) -> None:
        self._surfaces: dict[str, str] = {}
        for relation in taxonomy.relations():
            self._surfaces.setdefault(relation.hypernym, "concept")
            if relation.hyponym_kind == "concept":
                self._surfaces.setdefault(relation.hyponym, "concept")
            else:
                entity = taxonomy.entity(relation.hyponym)
                if entity is not None:
                    for mention in entity.mentions:
                        self._surfaces.setdefault(mention, "entity")
        self._max_len = max((len(s) for s in self._surfaces), default=0)
        self._taxonomy = taxonomy

    def first_match(self, text: str) -> tuple[str, str] | None:
        """Longest-first scan; returns (surface, kind) or None."""
        n = len(text)
        for start in range(n):
            limit = min(n, start + self._max_len)
            for end in range(limit, start + 1, -1):
                surface = text[start:end]
                if surface in self._surfaces:
                    return surface, self._surfaces[surface]
        return None

    def concepts_of_mention(self, mention: str) -> tuple[int, int]:
        """(total direct concepts, number of senses) for a mention."""
        total = 0
        senses = 0
        for page_id in self._taxonomy.men2ent(mention):
            concepts = len(self._taxonomy.get_concepts(page_id))
            if concepts:
                total += concepts
                senses += 1
        return total, senses


def qa_coverage(
    taxonomy: Taxonomy, questions: Sequence[Question]
) -> CoverageReport:
    """Compute coverage of *taxonomy* over *questions*."""
    scanner = _MentionScanner(taxonomy)
    n_covered = 0
    covered_entities = 0
    total_concepts = 0
    for question in questions:
        match = scanner.first_match(question.text)
        if match is None:
            continue
        n_covered += 1
        surface, kind = match
        if kind == "entity":
            concepts, senses = scanner.concepts_of_mention(surface)
            covered_entities += senses
            total_concepts += concepts
    return CoverageReport(
        n_questions=len(questions),
        n_covered=n_covered,
        total_concepts_of_covered_entities=total_concepts,
        n_covered_entities=covered_entities,
    )
