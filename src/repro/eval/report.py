"""Plain-text table rendering for benchmark output.

The benchmarks print tables shaped exactly like the paper's (Table I,
Table II); this renderer keeps columns aligned for CJK-free numeric
cells and pads header/label columns.
"""

from __future__ import annotations

from typing import Sequence


def _display_width(text: str) -> int:
    """Terminal cells occupied: CJK characters take two columns."""
    width = 0
    for ch in text:
        width += 2 if ord(ch) > 0x2E7F else 1
    return width


def _pad(text: str, width: int) -> str:
    return text + " " * max(width - _display_width(text), 0)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = []
    for col, header in enumerate(headers):
        width = _display_width(header)
        for row in cells:
            width = max(width, _display_width(row[col]))
        widths.append(width)
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(_pad(h, w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(_pad(c, w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_count(value: int) -> str:
    """Thousands-separated count, as the paper prints its tables."""
    return f"{value:,}"


def format_percent(value: float) -> str:
    return f"{value:.1%}"
