"""Declarative fault injection for workload scenarios.

A :class:`FaultSpec` describes, in the same frozen JSON-round-trippable
style as :class:`~repro.workloads.spec.TrafficSpec`, what goes wrong
during a replay: replicas killed and restarted at scheduled offsets
(:class:`ReplicaCrash`), wire calls delayed / dropped / answered with
injected server errors (:class:`WireFaults`), and a second publisher
re-sending the nightly delta mid-run (``republish_at``).  A scenario
carrying a fault spec runs against a **chaos cluster**: a storeless
:class:`~repro.serving.router.ReplicatedRouter` over
:class:`FaultyReplica`-wrapped
:class:`~repro.serving.replica.LocalReplica` backends, each owning an
independent copy of the taxonomy — the closest in-process analogue of
R replica processes behind a router.

The point of the exercise is the self-healing contract: a killed
replica restarts **stale** (rebuilt from the base snapshot, one
version behind), and nothing but the router's version-aware probe and
the replica's own ``resync`` is allowed to bring it back.  After the
replay :meth:`ChaosCluster.settle` lifts the wire faults and runs one
probe sweep; :meth:`ChaosCluster.convergence` then reports whether
every replica ended alive on the **byte-identical content hash** the
router published — the acceptance gate chaos scenarios assert together
with the auditor's zero mixed-version answers.

Determinism: every wire-fault decision draws from a ``Random`` seeded
from the fault spec, and this module never reads the clock — delaying
a call sleeps through a hook injected by the runner (the one module
allowed to import ``time``), so the determinism lint holds here too.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING

from repro.errors import APIError, ServiceUnavailableError, WorkloadError
from repro.workloads.runner import TimedAction
from repro.workloads.spec import _check_probability, _known_fields

if TYPE_CHECKING:
    from repro.serving.router import ReplicatedRouter


@dataclass(frozen=True)
class WireFaults:
    """Per-call wire-level faults a :class:`FaultyReplica` injects.

    Rates are independent per-call probabilities: a call may first be
    delayed (``delay_rate`` → sleep ``delay_seconds``), then dropped
    (``drop_rate`` → :class:`ServiceUnavailableError`, the wire
    timeout) or answered with an injected server error (``error_rate``
    → :class:`APIError`, the 5xx).
    """

    delay_rate: float = 0.0
    delay_seconds: float = 0.002
    drop_rate: float = 0.0
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("delay_rate", self.delay_rate)
        _check_probability("drop_rate", self.drop_rate)
        _check_probability("error_rate", self.error_rate)
        if self.delay_seconds < 0:
            raise WorkloadError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )

    def as_dict(self) -> dict:
        return {
            "delay_rate": self.delay_rate,
            "delay_seconds": self.delay_seconds,
            "drop_rate": self.drop_rate,
            "error_rate": self.error_rate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WireFaults":
        return cls(**_known_fields(cls, data))


#: How a :class:`ReplicaCrash` takes the replica down.  ``kill`` loses
#: the process: coming back rebuilds from the base snapshot, one
#: version behind.  ``isolate`` is a partition: coming back keeps the
#: replica's state (stale only if it missed a publish meanwhile).
CRASH_MODES = ("kill", "isolate")


@dataclass(frozen=True)
class ReplicaCrash:
    """Take one replica down at *at* and optionally back at *back_at*.

    Offsets are 0..1 fractions of the schedule span, like a scenario's
    ``publish_at``.  Without *back_at* the replica stays down for the
    rest of the run (and is excluded from the convergence gate).
    """

    replica: int
    at: float
    back_at: float | None = None
    mode: str = "kill"

    def __post_init__(self) -> None:
        if self.replica < 0:
            raise WorkloadError(
                f"crash replica index must be >= 0, got {self.replica}"
            )
        _check_probability("at", self.at)
        if self.back_at is not None:
            _check_probability("back_at", self.back_at)
            if self.back_at <= self.at:
                raise WorkloadError(
                    f"crash back_at ({self.back_at}) must be after "
                    f"at ({self.at})"
                )
        if self.mode not in CRASH_MODES:
            raise WorkloadError(
                f"crash mode must be one of {CRASH_MODES}, got {self.mode!r}"
            )

    def as_dict(self) -> dict:
        return {
            "replica": self.replica,
            "at": self.at,
            "back_at": self.back_at,
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReplicaCrash":
        return cls(**_known_fields(cls, data))


@dataclass(frozen=True)
class FaultSpec:
    """Everything that goes wrong during one chaos scenario replay.

    ``replicas`` sizes the chaos cluster (one shard × N replicas);
    ``probe_after`` tunes how many routing skips a downed replica
    accumulates before the router probes (and, finding it alive but
    stale, resyncs) it — low values make recovery visible inside short
    benchmark replays.  ``republish_at`` re-sends the scenario's
    nightly delta as if a second builder published the same night:
    the router must **merge** (content hashes converge), never fork.
    """

    replicas: int = 3
    seed: int = 0
    crashes: tuple[ReplicaCrash, ...] = ()
    wire: WireFaults | None = None
    republish_at: float | None = None
    probe_after: int = 4

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise WorkloadError(
                f"fault spec needs >= 1 replica, got {self.replicas}"
            )
        if not isinstance(self.crashes, tuple):
            object.__setattr__(self, "crashes", tuple(self.crashes))
        for crash in self.crashes:
            if crash.replica >= self.replicas:
                raise WorkloadError(
                    f"crash names replica {crash.replica} but the spec "
                    f"has only {self.replicas}"
                )
        if self.republish_at is not None:
            _check_probability("republish_at", self.republish_at)
        if self.probe_after < 1:
            raise WorkloadError(
                f"probe_after must be >= 1, got {self.probe_after}"
            )

    def as_dict(self) -> dict:
        return {
            "replicas": self.replicas,
            "seed": self.seed,
            "crashes": [crash.as_dict() for crash in self.crashes],
            "wire": self.wire.as_dict() if self.wire is not None else None,
            "republish_at": self.republish_at,
            "probe_after": self.probe_after,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        known = _known_fields(cls, data)
        if known.get("crashes"):
            known["crashes"] = tuple(
                ReplicaCrash.from_dict(crash) for crash in known["crashes"]
            )
        if known.get("wire") is not None:
            known["wire"] = WireFaults.from_dict(known["wire"])
        return cls(**known)


class FaultyReplica:
    """A fault-injecting proxy around one replica backend.

    Wraps anything speaking the
    :class:`~repro.serving.replica.ReplicaBackend` surface (serving
    lookups + the replication surface) and stands between it and the
    router the way an unreliable network would: while :meth:`kill`-ed
    or :meth:`isolate`-d every call raises
    :class:`ServiceUnavailableError`; while up, :class:`WireFaults`
    may delay, drop, or fail any call.  :meth:`restart` rebuilds the
    inner backend from the factory — a process that lost its state and
    came back serving the base snapshot — whereas :meth:`reconnect`
    keeps it, a partition healing.

    Faults fire on the *wire* surface only: :meth:`inner_content_hash`
    and :meth:`inner_version` read the wrapped backend directly so the
    convergence report can inspect a replica the faults would hide.
    """

    def __init__(
        self,
        factory,
        *,
        name: str = "replica",
        wire: WireFaults | None = None,
        seed: int = 0,
        sleep=None,
    ) -> None:
        self._factory = factory
        self._inner = factory()
        self._name = name
        self._wire = wire
        self._rng = Random(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self.alive = True
        #: Chronological chaos-control events (``kill`` / ``restart`` /
        #: ``isolate`` / ``reconnect``) — observability for reports.
        self.events: list[str] = []

    @property
    def name(self) -> str:
        return self._name

    def __repr__(self) -> str:
        # lint: allow[lock-discipline] debug repr; racy bool read is fine
        state = "up" if self.alive else "down"
        return f"FaultyReplica({self._name}, {state})"

    # -- chaos controls --------------------------------------------------------

    def kill(self) -> None:
        """The process dies: unreachable until :meth:`restart`."""
        with self._lock:
            self.alive = False
            self.events.append("kill")

    def restart(self) -> None:
        """The process comes back — from the base snapshot, stale."""
        inner = self._factory()
        with self._lock:
            self._inner = inner
            self.alive = True
            self.events.append("restart")

    def isolate(self) -> None:
        """A partition: unreachable, but state survives."""
        with self._lock:
            self.alive = False
            self.events.append("isolate")

    def reconnect(self) -> None:
        """The partition heals; whatever state it had still serves."""
        with self._lock:
            self.alive = True
            self.events.append("reconnect")

    def clear_wire_faults(self) -> None:
        """Stop injecting wire faults (the post-run settle phase)."""
        self._wire = None

    # -- the injected wire -----------------------------------------------------

    def _gate(self, op: str) -> None:
        # lint: allow[lock-discipline] atomic bool read; kill/restart flip it
        if not self.alive:
            raise ServiceUnavailableError(
                f"{self._name} is unreachable ({op})"
            )
        wire = self._wire
        if wire is None:
            return
        with self._lock:  # one seeded stream, even under worker threads
            delay = wire.delay_rate and self._rng.random() < wire.delay_rate
            drop = wire.drop_rate and self._rng.random() < wire.drop_rate
            error = (
                not drop
                and wire.error_rate
                and self._rng.random() < wire.error_rate
            )
        if delay and self._sleep is not None:
            self._sleep(wire.delay_seconds)
        if drop:
            raise ServiceUnavailableError(
                f"injected drop: {op} to {self._name} timed out"
            )
        if error:
            raise APIError(f"injected server error: {op} at {self._name}")

    # -- serving surface -------------------------------------------------------

    def men2ent(self, mention: str) -> list[str]:
        self._gate("men2ent")
        return self._inner.men2ent(mention)

    def get_concepts(self, page_id: str) -> list[str]:
        self._gate("get_concepts")
        return self._inner.get_concepts(page_id)

    def get_entities(self, concept: str) -> list[str]:
        self._gate("get_entities")
        return self._inner.get_entities(concept)

    def pinned(self):
        """Pin one inner snapshot view for a whole batch group.

        The gate fires once per group — the in-process analogue of one
        batched HTTP request either failing on the wire or being served
        whole against one server-side snapshot.
        """
        self._gate("pinned")
        # lint: allow[lock-discipline] atomic reference read of the inner view
        pinned = getattr(self._inner, "pinned", None)
        return pinned() if callable(pinned) else self._inner

    def healthcheck(self) -> bool:
        self._gate("healthcheck")
        return bool(self._inner.healthcheck())

    # -- replication surface ---------------------------------------------------

    def published_version(self) -> str:
        self._gate("published_version")
        return self._inner.published_version()

    def published_content_hash(self) -> str | None:
        self._gate("published_content_hash")
        return self._inner.published_content_hash()

    def publish_delta(self, delta, *, base_version=None, version=None):
        self._gate("publish_delta")
        return self._inner.publish_delta(
            delta, base_version=base_version, version=version
        )

    def publish_snapshot(self, taxonomy_path, *, version=None):
        self._gate("publish_snapshot")
        return self._inner.publish_snapshot(taxonomy_path, version=version)

    def resync(self, source, *, snapshot_path=None):
        self._gate("resync")
        return self._inner.resync(source, snapshot_path=snapshot_path)

    # -- fault-free inspection (reports, not the wire) -------------------------

    def inner_version(self) -> str:
        return self._inner.published_version()

    def inner_content_hash(self) -> str | None:
        return self._inner.published_content_hash()


@dataclass
class ChaosCluster:
    """A storeless router over fault-wrapped local replicas."""

    router: "ReplicatedRouter"
    replicas: list[FaultyReplica] = field(default_factory=list)

    def settle(self) -> int:
        """End-of-run recovery sweep: faults off, one probe pass.

        The run is over and the injected network is healthy again; any
        replica still parked gets one probe (which resyncs it if it is
        merely stale).  Returns how many replicas the sweep recovered.
        A replica left dead (a crash without ``back_at``) stays dead —
        settling heals the network, not the process.
        """
        for replica in self.replicas:
            replica.clear_wire_faults()
        return self.router.probe_all()

    def convergence(self) -> dict:
        """Did every replica end alive on the published bytes?

        The chaos acceptance gate: after :meth:`settle`, each replica's
        own content hash must equal the router's published hash —
        byte-identical taxonomies, not just matching ordinals.  Dead
        replicas (never restarted) fail the gate unless the fault spec
        deliberately left them down.
        """
        expected = self.router.content_hash
        entries = []
        for replica in self.replicas:
            have = replica.inner_content_hash() if replica.alive else None
            entries.append({
                "replica": replica.name,
                "alive": replica.alive,
                "version": replica.inner_version() if replica.alive else None,
                "content_hash": have,
                "converged": replica.alive and have == expected,
                "events": list(replica.events),
            })
        stats = self.router.stats
        return {
            "expected_hash": expected,
            "converged": all(entry["converged"] for entry in entries),
            "replicas": entries,
            "resyncs": {
                "probe_resyncs": stats.probe_resyncs,
                "resync_chains": stats.resync_chains,
                "resync_heals": stats.resync_heals,
                "resync_failures": stats.resync_failures,
                "chain_catchups": stats.chain_catchups,
                "snapshot_heals": stats.snapshot_heals,
                "probe_recoveries": stats.probe_recoveries,
            },
        }


def build_chaos_cluster(taxonomy, spec: FaultSpec, *, sleep=None) -> ChaosCluster:
    """One shard × ``spec.replicas`` fault-wrapped local replicas.

    Every replica owns an independent :class:`Taxonomy` copy behind a
    :class:`~repro.serving.replica.LocalReplica`, so a publish to one
    never leaks into another and a restarted replica is *genuinely*
    stale — the chaos cluster exercises the same delta-chain /
    resync / heal machinery R separate processes would.  *sleep* is
    the wall-clock hook :class:`WireFaults` delays use (the runner
    injects ``time.sleep``; tests may inject a stub).
    """
    from repro.serving.replica import LocalReplica
    from repro.serving.router import ReplicatedRouter

    def make_factory(index: int):
        def factory():
            return LocalReplica(
                taxonomy.copy(), version=1, name=f"replica-{index}"
            )

        return factory

    replicas = [
        FaultyReplica(
            make_factory(index),
            name=f"replica-{index}",
            wire=spec.wire,
            seed=spec.seed * 7919 + index,
            sleep=sleep,
        )
        for index in range(spec.replicas)
    ]
    router = ReplicatedRouter(
        [list(replicas)],
        retries=spec.replicas,
        probe_after=spec.probe_after,
        base_version=1,
    )
    return ChaosCluster(router=router, replicas=replicas)


def fault_actions(
    cluster: ChaosCluster, spec: FaultSpec, duration_s: float
) -> list[TimedAction]:
    """Compile the spec's crashes into runner :class:`TimedAction`\\ s."""
    actions: list[TimedAction] = []
    down = {"kill": "kill", "isolate": "isolate"}
    back = {"kill": "restart", "isolate": "reconnect"}
    for crash in spec.crashes:
        replica = cluster.replicas[crash.replica]
        actions.append(TimedAction(
            at_s=crash.at * duration_s,
            label=f"{down[crash.mode]}:{replica.name}",
            action=getattr(replica, down[crash.mode]),
        ))
        if crash.back_at is not None:
            actions.append(TimedAction(
                at_s=crash.back_at * duration_s,
                label=f"{back[crash.mode]}:{replica.name}",
                action=getattr(replica, back[crash.mode]),
            ))
    return actions
