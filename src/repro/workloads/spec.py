"""Declarative scenario specs: traffic × world, frozen and JSON-round-trippable.

A :class:`Scenario` composes two independent axes the serving benchmarks
vary:

- :class:`TrafficSpec` — *what the callers do*: the Table-II API mix, a
  key-popularity model (uniform or zipf-skewed hot keys), the arrival
  process (steady / burst / diurnal open-loop rates), the batch-size
  distribution, the miss and adversarial-mention rates, and weighted
  tenant namespaces;
- :class:`WorldSpec` — *what the taxonomy looks like*: entity count plus
  three normalised knobs (alias ambiguity, concept-chain depth, churn
  rate) that drive the :class:`~repro.encyclopedia.synthesis.noise.NoiseConfig`
  channels of :class:`~repro.encyclopedia.SyntheticWorld`, and a
  deterministic page-churn model for publish-under-load runs.

Every spec is a frozen dataclass with ``as_dict``/``from_dict`` that
round-trip through JSON byte-stably, so a scenario *is* its serialized
form — the schedule compiler's determinism contract starts here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from random import Random
from typing import TYPE_CHECKING

from repro.encyclopedia.model import EncyclopediaDump, EncyclopediaPage
from repro.encyclopedia.synthesis.noise import NoiseConfig
from repro.encyclopedia.synthesis.world import SyntheticWorld
from repro.errors import WorkloadError
from repro.taxonomy.api import PAPER_API_MIX

if TYPE_CHECKING:
    from repro.workloads.faults import FaultSpec

SPEC_FORMAT_VERSION = 1

#: The wire APIs a scenario mix may name (the paper's Table-II spelling).
WIRE_APIS = ("getConcept", "getEntity", "men2ent")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise WorkloadError(f"{name} must be a probability, got {value}")


def _check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise WorkloadError(f"{name} must be positive, got {value}")


def _weighted_pairs(
    name: str, pairs, *, key_type=str
) -> tuple[tuple[object, float], ...]:
    """Normalise a weight table into a canonical sorted tuple of pairs."""
    if isinstance(pairs, dict):
        pairs = pairs.items()
    normalised = []
    for entry in pairs:
        key, weight = entry
        if not isinstance(key, key_type):
            raise WorkloadError(
                f"{name} keys must be {key_type.__name__}, got {key!r}"
            )
        weight = float(weight)
        if weight <= 0.0:
            raise WorkloadError(
                f"{name} weights must be positive, got {key!r}: {weight}"
            )
        normalised.append((key, weight))
    if not normalised:
        raise WorkloadError(f"{name} must not be empty")
    keys = [key for key, _ in normalised]
    if len(set(keys)) != len(keys):
        raise WorkloadError(f"{name} has duplicate keys: {keys}")
    return tuple(sorted(normalised))


@dataclass(frozen=True)
class KeyPopularity:
    """How argument keys are drawn from a pool.

    ``uniform`` draws every key equally; ``zipf`` ranks a seeded
    shuffle of the pool and draws rank ``r`` proportionally to
    ``r ** -zipf_exponent`` — the classic hot-key skew where a handful
    of mentions absorb most of the traffic.
    """

    kind: str = "uniform"
    zipf_exponent: float = 1.1

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "zipf"):
            raise WorkloadError(
                f"popularity kind must be uniform|zipf, got {self.kind!r}"
            )
        if self.kind == "zipf":
            _check_positive("zipf_exponent", self.zipf_exponent)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "zipf_exponent": self.zipf_exponent}

    @classmethod
    def from_dict(cls, data: dict) -> "KeyPopularity":
        return cls(**_known_fields(cls, data))


@dataclass(frozen=True)
class ArrivalSpec:
    """Open-loop arrival process: when requests are *scheduled* to fire.

    Rates are requests per second of schedule time.  ``steady`` holds
    ``rate_per_s``; ``burst`` multiplies it by ``burst_multiplier`` for
    ``burst_seconds`` out of every ``burst_every_s``; ``diurnal``
    modulates it sinusoidally over ``diurnal_period_s`` down to
    ``diurnal_trough`` of the peak (a compressed day).
    """

    kind: str = "steady"
    rate_per_s: float = 200.0
    burst_every_s: float = 2.0
    burst_seconds: float = 0.5
    burst_multiplier: float = 4.0
    diurnal_period_s: float = 4.0
    diurnal_trough: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in ("steady", "burst", "diurnal"):
            raise WorkloadError(
                f"arrival kind must be steady|burst|diurnal, got {self.kind!r}"
            )
        _check_positive("rate_per_s", self.rate_per_s)
        _check_positive("burst_every_s", self.burst_every_s)
        _check_positive("burst_multiplier", self.burst_multiplier)
        _check_positive("diurnal_period_s", self.diurnal_period_s)
        if not 0.0 < self.burst_seconds <= self.burst_every_s:
            raise WorkloadError(
                "burst_seconds must be in (0, burst_every_s], got "
                f"{self.burst_seconds}"
            )
        if not 0.0 < self.diurnal_trough <= 1.0:
            raise WorkloadError(
                f"diurnal_trough must be in (0, 1], got {self.diurnal_trough}"
            )

    def rate_at(self, t: float) -> float:
        """The scheduled request rate at schedule time *t* seconds."""
        if self.kind == "burst":
            in_burst = (t % self.burst_every_s) < self.burst_seconds
            return self.rate_per_s * (self.burst_multiplier if in_burst else 1.0)
        if self.kind == "diurnal":
            import math

            phase = math.sin(2.0 * math.pi * t / self.diurnal_period_s)
            mid = (1.0 + self.diurnal_trough) / 2.0
            amplitude = (1.0 - self.diurnal_trough) / 2.0
            return self.rate_per_s * (mid + amplitude * phase)
        return self.rate_per_s

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "rate_per_s": self.rate_per_s,
            "burst_every_s": self.burst_every_s,
            "burst_seconds": self.burst_seconds,
            "burst_multiplier": self.burst_multiplier,
            "diurnal_period_s": self.diurnal_period_s,
            "diurnal_trough": self.diurnal_trough,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArrivalSpec":
        return cls(**_known_fields(cls, data))


@dataclass(frozen=True)
class TrafficSpec:
    """The caller side of a scenario.

    ``n_calls`` counts *API requests* (one argument each); a batched
    event of size 8 contributes 8.  ``mix``, ``batch_sizes`` and
    ``tenants`` are canonical sorted weight tables so two specs built
    from differently-ordered dicts serialize identically.
    """

    n_calls: int = 300
    mix: tuple[tuple[str, float], ...] = tuple(
        sorted(PAPER_API_MIX.items())
    )
    popularity: KeyPopularity = field(default_factory=KeyPopularity)
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    batch_sizes: tuple[tuple[int, float], ...] = ((1, 1.0),)
    miss_rate: float = 0.05
    adversarial_rate: float = 0.0
    tenants: tuple[tuple[str, float], ...] = (("default", 1.0),)

    def __post_init__(self) -> None:
        if self.n_calls <= 0:
            raise WorkloadError(f"n_calls must be positive, got {self.n_calls}")
        object.__setattr__(self, "mix", _weighted_pairs("mix", self.mix))
        for api, _ in self.mix:
            if api not in WIRE_APIS:
                raise WorkloadError(
                    f"mix names unknown API {api!r}; known: {WIRE_APIS}"
                )
        total = sum(weight for _, weight in self.mix)
        if abs(total - 1.0) > 1e-6:
            raise WorkloadError(f"API mix must sum to 1, got {total}")
        object.__setattr__(
            self,
            "batch_sizes",
            _weighted_pairs("batch_sizes", self.batch_sizes, key_type=int),
        )
        for size, _ in self.batch_sizes:
            if size < 1:
                raise WorkloadError(f"batch size must be >= 1, got {size}")
        object.__setattr__(
            self, "tenants", _weighted_pairs("tenants", self.tenants)
        )
        _check_probability("miss_rate", self.miss_rate)
        _check_probability("adversarial_rate", self.adversarial_rate)

    def as_dict(self) -> dict:
        return {
            "n_calls": self.n_calls,
            "mix": [[api, weight] for api, weight in self.mix],
            "popularity": self.popularity.as_dict(),
            "arrival": self.arrival.as_dict(),
            "batch_sizes": [[size, w] for size, w in self.batch_sizes],
            "miss_rate": self.miss_rate,
            "adversarial_rate": self.adversarial_rate,
            "tenants": [[name, w] for name, w in self.tenants],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficSpec":
        known = _known_fields(cls, data)
        if "popularity" in known:
            known["popularity"] = KeyPopularity.from_dict(known["popularity"])
        if "arrival" in known:
            known["arrival"] = ArrivalSpec.from_dict(known["arrival"])
        for key in ("mix", "batch_sizes", "tenants"):
            if key in known:
                known[key] = tuple(tuple(pair) for pair in known[key])
        return cls(**known)


@dataclass(frozen=True)
class WorldSpec:
    """The world side of a scenario: SyntheticWorld knobs, normalised.

    The three 0..1 knobs scale the relevant
    :class:`~repro.encyclopedia.synthesis.noise.NoiseConfig` channels:

    - ``alias_ambiguity`` — aliases, cross-domain homograph titles and
      cross-sense tag leakage (the men2ent disambiguation stress),
    - ``chain_depth`` — subconcept-modifier and employer+role brackets
      (the 首席战略官-isA-战略官-isA-人物 chains of Figure 3),
    - ``churn_rate`` — the fraction of entity pages
      :meth:`churned_dump` mutates, i.e. how much a nightly refresh
      has to republish.
    """

    n_entities: int = 300
    alias_ambiguity: float = 0.25
    chain_depth: float = 0.2
    churn_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.n_entities <= 0:
            raise WorkloadError(
                f"n_entities must be positive, got {self.n_entities}"
            )
        _check_probability("alias_ambiguity", self.alias_ambiguity)
        _check_probability("chain_depth", self.chain_depth)
        _check_probability("churn_rate", self.churn_rate)

    def noise(self) -> NoiseConfig:
        """The NoiseConfig the three knobs compile to."""
        return NoiseConfig(
            p_alias=0.05 + 0.30 * self.alias_ambiguity,
            p_ambiguous_name=0.01 + 0.14 * self.alias_ambiguity,
            p_cross_sense_tag=0.30 + 0.55 * self.alias_ambiguity,
            p_role_bracket=0.06 + 0.45 * self.chain_depth,
            p_bracket_modifier=0.35 + 0.55 * self.chain_depth,
        )

    def build_world(self, seed: int) -> SyntheticWorld:
        """Sample the world deterministically from *seed*."""
        return SyntheticWorld.generate(
            seed=seed, n_entities=self.n_entities, noise=self.noise()
        )

    def churned_dump(
        self, world: SyntheticWorld, seed: int
    ) -> EncyclopediaDump:
        """A copy of the world's dump with ``churn_rate`` of pages mutated.

        The nightly-refresh model: a seeded sample of entity pages gains
        one concept tag (drawn from the world's own inventory) and a
        freshness sentence on the abstract — page-level changes a
        :func:`~repro.encyclopedia.diff_dumps` then sees as ``changed``
        and an incremental rebuild turns into a delta.
        """
        rng = Random(seed)
        pages = list(world.dump().pages)
        n_churn = int(round(self.churn_rate * len(pages)))
        churn_ids = {
            page.page_id
            for page in sorted(rng.sample(pages, n_churn), key=lambda p: p.page_id)
        }
        concept_names = sorted(world.concepts)
        churned = EncyclopediaDump()
        for page in pages:
            if page.page_id in churn_ids:
                extra_tag = rng.choice(concept_names)
                tags = page.tags if extra_tag in page.tags else (
                    *page.tags, extra_tag
                )
                page = replace(
                    page,
                    tags=tags,
                    abstract=page.abstract + "近期资料已更新。",
                )
            churned.add(page)
        return churned

    def as_dict(self) -> dict:
        return {
            "n_entities": self.n_entities,
            "alias_ambiguity": self.alias_ambiguity,
            "chain_depth": self.chain_depth,
            "churn_rate": self.churn_rate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorldSpec":
        return cls(**_known_fields(cls, data))


@dataclass(frozen=True)
class Scenario:
    """One named, reproducible serving benchmark: traffic × world × seed.

    ``publish_at`` (a 0..1 fraction of the schedule span) arms the
    mixed read + nightly-publish run: at that point of the replay the
    runner publishes the delta between the base taxonomy and a rebuild
    on the churned dump — which requires ``world.churn_rate > 0``.

    ``faults`` (a :class:`~repro.workloads.faults.FaultSpec`) turns the
    replay into a chaos run: the harness serves it from a fault-wrapped
    replica cluster, fires the spec's kills/restarts as timed actions,
    and reports whether every replica converged back to the published
    content hash.
    """

    name: str
    description: str
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    world: WorldSpec = field(default_factory=WorldSpec)
    seed: int = 0
    publish_at: float | None = None
    faults: "FaultSpec | None" = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise WorkloadError(
                f"scenario name must be a non-empty identifier, got "
                f"{self.name!r}"
            )
        if self.publish_at is not None:
            _check_probability("publish_at", self.publish_at)
            if self.world.churn_rate <= 0.0:
                raise WorkloadError(
                    f"scenario {self.name!r} sets publish_at but its world "
                    "has churn_rate=0 — there is nothing to publish"
                )
        if (
            self.faults is not None
            and self.faults.republish_at is not None
            and self.publish_at is None
        ):
            raise WorkloadError(
                f"scenario {self.name!r} sets faults.republish_at but no "
                "publish_at — there is no delta to republish"
            )

    def as_dict(self) -> dict:
        return {
            "format_version": SPEC_FORMAT_VERSION,
            "name": self.name,
            "description": self.description,
            "traffic": self.traffic.as_dict(),
            "world": self.world.as_dict(),
            "seed": self.seed,
            "publish_at": self.publish_at,
            "faults": (
                self.faults.as_dict() if self.faults is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        version = data.get("format_version", SPEC_FORMAT_VERSION)
        if not isinstance(version, int) or isinstance(version, bool):
            raise WorkloadError(
                f"scenario format_version must be an int, got {version!r}"
            )
        if version > SPEC_FORMAT_VERSION:
            raise WorkloadError(
                f"scenario format_version {version} is newer than this "
                f"build understands ({SPEC_FORMAT_VERSION})"
            )
        known = _known_fields(cls, data)
        if "traffic" in known:
            known["traffic"] = TrafficSpec.from_dict(known["traffic"])
        if "world" in known:
            known["world"] = WorldSpec.from_dict(known["world"])
        if known.get("faults") is not None:
            from repro.workloads.faults import FaultSpec

            known["faults"] = FaultSpec.from_dict(known["faults"])
        return cls(**known)


def _known_fields(cls, data: dict) -> dict:
    """The subset of *data* naming actual fields of *cls* (strict)."""
    if not isinstance(data, dict):
        raise WorkloadError(f"{cls.__name__} spec must be a dict, got {data!r}")
    names = {f.name for f in fields(cls)}
    unknown = set(data) - names - {"format_version"}
    if unknown:
        raise WorkloadError(
            f"{cls.__name__} spec has unknown keys: {sorted(unknown)}"
        )
    return {key: value for key, value in data.items() if key in names}
