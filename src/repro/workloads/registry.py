"""The named, built-in scenario suite every serving PR regresses against.

Ten scenarios cover the workload axes the paper's deployment sees and
the failure modes the serving stack promises away:

- ``steady_table2`` — the Table-II mix at a steady open-loop rate: the
  baseline every other scenario is read against.
- ``zipf_hot`` — zipf-skewed key popularity: a handful of hot mentions
  absorb most of the traffic (cache-friendliness and lock contention).
- ``burst`` — periodic arrival bursts at 5× the base rate: does p99
  survive the spikes, and how much schedule lateness piles up.
- ``batch_heavy`` — gateway-shaped traffic: large batches through the
  ``*_batch`` APIs (the ~35x HTTP amortisation path).
- ``adversarial_miss`` — heavy unknown and near-miss mentions: the
  miss path must stay as fast as the hit path.
- ``publish_under_load`` — reads while a nightly delta publishes
  mid-run; the auditor asserts zero mixed-version answers.
- ``multi_tenant`` — three weighted tenant namespaces sharing one
  cluster, reported per tenant.
- ``churn_world`` — a world scenario: maximal alias ambiguity and
  concept-chain depth, the disambiguation-heaviest taxonomy shape.
- ``replica_chaos`` — a fault-injection scenario: a replica is killed
  mid-replay (missing the nightly publish), restarts stale, and must
  rejoin through probe-time auto-resync while the wire drops, delays
  and 5xxes a slice of all calls; zero mixed-version answers and full
  content-hash convergence are the gates.
- ``dual_publisher`` — two builders publish the same nightly delta: the
  second publish must merge (content hashes converge, no fork), and a
  replica that was down for the first publish resyncs to the same
  bytes.

Scenarios registered here are frozen specs; ``register_scenario`` lets
tests and downstream code add their own under the same contract.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.faults import FaultSpec, ReplicaCrash, WireFaults
from repro.workloads.spec import (
    ArrivalSpec,
    KeyPopularity,
    Scenario,
    TrafficSpec,
    WorldSpec,
)

_SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Register *scenario* under its name; refuses silent redefinition."""
    if scenario.name in _SCENARIOS and not replace:
        raise WorkloadError(
            f"scenario {scenario.name!r} is already registered "
            "(pass replace=True to redefine)"
        )
    _SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_names() -> tuple[str, ...]:
    return tuple(sorted(_SCENARIOS))


def get_scenario(name: str) -> Scenario:
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(scenario_names())
        raise WorkloadError(
            f"unknown scenario {name!r}; known scenarios: {known}"
        ) from None


def builtin_scenarios() -> tuple[Scenario, ...]:
    """The ten built-ins, in registration (benchmark) order."""
    return tuple(
        _SCENARIOS[name] for name in _BUILTIN_ORDER
    )


register_scenario(Scenario(
    name="steady_table2",
    description="Table-II API mix, steady 250/s open loop, 5% misses",
    traffic=TrafficSpec(
        n_calls=400,
        arrival=ArrivalSpec(kind="steady", rate_per_s=250.0),
    ),
    world=WorldSpec(n_entities=300),
    seed=11,
))

register_scenario(Scenario(
    name="zipf_hot",
    description="zipf-skewed hot keys (s=1.3): few mentions, most traffic",
    traffic=TrafficSpec(
        n_calls=400,
        popularity=KeyPopularity(kind="zipf", zipf_exponent=1.3),
        arrival=ArrivalSpec(kind="steady", rate_per_s=250.0),
    ),
    world=WorldSpec(n_entities=300),
    seed=12,
))

register_scenario(Scenario(
    name="burst",
    description="5x arrival bursts every 2s: p99 and lateness under spikes",
    traffic=TrafficSpec(
        n_calls=400,
        arrival=ArrivalSpec(
            kind="burst", rate_per_s=150.0,
            burst_every_s=1.0, burst_seconds=0.25, burst_multiplier=5.0,
        ),
    ),
    world=WorldSpec(n_entities=300),
    seed=13,
))

register_scenario(Scenario(
    name="batch_heavy",
    description="gateway batches of 8-32 through the *_batch APIs",
    traffic=TrafficSpec(
        n_calls=600,
        batch_sizes=((8, 0.4), (16, 0.4), (32, 0.2)),
        arrival=ArrivalSpec(kind="steady", rate_per_s=40.0),
    ),
    world=WorldSpec(n_entities=300),
    seed=14,
))

register_scenario(Scenario(
    name="adversarial_miss",
    description="20% unknown + 20% near-miss mentions: the miss path",
    traffic=TrafficSpec(
        n_calls=400,
        miss_rate=0.20,
        adversarial_rate=0.20,
        arrival=ArrivalSpec(kind="steady", rate_per_s=250.0),
    ),
    world=WorldSpec(n_entities=300),
    seed=15,
))

register_scenario(Scenario(
    name="publish_under_load",
    description="nightly delta publish mid-replay; zero mixed-version "
                "answers asserted",
    traffic=TrafficSpec(
        n_calls=400,
        batch_sizes=((1, 0.3), (4, 0.4), (8, 0.3)),
        arrival=ArrivalSpec(kind="steady", rate_per_s=150.0),
    ),
    world=WorldSpec(n_entities=300, churn_rate=0.25),
    seed=16,
    publish_at=0.5,
))

register_scenario(Scenario(
    name="multi_tenant",
    description="three weighted tenant namespaces on one cluster",
    traffic=TrafficSpec(
        n_calls=400,
        tenants=(("acme", 0.5), ("beta", 0.3), ("canary", 0.2)),
        arrival=ArrivalSpec(kind="diurnal", rate_per_s=250.0,
                            diurnal_period_s=1.5, diurnal_trough=0.3),
    ),
    world=WorldSpec(n_entities=300),
    seed=17,
))

register_scenario(Scenario(
    name="churn_world",
    description="max alias ambiguity + deep concept chains: the "
                "disambiguation-heaviest world",
    traffic=TrafficSpec(
        n_calls=400,
        arrival=ArrivalSpec(kind="steady", rate_per_s=250.0),
    ),
    world=WorldSpec(
        n_entities=300, alias_ambiguity=1.0, chain_depth=1.0,
        churn_rate=0.4,
    ),
    seed=18,
))

register_scenario(Scenario(
    name="replica_chaos",
    description="replica killed mid-replay restarts stale and rejoins "
                "via probe-time resync, under a lossy wire",
    traffic=TrafficSpec(
        n_calls=400,
        batch_sizes=((1, 0.3), (4, 0.4), (8, 0.3)),
        arrival=ArrivalSpec(kind="steady", rate_per_s=150.0),
    ),
    world=WorldSpec(n_entities=300, churn_rate=0.25),
    seed=19,
    publish_at=0.4,
    faults=FaultSpec(
        replicas=3,
        seed=19,
        crashes=(ReplicaCrash(replica=1, at=0.25, back_at=0.6),),
        wire=WireFaults(
            delay_rate=0.05, delay_seconds=0.002,
            drop_rate=0.02, error_rate=0.02,
        ),
        probe_after=4,
    ),
))

register_scenario(Scenario(
    name="dual_publisher",
    description="two builders publish the same nightly delta: the hub "
                "merges instead of forking, laggards resync to it",
    traffic=TrafficSpec(
        n_calls=400,
        batch_sizes=((1, 0.3), (4, 0.4), (8, 0.3)),
        arrival=ArrivalSpec(kind="steady", rate_per_s=150.0),
    ),
    world=WorldSpec(n_entities=300, churn_rate=0.25),
    seed=20,
    publish_at=0.35,
    faults=FaultSpec(
        replicas=3,
        seed=20,
        # down across the first publish; back before the republish, so
        # recovery races the second publisher the way real restarts do
        crashes=(ReplicaCrash(replica=2, at=0.2, back_at=0.55),),
        republish_at=0.7,
        probe_after=4,
    ),
))

_BUILTIN_ORDER = (
    "steady_table2",
    "zipf_hot",
    "burst",
    "batch_heavy",
    "adversarial_miss",
    "publish_under_load",
    "multi_tenant",
    "churn_world",
    "replica_chaos",
    "dual_publisher",
)
