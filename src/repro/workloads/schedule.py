"""Deterministic scenario → timestamped call schedule compilation.

:func:`compile_schedule` turns a :class:`~repro.workloads.spec.Scenario`
plus its seed into an explicit list of :class:`ScheduledCall` events:
every event carries the schedule-time offset the open-loop runner must
fire it at, the wire API, a tenant label, and the full argument batch
with per-argument expected-miss flags.

Determinism is the contract: the same scenario and seed always compile
to the same schedule, and :func:`save_schedule` writes it as canonical
JSONL (sorted keys, compact separators, ``ensure_ascii=False``,
atomic temp + ``os.replace``) so two compilations are byte-identical —
property-tested, and what makes every benchmark result attributable to
a named, reproducible input.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from random import Random

from repro.errors import WorkloadError
from repro.workloads.sampling import (
    ArgumentPools,
    PopularitySampler,
    adversarial_argument,
    unknown_argument,
)
from repro.workloads.spec import Scenario

SCHEDULE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ScheduledCall:
    """One open-loop event: fire *args* at *at_s* seconds into the run."""

    index: int
    at_s: float
    api: str
    tenant: str
    args: tuple[str, ...]
    expected_misses: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.args) != len(self.expected_misses):
            raise WorkloadError(
                f"call {self.index}: {len(self.args)} args but "
                f"{len(self.expected_misses)} miss flags"
            )
        if not self.args:
            raise WorkloadError(f"call {self.index} has no arguments")

    @property
    def batch_size(self) -> int:
        return len(self.args)

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "at": self.at_s,
            "api": self.api,
            "tenant": self.tenant,
            "args": list(self.args),
            "miss": [1 if flag else 0 for flag in self.expected_misses],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduledCall":
        try:
            return cls(
                index=int(data["index"]),
                at_s=float(data["at"]),
                api=data["api"],
                tenant=data["tenant"],
                args=tuple(data["args"]),
                expected_misses=tuple(bool(flag) for flag in data["miss"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadError(f"malformed schedule record: {exc}") from exc


@dataclass(frozen=True)
class Schedule:
    """A compiled scenario: the exact requests a run will replay."""

    scenario: str
    seed: int
    calls: tuple[ScheduledCall, ...]

    @property
    def n_events(self) -> int:
        """Open-loop dispatches (a batch is one event)."""
        return len(self.calls)

    @property
    def n_calls(self) -> int:
        """API requests (a batch of 8 counts 8)."""
        return sum(call.batch_size for call in self.calls)

    @property
    def n_expected_misses(self) -> int:
        return sum(
            sum(call.expected_misses) for call in self.calls
        )

    @property
    def duration_s(self) -> float:
        """Scheduled span: last dispatch offset in schedule seconds."""
        return self.calls[-1].at_s if self.calls else 0.0

    def tenants(self) -> tuple[str, ...]:
        return tuple(sorted({call.tenant for call in self.calls}))


def compile_schedule(
    scenario: Scenario, pools: ArgumentPools | None = None
) -> Schedule:
    """Compile *scenario* into its explicit call schedule.

    *pools* defaults to :meth:`ArgumentPools.from_world` over the
    world the scenario's own :class:`~repro.workloads.spec.WorldSpec`
    and seed generate — so compilation needs no pipeline build and two
    calls with the same inputs return identical schedules.
    """
    if pools is None:
        pools = ArgumentPools.from_world(
            scenario.world.build_world(scenario.seed)
        )
    traffic = scenario.traffic
    rng = Random(f"schedule:{scenario.name}:{scenario.seed}")
    samplers = {
        api: PopularitySampler(
            pools.pool_for(api) or ("·",), traffic.popularity,
            Random(rng.random()),
        )
        for api, _ in traffic.mix
    }
    empty_pools = {
        api for api, _ in traffic.mix if not pools.pool_for(api)
    }
    apis = [api for api, _ in traffic.mix]
    api_weights = [weight for _, weight in traffic.mix]
    sizes = [size for size, _ in traffic.batch_sizes]
    size_weights = [weight for _, weight in traffic.batch_sizes]
    tenant_names = [name for name, _ in traffic.tenants]
    tenant_weights = [weight for _, weight in traffic.tenants]

    calls: list[ScheduledCall] = []
    t = 0.0
    served = 0
    index = 0
    while served < traffic.n_calls:
        t += rng.expovariate(traffic.arrival.rate_at(t))
        api = rng.choices(apis, weights=api_weights)[0]
        tenant = rng.choices(tenant_names, weights=tenant_weights)[0]
        size = min(
            rng.choices(sizes, weights=size_weights)[0],
            traffic.n_calls - served,
        )
        args: list[str] = []
        misses: list[bool] = []
        for _ in range(size):
            argument, miss = _draw_argument(
                rng, samplers[api], api in empty_pools, traffic, tenant
            )
            args.append(argument)
            misses.append(miss)
        calls.append(
            ScheduledCall(
                index=index,
                at_s=t,
                api=api,
                tenant=tenant,
                args=tuple(args),
                expected_misses=tuple(misses),
            )
        )
        served += size
        index += 1
    return Schedule(scenario=scenario.name, seed=scenario.seed,
                    calls=tuple(calls))


def _draw_argument(
    rng: Random,
    sampler: PopularitySampler,
    pool_empty: bool,
    traffic,
    tenant: str,
) -> tuple[str, bool]:
    gate = rng.random()
    if pool_empty or gate < traffic.miss_rate:
        return unknown_argument(rng, tenant), True
    if gate < traffic.miss_rate + traffic.adversarial_rate:
        return adversarial_argument(rng, sampler.hot_keys), True
    return sampler.draw(), False


# -- canonical JSONL persistence ----------------------------------------------


def dumps_schedule(schedule: Schedule) -> str:
    """The canonical byte-stable JSONL text of *schedule*."""
    header = {
        "format_version": SCHEDULE_FORMAT_VERSION,
        "scenario": schedule.scenario,
        "seed": schedule.seed,
        "n_events": schedule.n_events,
        "n_calls": schedule.n_calls,
    }
    lines = [json.dumps(header, ensure_ascii=False, sort_keys=True,
                        separators=(",", ":"))]
    for call in schedule.calls:
        lines.append(
            json.dumps(call.as_dict(), ensure_ascii=False, sort_keys=True,
                       separators=(",", ":"))
        )
    return "\n".join(lines) + "\n"


def save_schedule(schedule: Schedule, path: str | Path) -> None:
    """Write the canonical JSONL atomically (temp + ``os.replace``)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(target.name + ".tmp")
    temp.write_text(dumps_schedule(schedule), encoding="utf-8")
    os.replace(temp, target)


def load_schedule(path: str | Path) -> Schedule:
    """Load a schedule JSONL written by :func:`save_schedule`."""
    source = Path(path)
    lines = source.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise WorkloadError(f"{source} is empty, not a schedule")
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        raise WorkloadError(f"{source} has a malformed header: {exc}") from exc
    version = header.get("format_version") if isinstance(header, dict) else None
    if not isinstance(version, int) or isinstance(version, bool):
        raise WorkloadError(
            f"{source} header lacks an integer format_version"
        )
    if version > SCHEDULE_FORMAT_VERSION:
        raise WorkloadError(
            f"{source} is schedule format v{version}; this build reads "
            f"up to v{SCHEDULE_FORMAT_VERSION}"
        )
    calls = []
    for line in lines[1:]:
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise WorkloadError(
                f"{source} has a malformed record: {exc}"
            ) from exc
        calls.append(ScheduledCall.from_dict(record))
    schedule = Schedule(
        scenario=header.get("scenario", ""),
        seed=int(header.get("seed", 0)),
        calls=tuple(calls),
    )
    if schedule.n_calls != header.get("n_calls", schedule.n_calls):
        raise WorkloadError(
            f"{source} header says {header['n_calls']} calls but the body "
            f"carries {schedule.n_calls}"
        )
    return schedule
