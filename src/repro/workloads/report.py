"""Per-scenario result reporting into the shared perf trajectory.

``benchmarks/out/BENCH_parallel.json`` is the perf file every PR's
benchmarks append to and regress against.  This module owns the two
rules every writer must follow:

- the parent directory is created if missing (``mkdir -p``), and
- updates are **atomic**: read-merge, write to a temp file in the same
  directory, ``os.replace`` — a crashed benchmark can never leave a
  truncated JSON behind for the next run to choke on.

Workload scenario entries land under the ``"workload_scenarios"`` key
as ``{scenario: {target: {p50/p95/p99/throughput/...}}}`` so every
scenario × target pair has its own regressable line.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import WorkloadError
from repro.workloads.runner import RunReport

#: The section scenario results land under in BENCH_parallel.json.
SCENARIO_SECTION = "workload_scenarios"


def merge_bench_entry(path: str | Path, key: str, payload: dict) -> dict:
    """Atomically merge ``{key: payload}`` into the JSON file at *path*.

    Returns the merged document.  Missing parent directories are
    created; an existing file that is not valid JSON raises rather
    than being silently clobbered.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    data: dict = {}
    if target.exists():
        data = json.loads(target.read_text(encoding="utf-8"))
        if not isinstance(data, dict):
            raise WorkloadError(f"{target} does not hold a JSON object")
    data[key] = payload
    temp = target.with_name(target.name + ".tmp")
    temp.write_text(
        json.dumps(data, ensure_ascii=False, indent=2), encoding="utf-8"
    )
    os.replace(temp, target)
    return data


def scenario_entry(report: RunReport) -> dict:
    """The regressable per-scenario line a :class:`RunReport` boils to."""
    full = report.as_dict()
    entry = {
        "n_calls": full["n_calls"],
        "n_events": full["n_events"],
        "throughput_calls_per_s": full["throughput_calls_per_s"],
        "error_rate": full["error_rate"],
        "hit_rate": full["hit_rate"],
        "expected_misses": full["expected_misses"],
        "wall_seconds": full["wall_seconds"],
        "lateness_p95_seconds": full["lateness"]["p95_seconds"],
        "per_api": full["per_api"],
    }
    if full["audit"] is not None:
        entry["mixed_version_answers"] = full["audit"]["mixed_answers"]
        entry["version_matches"] = full["audit"]["matched"]
    if full["per_tenant_calls"] and list(full["per_tenant_calls"]) != [
        "default"
    ]:
        entry["per_tenant_calls"] = full["per_tenant_calls"]
    convergence = full.get("convergence")
    if convergence is not None:
        entry["converged"] = convergence["converged"]
        entry["resyncs"] = convergence["resyncs"]
    per_hop = full.get("per_hop")
    if per_hop:
        entry["per_hop"] = per_hop
        entry["traced_calls"] = full["traced_calls"]
    return entry


def append_scenario_entry(path: str | Path, report: RunReport) -> dict:
    """Merge one scenario × target result into the perf trajectory."""
    target = Path(path)
    section: dict = {}
    if target.exists():
        data = json.loads(target.read_text(encoding="utf-8"))
        if isinstance(data, dict):
            existing = data.get(SCENARIO_SECTION)
            if isinstance(existing, dict):
                section = existing
    scenario = section.setdefault(report.scenario, {})
    scenario[report.target] = scenario_entry(report)
    return merge_bench_entry(target, SCENARIO_SECTION, section)


def render_run_report(report: RunReport) -> str:
    """A human-readable table of one replay (for the CLI and benches)."""
    from repro.eval.report import render_table

    full = report.as_dict()
    rows = []
    for api, entry in full["per_api"].items():
        rows.append([
            api,
            str(entry["calls"]),
            f"{entry['hit_rate']:.2f}",
            f"{entry['p50_seconds'] * 1e6:,.0f}",
            f"{entry['p95_seconds'] * 1e6:,.0f}",
            f"{entry['p99_seconds'] * 1e6:,.0f}",
        ])
    rows.append([
        "(all)",
        str(full["n_calls"]),
        f"{full['hit_rate']:.2f}",
        "", "", "",
    ])
    lines = [
        render_table(
            ["api", "calls", "hit", "p50µs", "p95µs", "p99µs"],
            rows,
            title=(
                f"{report.scenario} @ {report.target} — "
                f"{full['throughput_calls_per_s']:,.0f} calls/s, "
                f"errors {full['error_rate']:.1%}, "
                f"lateness p95 {full['lateness']['p95_seconds'] * 1e3:.1f}ms"
            ),
        )
    ]
    if full["audit"] is not None:
        lines.append(
            f"version audit: matched {full['audit']['matched']}, "
            f"mixed answers {full['audit']['mixed_answers']}"
        )
    convergence = full.get("convergence")
    if convergence is not None:
        resyncs = convergence["resyncs"]
        lines.append(
            f"chaos convergence: {'yes' if convergence['converged'] else 'NO'}"
            f" (probe resyncs {resyncs['probe_resyncs']}, "
            f"chained {resyncs['resync_chains']}, "
            f"healed {resyncs['resync_heals']})"
        )
    if "per_tenant_calls" in scenario_entry(report):
        tenants = ", ".join(
            f"{tenant}={count}"
            for tenant, count in full["per_tenant_calls"].items()
        )
        lines.append(f"per-tenant calls: {tenants}")
    per_hop = full.get("per_hop")
    if per_hop:
        hops = ", ".join(
            f"{component} p95 {entry['p95_s'] * 1e6:,.0f}µs"
            for component, entry in per_hop.items()
        )
        lines.append(
            f"per-hop ({full['traced_calls']} traced): {hops}"
        )
    return "\n".join(lines)
