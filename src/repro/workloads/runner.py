"""Open-loop schedule replay against any ``BatchedServingAPI`` front.

:func:`run_schedule` drives a compiled
:class:`~repro.workloads.schedule.Schedule` the way production traffic
arrives — *open loop*: every event fires at its scheduled offset
whether or not earlier requests have completed, so a slow server builds
a visible backlog instead of silently throttling the load.  The
dispatcher thread sleeps to each event's offset and hands it to a
bounded worker pool; workers measure per-request latency, and the gap
between an event's scheduled and actual start is recorded as
**lateness** — reported, never silently absorbed, because a saturated
runner would otherwise masquerade as a fast server.

The target is anything speaking the canonical
:class:`~repro.taxonomy.service.BatchedServingAPI` surface: the
in-process :class:`~repro.taxonomy.service.TaxonomyService`, the
sharded store, the :class:`~repro.serving.router.ReplicatedRouter`, or
a :class:`~repro.serving.client.TaxonomyClient` pointed at a live
``cn-probase serve`` process (:func:`serve_subprocess` spawns one).

Mixed read + publish runs: :class:`TimedAction` schedules a
``publish_delta`` (or any admin callable) at an offset inside the
replay, and a :class:`VersionAuditor` armed with the before/after
frozen views checks every batched answer against exactly one version —
the publish_under_load acceptance gate is its ``mixed_answers == 0``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro.errors import WorkloadError
from repro.obs import (
    TraceIdSource,
    get_hub,
    per_hop_breakdown,
    trace_context,
)
from repro.taxonomy.service import APILatency, WIRE_API_METHODS
from repro.workloads.schedule import Schedule, ScheduledCall

#: Store lookup method per wire API (the single source of truth is
#: WIRE_API_METHODS; index 0 is the single-key spelling every
#: ReadOptimizedTaxonomy exposes directly).
_LOOKUPS = {api: names[0] for api, names in WIRE_API_METHODS.items()}

#: The wall-clock sleep hook this module lends out.  The determinism
#: lint bans ``time`` everywhere in the package except here, so
#: anything that must actually sleep (e.g. an injected wire-fault
#: delay in :mod:`repro.workloads.faults`) receives this hook instead
#: of importing the clock itself.
wall_sleep = time.sleep


@dataclass
class TimedAction:
    """A side action fired at *at_s* schedule seconds into the run."""

    at_s: float
    label: str
    action: object  # zero-arg callable
    fired_at_s: float | None = None
    seconds: float | None = None
    error: str | None = None

    def as_dict(self) -> dict:
        return {
            "at_s": self.at_s,
            "label": self.label,
            "fired_at_s": self.fired_at_s,
            "seconds": self.seconds,
            "error": self.error,
        }


class VersionAuditor:
    """Checks every answered batch against exactly one taxonomy version.

    Armed with ``(version_label, read_view)`` pairs — typically the
    frozen before/after views of a publish-under-load run.  A batch
    whose answers match no single version position-for-position is a
    **mixed-version answer**, the torn read the serving layer promises
    can never happen.
    """

    def __init__(self, versions) -> None:
        if not versions:
            raise WorkloadError("auditor needs at least one version view")
        self._versions = list(versions)
        self._lock = threading.Lock()
        self.matched: dict[str, int] = {label: 0 for label, _ in self._versions}
        self.mixed_answers = 0
        self.mixed_samples: list[dict] = []

    def check(self, call: ScheduledCall, results: list[list[str]]) -> None:
        for label, view in self._versions:
            lookup = getattr(view, _LOOKUPS[call.api])
            if all(
                result == lookup(argument)
                for argument, result in zip(call.args, results)
            ):
                with self._lock:
                    self.matched[label] += 1
                return
        with self._lock:
            self.mixed_answers += 1
            if len(self.mixed_samples) < 8:
                self.mixed_samples.append(
                    {"index": call.index, "api": call.api,
                     "args": list(call.args)}
                )

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "matched": dict(self.matched),
                "mixed_answers": self.mixed_answers,
                "mixed_samples": list(self.mixed_samples),
            }


@dataclass
class RunReport:
    """What one schedule replay measured."""

    scenario: str
    target: str
    n_events: int = 0
    n_calls: int = 0
    n_errors: int = 0
    n_hits: int = 0
    n_expected_misses: int = 0
    wall_seconds: float = 0.0
    time_scale: float = 1.0
    schedule_duration_s: float = 0.0
    per_api: dict[str, APILatency] = field(default_factory=dict)
    lateness: APILatency = field(default_factory=APILatency)
    per_tenant_calls: dict[str, int] = field(default_factory=dict)
    error_samples: list[str] = field(default_factory=list)
    actions: list[TimedAction] = field(default_factory=list)
    audit: dict | None = None
    #: Chaos runs only: the post-settle cluster convergence report
    #: (see :meth:`repro.workloads.faults.ChaosCluster.convergence`).
    convergence: dict | None = None
    #: Trace-sampled runs only: per-component latency quantiles for the
    #: sampled requests (see :func:`repro.obs.per_hop_breakdown`).
    per_hop: dict | None = None
    traced_calls: int = 0

    @property
    def throughput_calls_per_s(self) -> float:
        return self.n_calls / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def error_rate(self) -> float:
        return self.n_errors / self.n_events if self.n_events else 0.0

    @property
    def hit_rate(self) -> float:
        return self.n_hits / self.n_calls if self.n_calls else 0.0

    def as_dict(self) -> dict:
        apis = {}
        for api, ledger in sorted(self.per_api.items()):
            p50, p95, p99 = ledger.quantiles(0.50, 0.95, 0.99)
            apis[api] = {
                "calls": ledger.calls,
                "hit_rate": ledger.hit_rate,
                "mean_seconds": ledger.mean_seconds,
                "p50_seconds": p50,
                "p95_seconds": p95,
                "p99_seconds": p99,
                "max_seconds": ledger.max_seconds,
            }
        late_p50, late_p95, late_p99 = self.lateness.quantiles(
            0.50, 0.95, 0.99
        )
        payload = {
            "scenario": self.scenario,
            "target": self.target,
            "n_events": self.n_events,
            "n_calls": self.n_calls,
            "n_errors": self.n_errors,
            "error_rate": self.error_rate,
            "hit_rate": self.hit_rate,
            "expected_misses": self.n_expected_misses,
            "wall_seconds": self.wall_seconds,
            "time_scale": self.time_scale,
            "schedule_duration_s": self.schedule_duration_s,
            "throughput_calls_per_s": self.throughput_calls_per_s,
            "per_api": apis,
            "lateness": {
                "p50_seconds": late_p50,
                "p95_seconds": late_p95,
                "p99_seconds": late_p99,
                "max_seconds": self.lateness.max_seconds,
            },
            "per_tenant_calls": dict(sorted(self.per_tenant_calls.items())),
            "errors": list(self.error_samples),
            "actions": [action.as_dict() for action in self.actions],
            "audit": self.audit,
        }
        if self.convergence is not None:
            payload["convergence"] = self.convergence
        if self.per_hop is not None:
            payload["per_hop"] = self.per_hop
            payload["traced_calls"] = self.traced_calls
        return payload


def run_schedule(
    front,
    schedule: Schedule,
    *,
    target_name: str = "service",
    workers: int = 8,
    time_scale: float = 1.0,
    actions: list[TimedAction] | None = None,
    auditor: VersionAuditor | None = None,
    trace_every: int = 0,
    hub=None,
    gather_spans=None,
) -> RunReport:
    """Replay *schedule* open-loop against *front*; returns the report.

    *time_scale* > 1 compresses the schedule (offsets divide by it) so
    a 60-second trace replays in seconds without changing the request
    sequence.  *actions* fire at their (scaled) offsets on their own
    threads, so a slow ``publish_delta`` never stalls the dispatcher.

    With ``trace_every=N`` every Nth scheduled event runs inside a
    minted trace context, so the instrumented serving layers record
    spans into *hub* (the process default when omitted); the report
    then carries the sampled ``per_hop`` latency breakdown.
    *gather_spans*, when given, is a zero-arg callable returning extra
    span dicts from across a process boundary (an HTTP target's
    ``fetch_traces``) to fold into the same breakdown.
    """
    if workers < 1:
        raise WorkloadError(f"workers must be >= 1, got {workers}")
    if time_scale <= 0:
        raise WorkloadError(f"time_scale must be positive, got {time_scale}")
    if trace_every < 0:
        raise WorkloadError(f"trace_every must be >= 0, got {trace_every}")
    if not schedule.calls:
        raise WorkloadError("schedule has no calls to replay")
    if hub is None:
        hub = get_hub()
    trace_source = TraceIdSource("w")
    minted_ids: set[str] = set()
    report = RunReport(
        scenario=schedule.scenario,
        target=target_name,
        time_scale=time_scale,
        schedule_duration_s=schedule.duration_s,
    )
    report.n_expected_misses = schedule.n_expected_misses
    singles = {api: getattr(front, names[0])
               for api, names in WIRE_API_METHODS.items()}
    batches = {api: getattr(front, names[1])
               for api, names in WIRE_API_METHODS.items()}
    lock = threading.Lock()
    action_threads: list[threading.Thread] = []

    def serve(
        call: ScheduledCall,
        target_t: float,
        start: float,
        trace_id: str | None = None,
    ) -> None:
        begun = perf_counter()
        lateness = max(0.0, (begun - start) - target_t)
        try:
            if trace_id is not None:
                with trace_context(trace_id):
                    if call.batch_size == 1:
                        results = [singles[call.api](call.args[0])]
                    else:
                        results = batches[call.api](list(call.args))
            elif call.batch_size == 1:
                results = [singles[call.api](call.args[0])]
            else:
                results = batches[call.api](list(call.args))
        except Exception as exc:  # measured, never raised mid-load
            with lock:
                report.n_errors += 1
                report.lateness.observe(lateness, False)
                if len(report.error_samples) < 8:
                    report.error_samples.append(
                        f"{call.api}#{call.index}: {exc}"
                    )
            return
        seconds = perf_counter() - begun
        if auditor is not None and call.batch_size > 1:
            auditor.check(call, results)
        hits = sum(1 for result in results if result)
        per_call = seconds / call.batch_size
        with lock:
            ledger = report.per_api.setdefault(call.api, APILatency())
            for result in results:
                ledger.observe(per_call, bool(result))
            report.lateness.observe(lateness, False)
            report.n_hits += hits
            report.per_tenant_calls[call.tenant] = (
                report.per_tenant_calls.get(call.tenant, 0) + call.batch_size
            )

    timeline: list[tuple[float, object]] = [
        (call.at_s / time_scale, call) for call in schedule.calls
    ]
    for action in actions or ():
        timeline.append((action.at_s / time_scale, action))
    timeline.sort(key=lambda item: (item[0], isinstance(item[1], TimedAction)))

    n_served = 0
    with ThreadPoolExecutor(max_workers=workers) as pool:
        start = perf_counter()
        for target_t, item in timeline:
            delay = target_t - (perf_counter() - start)
            if delay > 0:
                time.sleep(delay)
            if isinstance(item, TimedAction):
                thread = threading.Thread(
                    target=_fire_action, args=(item, start), daemon=True
                )
                thread.start()
                action_threads.append(thread)
                report.actions.append(item)
            else:
                trace_id = None
                if trace_every and n_served % trace_every == 0:
                    trace_id = trace_source.mint()
                    minted_ids.add(trace_id)
                n_served += 1
                # lint: allow[pickle-safety] thread pool — no process boundary
                pool.submit(serve, item, target_t, start, trace_id)
    for thread in action_threads:
        thread.join(timeout=60.0)
    report.wall_seconds = perf_counter() - start
    report.n_events = schedule.n_events
    report.n_calls = schedule.n_calls
    if auditor is not None:
        report.audit = auditor.as_dict()
    if minted_ids:
        report.traced_calls = len(minted_ids)
        report.per_hop = _sampled_per_hop(hub, minted_ids, gather_spans)
    return report


def _sampled_per_hop(hub, minted_ids: set[str], gather_spans) -> dict:
    """Fold local hub spans + any remote spans into one hop breakdown."""
    from repro.obs import _span_field

    spans: list = [
        span for span in hub.traces.spans()
        if span.trace_id in minted_ids
    ]
    if gather_spans is not None:
        try:
            remote = gather_spans()
        except Exception:  # a dead server must not void the replay
            remote = []
        spans.extend(
            span for span in remote
            if _span_field(span, "trace_id") in minted_ids
        )
    return per_hop_breakdown(spans)


def _fire_action(action: TimedAction, start: float) -> None:
    action.fired_at_s = perf_counter() - start
    begun = perf_counter()
    try:
        action.action()
    except Exception as exc:  # reported, not raised mid-load
        action.error = str(exc)
    action.seconds = perf_counter() - begun


def replay_calls(front, calls, *, batch_size: int = 1):
    """Closed-loop replay of sampled calls against a serving front.

    *front* is anything exposing the canonical
    :class:`~repro.taxonomy.service.BatchedServingAPI` surface — the
    in-process service, the sharded store, the replica router or the
    HTTP client.  *calls* is any iterable of objects with ``api`` and
    ``argument`` attributes (:class:`~repro.workloads.sampling.SampledCall`
    or the legacy ``APICall``).  With ``batch_size > 1`` requests are
    buffered per API and served through the ``*_batch`` variants, the
    way a real gateway amortises round trips.  Returns the front's
    cumulative ``metrics`` ledger when it has one.

    For timestamped open-loop replay with latency/lateness percentiles
    use :func:`run_schedule` instead.
    """
    if batch_size < 1:
        raise WorkloadError(f"batch_size must be >= 1, got {batch_size}")
    singles = {api: getattr(front, names[0])
               for api, names in WIRE_API_METHODS.items()}
    batches = {api: getattr(front, names[1])
               for api, names in WIRE_API_METHODS.items()}
    buffers: dict[str, list[str]] = {name: [] for name in singles}
    for call in calls:
        if batch_size == 1:
            singles[call.api](call.argument)
            continue
        buffer = buffers[call.api]
        buffer.append(call.argument)
        if len(buffer) >= batch_size:
            batches[call.api](buffer)
            buffer.clear()
    for name, buffer in buffers.items():
        if buffer:
            batches[name](buffer)
    return getattr(front, "metrics", None)


# -- serving targets ----------------------------------------------------------

TARGET_KINDS = ("service", "sharded", "router", "http")


@dataclass
class RunTarget:
    """One serving front to replay against, plus its publish hook."""

    name: str
    front: object
    publish: object  # callable(delta, base_version_id, version_int) | None
    close: object = None  # zero-arg callable
    #: zero-arg callable returning remote span dicts (http targets: the
    #: server process's trace ring via ``fetch_traces``); None when the
    #: front records its spans into the local hub already.
    gather_spans: object = None

    def __enter__(self) -> "RunTarget":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.close is not None:
            self.close()


def make_target(
    kind: str,
    taxonomy,
    *,
    shards: int = 2,
    replicas: int = 2,
    port: int = 0,
) -> RunTarget:
    """Build a serving front of *kind* over *taxonomy*.

    ``service`` is the in-process facade, ``sharded`` the key-hashed
    store, ``router`` replica routing over it, and ``http`` a real
    ``cn-probase serve`` subprocess behind a
    :class:`~repro.serving.client.TaxonomyClient`.
    """
    if kind == "service":
        from repro.taxonomy.service import TaxonomyService

        service = TaxonomyService(taxonomy)
        return RunTarget(
            name=kind,
            front=service,
            publish=lambda delta, base, version: service.publish_delta(
                delta, base_version=base, version=version
            ),
        )
    if kind == "sharded":
        from repro.serving import ShardedSnapshotStore

        store = ShardedSnapshotStore(taxonomy, n_shards=shards)
        return RunTarget(
            name=kind,
            front=store,
            publish=lambda delta, base, version: store.publish_delta(
                delta, base_version=base, version=version
            ),
        )
    if kind == "router":
        from repro.serving import ReplicatedRouter, ShardedSnapshotStore

        store = ShardedSnapshotStore(taxonomy, n_shards=shards)
        router = ReplicatedRouter.from_store(store, replicas=replicas)
        return RunTarget(
            name=kind,
            front=router,
            publish=lambda delta, base, version: router.publish_delta(
                delta, base_version=base, version=version
            ),
        )
    if kind == "http":
        return _http_target(taxonomy, shards=shards, replicas=replicas,
                            port=port)
    raise WorkloadError(
        f"unknown target kind {kind!r}; known: {TARGET_KINDS}"
    )


def _http_target(taxonomy, *, shards: int, replicas: int, port: int) -> RunTarget:
    from repro.serving import TaxonomyClient

    tmp = tempfile.TemporaryDirectory(prefix="cn-probase-workload-")
    taxonomy_path = Path(tmp.name) / "serving.jsonl"
    taxonomy.save(taxonomy_path)
    admin_token = "workload-admin"
    stack = serve_subprocess(
        taxonomy_path,
        shards=shards,
        replicas=replicas,
        port=port,
        admin_token=admin_token,
    )
    try:
        url, process = stack.__enter__()
    except BaseException:
        tmp.cleanup()
        raise
    client = TaxonomyClient(url, admin_token=admin_token)

    def close() -> None:
        try:
            stack.__exit__(None, None, None)
        finally:
            tmp.cleanup()

    return RunTarget(
        name="http",
        front=client,
        publish=lambda delta, base, version: client.apply_delta_wire(
            delta,
            base_version=None if base is None else f"v{base}",
            version=version,
        ),
        close=close,
        gather_spans=lambda: client.fetch_traces()["spans"],
    )


READY_TIMEOUT_SECONDS = 30.0


@contextmanager
def serve_subprocess(
    taxonomy_path: str | Path,
    *,
    shards: int = 2,
    replicas: int = 1,
    port: int = 0,
    admin_token: str | None = None,
    timeout: float = READY_TIMEOUT_SECONDS,
):
    """A live ``cn-probase serve`` subprocess, ready and pid-validated.

    Yields ``(base_url, process)``; shuts the server down (kill as the
    fallback) on exit.  Readiness follows the ``--ready-file``
    protocol: the JSON marker is trusted only when its pid matches the
    subprocess actually spawned, so a stale file from a crashed
    predecessor never passes.
    """
    with tempfile.TemporaryDirectory(prefix="cn-probase-serve-") as tmp:
        ready_file = Path(tmp) / "ready.json"
        argv = [
            sys.executable, "-m", "repro.cli", "serve", str(taxonomy_path),
            "--shards", str(shards), "--replicas", str(replicas),
            "--port", str(port), "--ready-file", str(ready_file),
        ]
        if admin_token:
            argv += ["--admin-token", admin_token]
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            argv, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        try:
            yield _wait_for_ready(ready_file, process, timeout), process
        finally:
            if process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()


def _wait_for_ready(
    ready_file: Path, process: subprocess.Popen, timeout: float
) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise WorkloadError(
                f"cn-probase serve exited early with {process.returncode}:\n"
                f"{process.stdout.read()}"
            )
        if ready_file.exists():
            try:
                payload = json.loads(ready_file.read_text())
            except (ValueError, OSError):
                payload = None  # mid-write or garbage: keep waiting
            if isinstance(payload, dict) and payload.get("pid") == process.pid:
                return f"http://{payload['host']}:{payload['port']}"
        time.sleep(0.05)
    raise WorkloadError(f"cn-probase serve not ready within {timeout}s")
