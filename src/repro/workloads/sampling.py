"""Seeded samplers: argument pools, key popularity, the Table-II stream.

Everything here draws from an explicit ``random.Random`` — no module
state, no wall clock — because the schedule compiler's contract is that
the same ``(Scenario, seed)`` always produces byte-identical output
(a lint test enforces it package-wide).

:class:`TableIICallStream` is the exact generation algorithm the
deprecated :class:`~repro.taxonomy.api.WorkloadGenerator` used — same
RNG consumption order, so the shim's call stream is reproducible here
call for call — with one deliberate fix: an empty argument pool no
longer yields the constant ``"空"`` (which silently under-counted
misses) but a seeded unknown-mention marker flagged ``expected_miss``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from itertools import accumulate
from random import Random
from typing import Sequence

from repro.errors import WorkloadError
from repro.workloads.spec import KeyPopularity

#: Prefix of generated out-of-taxonomy arguments (kept from the legacy
#: generator so dashboards keyed on it keep matching).
UNKNOWN_PREFIX = "未知词"

#: Suffixes for adversarial near-miss mentions: a real key perturbed by
#: one trailing character, the plausible-looking garbage production
#: traffic actually contains.
ADVERSARIAL_SUFFIXES = ("氏", "君", "号", "社", "閣")


def unknown_argument(rng: Random, tenant: str | None = None) -> str:
    """A seeded out-of-taxonomy argument, optionally tenant-namespaced."""
    marker = f"{UNKNOWN_PREFIX}{rng.randint(0, 10_000)}"
    if tenant and tenant != "default":
        return f"{tenant}·{marker}"
    return marker


def adversarial_argument(rng: Random, pool: Sequence[str]) -> str:
    """A near-miss: a real pool key with one seeded suffix character."""
    return rng.choice(pool) + rng.choice(ADVERSARIAL_SUFFIXES)


@dataclass(frozen=True)
class ArgumentPools:
    """The three argument universes, sorted for determinism."""

    mentions: tuple[str, ...]
    entities: tuple[str, ...]
    concepts: tuple[str, ...]

    _BY_API = {
        "men2ent": "mentions",
        "getConcept": "entities",
        "getEntity": "concepts",
    }

    def pool_for(self, api: str) -> tuple[str, ...]:
        try:
            return getattr(self, self._BY_API[api])
        except KeyError:
            raise WorkloadError(
                f"unknown API {api!r}; known: {sorted(self._BY_API)}"
            ) from None

    @classmethod
    def from_taxonomy(cls, taxonomy) -> "ArgumentPools":
        """Pools drawn from a built store (what the legacy shim samples).

        One pass over one materialisation of ``relations()`` collects
        all three pools — the taxonomy can hold millions of relations,
        so it is never scanned per pool.
        """
        entity_ids: set[str] = set()
        concepts: set[str] = set()
        for relation in taxonomy.relations():
            concepts.add(relation.hypernym)
            if relation.hyponym_kind == "entity":
                entity_ids.add(relation.hyponym)
        entities = sorted(entity_ids)
        mentions = sorted(
            {
                mention
                for entity in (taxonomy.entity(p) for p in entities)
                if entity is not None
                for mention in entity.mentions
            }
        )
        return cls(
            mentions=tuple(mentions),
            entities=tuple(entities),
            concepts=tuple(sorted(concepts)),
        )

    @classmethod
    def from_world(cls, world) -> "ArgumentPools":
        """Pools drawn from the ground-truth world (no pipeline needed).

        What the schedule compiler uses: compiling a scenario must not
        require running the build pipeline, and real traffic queries
        the *world's* surface forms anyway — including the ones the
        build missed, which is exactly the natural miss channel.
        """
        return cls(
            mentions=tuple(sorted(world.mention_senses())),
            entities=tuple(sorted(e.page_id for e in world.entities)),
            concepts=tuple(sorted(world.concepts)),
        )


class PopularitySampler:
    """Draws keys from one pool under a :class:`KeyPopularity` model.

    For ``zipf`` the pool is shuffled once with the sampler's own rng
    (so *which* keys are hot is itself seeded) and rank ``r`` gets
    weight ``r ** -s``; draws then binary-search the cumulative weight
    table — O(log n) per draw instead of ``random.choices``'s O(n)
    weight scan per call.
    """

    def __init__(
        self, pool: Sequence[str], popularity: KeyPopularity, rng: Random
    ) -> None:
        if not pool:
            raise WorkloadError("popularity sampler needs a non-empty pool")
        self._rng = rng
        self._pool = list(pool)
        self._cumulative: list[float] | None = None
        if popularity.kind == "zipf":
            rng.shuffle(self._pool)  # seeded hot-key identity
            weights = [
                rank ** -popularity.zipf_exponent
                for rank in range(1, len(self._pool) + 1)
            ]
            self._cumulative = list(accumulate(weights))

    def draw(self) -> str:
        if self._cumulative is None:
            return self._rng.choice(self._pool)
        point = self._rng.random() * self._cumulative[-1]
        return self._pool[bisect.bisect_left(self._cumulative, point)]

    def top_mass(self, top_k: int) -> float:
        """Theoretical probability mass of the *top_k* hottest keys."""
        if self._cumulative is None:
            return min(1.0, top_k / len(self._pool))
        return self._cumulative[min(top_k, len(self._pool)) - 1] / \
            self._cumulative[-1]

    @property
    def hot_keys(self) -> tuple[str, ...]:
        """Keys in descending popularity (pool order when uniform)."""
        return tuple(self._pool)


@dataclass(frozen=True)
class SampledCall:
    """One drawn request: API, argument, and whether a miss was intended."""

    api: str
    argument: str
    expected_miss: bool


class TableIICallStream:
    """The legacy one-at-a-time request stream, seeded and mix-weighted.

    RNG consumption per call is exactly the deprecated generator's:
    one ``choices`` for the API, one ``random()`` for the miss gate,
    then either ``randint`` (miss) or ``choice`` (pool draw) — so the
    :class:`~repro.taxonomy.api.WorkloadGenerator` shim reproduces its
    historical streams bit for bit.  The one behavioural change: when
    a pool is empty the stream emits a seeded unknown marker flagged
    ``expected_miss`` instead of the silent constant ``"空"``.
    """

    def __init__(
        self,
        pools: ArgumentPools,
        *,
        seed: int = 0,
        mix: dict[str, float] | None = None,
        miss_rate: float = 0.05,
    ) -> None:
        from repro.taxonomy.api import PAPER_API_MIX

        if not 0.0 <= miss_rate <= 1.0:
            raise WorkloadError(
                f"miss_rate must be a probability, got {miss_rate}"
            )
        self._pools = pools
        self._rng = Random(seed)
        self._mix = dict(mix) if mix is not None else dict(PAPER_API_MIX)
        if abs(sum(self._mix.values()) - 1.0) > 1e-6:
            raise WorkloadError(f"API mix must sum to 1, got {self._mix}")
        self._miss_rate = miss_rate

    def generate(self, n_calls: int) -> list[SampledCall]:
        if n_calls <= 0:
            raise WorkloadError(f"n_calls must be positive, got {n_calls}")
        apis = list(self._mix)
        weights = [self._mix[api] for api in apis]
        calls: list[SampledCall] = []
        for _ in range(n_calls):
            api = self._rng.choices(apis, weights=weights)[0]
            argument, expected_miss = self._argument_for(api)
            calls.append(SampledCall(api, argument, expected_miss))
        return calls

    def _argument_for(self, api: str) -> tuple[str, bool]:
        if self._rng.random() < self._miss_rate:
            return unknown_argument(self._rng), True
        pool = self._pools.pool_for(api)
        if pool:
            return self._rng.choice(pool), False
        # Empty pool: a real request still has to carry *something* —
        # emit a counted, seeded miss, never a silent constant.
        return unknown_argument(self._rng), True
