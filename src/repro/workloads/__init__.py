"""repro.workloads — the declarative scenario factory and load harness.

The paper's deployment answers tens of millions of calls a day; this
package is the missing traffic model for that scale.  Instead of one
hard-coded Table-II replay, every serving benchmark is a **named,
reproducible scenario**: a frozen, JSON-serializable spec compiled to
an explicit call schedule and replayed open-loop against any serving
front, with its own p50/p95/p99 line in the perf trajectory.

The pipeline, module by module::

    spec.py       TrafficSpec × WorldSpec → Scenario   (declarative, frozen)
    schedule.py   Scenario + seed → Schedule            (deterministic compile,
                                                         byte-identical JSONL)
    runner.py     Schedule → RunReport                  (open-loop threads,
                                                         lateness + p50/p95/p99,
                                                         publish-under-load +
                                                         mixed-version audit)
    harness.py    prepare_scenario / run_scenario       (world → build → replay)
    faults.py     FaultSpec × FaultyReplica → chaos     (kills/restarts, wire
                                                         delay/drop/5xx, dual
                                                         publishers; convergence
                                                         asserted by content hash)
    registry.py   the 10 built-in scenarios             (steady_table2, zipf_hot,
                                                         burst, batch_heavy,
                                                         adversarial_miss,
                                                         publish_under_load,
                                                         multi_tenant,
                                                         churn_world,
                                                         replica_chaos,
                                                         dual_publisher)
    report.py     RunReport → BENCH_parallel.json       (atomic, per-scenario)
    sampling.py   seeded pools / zipf / Table-II stream (no unseeded random —
                                                         lint-tested)

Determinism is the backbone contract: compiling the same ``(Scenario,
seed)`` twice produces byte-identical schedule JSONL, so a perf
regression is always attributable to the code, never the workload.

Quickstart::

    from repro.workloads import get_scenario, prepare_scenario, run_scenario

    prepared = prepare_scenario(get_scenario("zipf_hot"))
    report = run_scenario(prepared, "service")
    print(report.as_dict()["per_api"]["men2ent"]["p99_seconds"])

or from the shell: ``cn-probase workload list | compile | run``.

The deprecated :class:`~repro.taxonomy.api.WorkloadGenerator` is now a
thin shim over :class:`~repro.workloads.sampling.TableIICallStream`
(same seed → same call stream).
"""

from __future__ import annotations

from repro.workloads.faults import (
    ChaosCluster,
    FaultSpec,
    FaultyReplica,
    ReplicaCrash,
    WireFaults,
    build_chaos_cluster,
    fault_actions,
)
from repro.workloads.harness import (
    PreparedScenario,
    prepare_scenario,
    run_scenario,
)
from repro.workloads.registry import (
    builtin_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.workloads.report import (
    append_scenario_entry,
    merge_bench_entry,
    render_run_report,
)
from repro.workloads.runner import (
    RunReport,
    RunTarget,
    TARGET_KINDS,
    TimedAction,
    VersionAuditor,
    make_target,
    replay_calls,
    run_schedule,
    serve_subprocess,
)
from repro.workloads.sampling import (
    ArgumentPools,
    PopularitySampler,
    SampledCall,
    TableIICallStream,
)
from repro.workloads.schedule import (
    Schedule,
    ScheduledCall,
    compile_schedule,
    load_schedule,
    save_schedule,
)
from repro.workloads.spec import (
    ArrivalSpec,
    KeyPopularity,
    Scenario,
    TrafficSpec,
    WorldSpec,
)

__all__ = [
    "ArgumentPools",
    "ArrivalSpec",
    "ChaosCluster",
    "FaultSpec",
    "FaultyReplica",
    "KeyPopularity",
    "PopularitySampler",
    "PreparedScenario",
    "ReplicaCrash",
    "RunReport",
    "RunTarget",
    "SampledCall",
    "Scenario",
    "Schedule",
    "ScheduledCall",
    "TARGET_KINDS",
    "TableIICallStream",
    "TimedAction",
    "TrafficSpec",
    "VersionAuditor",
    "WireFaults",
    "WorldSpec",
    "append_scenario_entry",
    "build_chaos_cluster",
    "builtin_scenarios",
    "compile_schedule",
    "fault_actions",
    "get_scenario",
    "load_schedule",
    "make_target",
    "merge_bench_entry",
    "prepare_scenario",
    "register_scenario",
    "render_run_report",
    "replay_calls",
    "run_scenario",
    "run_schedule",
    "save_schedule",
    "scenario_names",
    "serve_subprocess",
]
