"""Scenario orchestration: world → build → schedule → replay → report.

:func:`prepare_scenario` does everything deterministic once per
scenario — sample the world, run the build pipeline, compile the
schedule, and (for publish-under-load scenarios) rebuild on the
churned dump and compute the :class:`~repro.taxonomy.delta.TaxonomyDelta`
between the two versions.  :func:`run_scenario` then replays the same
prepared scenario against any number of serving targets, arming the
publish action and the mixed-version auditor when the scenario asks
for them.  ``cn-probase workload run``, the benchmark suite and the
example walkthrough are all thin callers of these two functions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PipelineConfig, build_cn_probase
from repro.errors import WorkloadError
from repro.obs import fresh_hub
from repro.taxonomy.delta import TaxonomyDelta
from repro.workloads.runner import (
    RunReport,
    TimedAction,
    VersionAuditor,
    make_target,
    run_schedule,
    wall_sleep,
)
from repro.workloads.sampling import ArgumentPools
from repro.workloads.schedule import Schedule, compile_schedule
from repro.workloads.spec import Scenario


def scenario_pipeline_config() -> PipelineConfig:
    """The build config scenario worlds are compiled with.

    The abstract (neural) source is disabled: scenario worlds are small
    and rebuilt per run, and the serving surface under test is
    identical either way.
    """
    return PipelineConfig(enable_abstract=False)


@dataclass
class PreparedScenario:
    """Everything deterministic about one scenario, built once."""

    scenario: Scenario
    schedule: Schedule
    taxonomy: object
    churned_taxonomy: object = None
    delta: TaxonomyDelta | None = None

    @property
    def has_publish(self) -> bool:
        return self.delta is not None


def prepare_scenario(scenario: Scenario) -> PreparedScenario:
    """Build the world and taxonomy, compile the schedule, cut the delta."""
    world = scenario.world.build_world(scenario.seed)
    schedule = compile_schedule(scenario, ArgumentPools.from_world(world))
    taxonomy = build_cn_probase(
        world.dump(), scenario_pipeline_config()
    ).taxonomy
    churned_taxonomy = None
    delta = None
    if scenario.publish_at is not None:
        churned = scenario.world.churned_dump(world, scenario.seed + 1)
        churned_taxonomy = build_cn_probase(
            churned, scenario_pipeline_config()
        ).taxonomy
        delta = TaxonomyDelta.compute(taxonomy, churned_taxonomy)
        if delta.n_records == 0:
            raise WorkloadError(
                f"scenario {scenario.name!r} churned no relations — raise "
                "world.churn_rate or the world size"
            )
    return PreparedScenario(
        scenario=scenario,
        schedule=schedule,
        taxonomy=taxonomy,
        churned_taxonomy=churned_taxonomy,
        delta=delta,
    )


#: Default trace-sampling stride for scenario replays: every Nth
#: scheduled event runs under a minted trace id so each scenario ×
#: target entry lands a per-hop latency breakdown without taxing the
#: other N-1 requests.
TRACE_EVERY = 10


def run_scenario(
    prepared: PreparedScenario,
    target_kind: str = "service",
    *,
    workers: int = 8,
    time_scale: float = 1.0,
    shards: int = 2,
    replicas: int = 2,
    trace_every: int = TRACE_EVERY,
) -> RunReport:
    """Replay a prepared scenario against one serving target kind.

    For publish-under-load scenarios the delta publish fires at
    ``publish_at`` of the schedule span on its own thread, and every
    batched answer is audited against the frozen before/after views —
    a ``mixed_answers`` count of zero is the torn-read acceptance
    gate.

    A scenario carrying a :class:`~repro.workloads.faults.FaultSpec`
    ignores *target_kind*: faults compose with the replica router, so
    it runs against a chaos cluster (target name ``chaos``) and the
    report additionally carries the cluster's post-settle convergence
    verdict.

    Each replay runs inside a fresh :class:`~repro.obs.TelemetryHub`
    (restored afterwards) so one scenario's spans, events and counters
    never leak into the next scenario's per-hop breakdown.
    """
    scenario = prepared.scenario
    if scenario.faults is not None:
        return _run_chaos_scenario(
            prepared, workers=workers, time_scale=time_scale,
            trace_every=trace_every,
        )
    actions: list[TimedAction] = []
    auditor = None
    with fresh_hub() as hub, make_target(
        target_kind, prepared.taxonomy, shards=shards, replicas=replicas
    ) as target:
        if prepared.has_publish:
            auditor = VersionAuditor([
                ("v1", prepared.taxonomy.freeze()),
                ("v2", prepared.churned_taxonomy.freeze()),
            ])
            actions.append(
                TimedAction(
                    at_s=scenario.publish_at * prepared.schedule.duration_s,
                    label="publish_delta",
                    action=lambda: target.publish(prepared.delta, 1, 2),
                )
            )
        return run_schedule(
            target.front,
            prepared.schedule,
            target_name=target.name,
            workers=workers,
            time_scale=time_scale,
            actions=actions,
            auditor=auditor,
            trace_every=trace_every,
            hub=hub,
            gather_spans=target.gather_spans,
        )


def _run_chaos_scenario(
    prepared: PreparedScenario,
    *,
    workers: int,
    time_scale: float,
    trace_every: int = TRACE_EVERY,
) -> RunReport:
    """Replay a fault-carrying scenario against a chaos cluster.

    The cluster is a storeless router over fault-wrapped local
    replicas (see :func:`~repro.workloads.faults.build_chaos_cluster`);
    the spec's kills/restarts, the publish, and any second-publisher
    republish all fire as timed actions inside the replay.  After the
    replay the cluster settles (faults lifted, one probe sweep — which
    is where a stale restarted replica pulls its own resync) and the
    report carries the convergence verdict: every replica alive on the
    byte-identical published content hash.
    """
    with fresh_hub() as hub:
        return _replay_chaos(
            prepared, hub, workers=workers, time_scale=time_scale,
            trace_every=trace_every,
        )


def _replay_chaos(
    prepared: PreparedScenario,
    hub,
    *,
    workers: int,
    time_scale: float,
    trace_every: int,
) -> RunReport:
    from repro.workloads.faults import build_chaos_cluster, fault_actions

    scenario = prepared.scenario
    cluster = build_chaos_cluster(
        prepared.taxonomy, scenario.faults, sleep=wall_sleep
    )
    duration = prepared.schedule.duration_s
    actions = fault_actions(cluster, scenario.faults, duration)
    auditor = None
    if prepared.has_publish:
        auditor = VersionAuditor([
            ("v1", prepared.taxonomy.freeze()),
            ("v2", prepared.churned_taxonomy.freeze()),
        ])

        def publish() -> None:
            cluster.router.publish_delta(
                prepared.delta, base_version=1, version=2
            )

        actions.append(TimedAction(
            at_s=scenario.publish_at * duration,
            label="publish_delta",
            action=publish,
        ))
        if scenario.faults.republish_at is not None:
            # the second builder's publish of the same nightly delta:
            # the router must converge on it (merge), never fork
            actions.append(TimedAction(
                at_s=scenario.faults.republish_at * duration,
                label="republish_delta",
                action=publish,
            ))
    report = run_schedule(
        cluster.router,
        prepared.schedule,
        target_name="chaos",
        workers=workers,
        time_scale=time_scale,
        actions=actions,
        auditor=auditor,
        trace_every=trace_every,
        hub=hub,
    )
    cluster.settle()
    report.convergence = cluster.convergence()
    return report
