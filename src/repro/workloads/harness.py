"""Scenario orchestration: world → build → schedule → replay → report.

:func:`prepare_scenario` does everything deterministic once per
scenario — sample the world, run the build pipeline, compile the
schedule, and (for publish-under-load scenarios) rebuild on the
churned dump and compute the :class:`~repro.taxonomy.delta.TaxonomyDelta`
between the two versions.  :func:`run_scenario` then replays the same
prepared scenario against any number of serving targets, arming the
publish action and the mixed-version auditor when the scenario asks
for them.  ``cn-probase workload run``, the benchmark suite and the
example walkthrough are all thin callers of these two functions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import PipelineConfig, build_cn_probase
from repro.errors import WorkloadError
from repro.taxonomy.delta import TaxonomyDelta
from repro.workloads.runner import (
    RunReport,
    TimedAction,
    VersionAuditor,
    make_target,
    run_schedule,
)
from repro.workloads.sampling import ArgumentPools
from repro.workloads.schedule import Schedule, compile_schedule
from repro.workloads.spec import Scenario


def scenario_pipeline_config() -> PipelineConfig:
    """The build config scenario worlds are compiled with.

    The abstract (neural) source is disabled: scenario worlds are small
    and rebuilt per run, and the serving surface under test is
    identical either way.
    """
    return PipelineConfig(enable_abstract=False)


@dataclass
class PreparedScenario:
    """Everything deterministic about one scenario, built once."""

    scenario: Scenario
    schedule: Schedule
    taxonomy: object
    churned_taxonomy: object = None
    delta: TaxonomyDelta | None = None

    @property
    def has_publish(self) -> bool:
        return self.delta is not None


def prepare_scenario(scenario: Scenario) -> PreparedScenario:
    """Build the world and taxonomy, compile the schedule, cut the delta."""
    world = scenario.world.build_world(scenario.seed)
    schedule = compile_schedule(scenario, ArgumentPools.from_world(world))
    taxonomy = build_cn_probase(
        world.dump(), scenario_pipeline_config()
    ).taxonomy
    churned_taxonomy = None
    delta = None
    if scenario.publish_at is not None:
        churned = scenario.world.churned_dump(world, scenario.seed + 1)
        churned_taxonomy = build_cn_probase(
            churned, scenario_pipeline_config()
        ).taxonomy
        delta = TaxonomyDelta.compute(taxonomy, churned_taxonomy)
        if delta.n_records == 0:
            raise WorkloadError(
                f"scenario {scenario.name!r} churned no relations — raise "
                "world.churn_rate or the world size"
            )
    return PreparedScenario(
        scenario=scenario,
        schedule=schedule,
        taxonomy=taxonomy,
        churned_taxonomy=churned_taxonomy,
        delta=delta,
    )


def run_scenario(
    prepared: PreparedScenario,
    target_kind: str = "service",
    *,
    workers: int = 8,
    time_scale: float = 1.0,
    shards: int = 2,
    replicas: int = 2,
) -> RunReport:
    """Replay a prepared scenario against one serving target kind.

    For publish-under-load scenarios the delta publish fires at
    ``publish_at`` of the schedule span on its own thread, and every
    batched answer is audited against the frozen before/after views —
    a ``mixed_answers`` count of zero is the torn-read acceptance
    gate.
    """
    scenario = prepared.scenario
    actions: list[TimedAction] = []
    auditor = None
    with make_target(
        target_kind, prepared.taxonomy, shards=shards, replicas=replicas
    ) as target:
        if prepared.has_publish:
            auditor = VersionAuditor([
                ("v1", prepared.taxonomy.freeze()),
                ("v2", prepared.churned_taxonomy.freeze()),
            ])
            actions.append(
                TimedAction(
                    at_s=scenario.publish_at * prepared.schedule.duration_s,
                    label="publish_delta",
                    action=lambda: target.publish(prepared.delta, 1, 2),
                )
            )
        return run_schedule(
            target.front,
            prepared.schedule,
            target_name=target.name,
            workers=workers,
            time_scale=time_scale,
            actions=actions,
            auditor=auditor,
        )
