"""Low-level Chinese text utilities.

These helpers deal with the orthographic quirks the paper's introduction
calls out: no word spaces, mixed full-width/half-width punctuation, and
bracket annotations attached directly to entity names (e.g.
``刘德华（中国香港男演员、歌手、词作人）``).
"""

from __future__ import annotations

from typing import Iterator

# Unicode ranges treated as CJK ideographs.  The extension blocks matter for
# rare-character entity names that occur in encyclopedia dumps.
_CJK_RANGES: tuple[tuple[int, int], ...] = (
    (0x4E00, 0x9FFF),    # CJK Unified Ideographs
    (0x3400, 0x4DBF),    # Extension A
    (0x20000, 0x2A6DF),  # Extension B
    (0xF900, 0xFAFF),    # Compatibility Ideographs
)

# Full-width ASCII variants map onto their half-width counterparts; the
# ideographic space maps onto a plain space.
_FULLWIDTH_OFFSET = 0xFEE0
_IDEOGRAPHIC_SPACE = "　"

# Chinese enumeration/sentence punctuation used as split points when pulling
# phrases out of brackets and abstracts.
CHINESE_DELIMITERS = "、，。；：！？,;:!?"

# Bracket pairs seen around disambiguation suffixes in encyclopedia titles.
BRACKET_PAIRS: tuple[tuple[str, str], ...] = (
    ("（", "）"),
    ("(", ")"),
    ("【", "】"),
    ("〔", "〕"),
)


def is_cjk_char(char: str) -> bool:
    """Return True when *char* is a single CJK ideograph."""
    if len(char) != 1:
        return False
    code = ord(char)
    return any(lo <= code <= hi for lo, hi in _CJK_RANGES)


def is_cjk_word(word: str) -> bool:
    """Return True when *word* is non-empty and made only of CJK ideographs."""
    return bool(word) and all(is_cjk_char(ch) for ch in word)


def normalize_text(text: str) -> str:
    """Normalise full-width ASCII and whitespace.

    Full-width digits/letters/punctuation become half-width, the
    ideographic space becomes a plain space, and outer whitespace is
    stripped.  CJK ideographs and Chinese punctuation are left untouched.
    """
    chars = []
    for ch in text:
        if ch == _IDEOGRAPHIC_SPACE:
            chars.append(" ")
            continue
        code = ord(ch)
        if 0xFF01 <= code <= 0xFF5E:
            chars.append(chr(code - _FULLWIDTH_OFFSET))
        else:
            chars.append(ch)
    return "".join(chars).strip()


def strip_brackets(title: str) -> tuple[str, str | None]:
    """Split an encyclopedia title into (entity name, bracket content).

    ``刘德华（中国香港男演员）`` → ``("刘德华", "中国香港男演员")``.
    Returns ``(title, None)`` when no trailing bracket annotation exists.
    Only a bracket that closes at the end of the title counts as a
    disambiguation annotation.
    """
    stripped = title.strip()
    for opener, closer in BRACKET_PAIRS:
        if not stripped.endswith(closer):
            continue
        start = stripped.rfind(opener)
        if start <= 0:
            continue
        inner = stripped[start + len(opener):-len(closer)].strip()
        name = stripped[:start].strip()
        if name and inner:
            return name, inner
    return stripped, None


def iter_cjk_runs(text: str) -> Iterator[str]:
    """Yield maximal runs of consecutive CJK ideographs in *text*."""
    run: list[str] = []
    for ch in text:
        if is_cjk_char(ch):
            run.append(ch)
        elif run:
            yield "".join(run)
            run = []
    if run:
        yield "".join(run)


def split_phrases(text: str) -> list[str]:
    """Split *text* on Chinese/Latin enumeration punctuation.

    Used to break bracket annotations such as
    ``中国香港男演员、歌手、词作人`` into candidate noun compounds.
    """
    phrases: list[str] = []
    current: list[str] = []
    for ch in text:
        if ch in CHINESE_DELIMITERS or ch.isspace():
            if current:
                phrases.append("".join(current))
                current = []
        else:
            current.append(ch)
    if current:
        phrases.append("".join(current))
    return phrases


def char_ngrams(text: str, n: int) -> Iterator[str]:
    """Yield all character n-grams of *text* (used by mention indexing)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    for i in range(len(text) - n + 1):
        yield text[i:i + n]
