"""Coarse part-of-speech tagging.

Only the distinctions the pipeline needs are made: the Probase-Tran POS
filter requires "hypernym must be a noun", the syntax-rule verifier needs
thematic words ("t") and the NE filter benefits from ``nr``/``ns`` hints.

Resolution order: lexicon entry → numeral/Latin shape → noun-suffix rule →
default noun for CJK, ``x`` otherwise.
"""

from __future__ import annotations

from repro.nlp.base_lexicon import SUFFIX_POS_HINTS, SURNAMES
from repro.nlp.lexicon import Lexicon
from repro.nlp.text import is_cjk_word

_NOUN_LIKE = frozenset({"n", "nr", "ns", "nt", "nz"})


class POSTagger:
    """Lexicon-backed coarse POS tagger."""

    def __init__(self, lexicon: Lexicon | None = None) -> None:
        self._lexicon = lexicon if lexicon is not None else Lexicon.base()
        self._suffix_hints = dict(SUFFIX_POS_HINTS)
        self._surnames = frozenset(SURNAMES)

    def tag(self, word: str) -> str:
        """Return the coarse POS tag of a single word token."""
        if not word:
            return "x"
        from_lexicon = self._lexicon.pos_of(word)
        if from_lexicon is not None:
            return from_lexicon
        if word.isdigit():
            return "m"
        if word.isascii():
            return "x"
        if not is_cjk_word(word):
            return "x"
        if len(word) >= 2 and word[-1] in self._suffix_hints:
            return self._suffix_hints[word[-1]]
        if 2 <= len(word) <= 3 and word[0] in self._surnames:
            return "nr"
        return "n"

    def tag_sequence(self, words: list[str]) -> list[str]:
        return [self.tag(word) for word in words]

    def is_noun(self, word: str) -> bool:
        """True when *word* tags as any noun subclass (valid hypernym POS)."""
        return self.tag(word) in _NOUN_LIKE

    def is_thematic(self, word: str) -> bool:
        """True when *word* is a topic/thematic word (never a hypernym)."""
        return self.tag(word) == "t"
