"""Pointwise mutual information over adjacent-word co-occurrences.

The separation algorithm (Section II of the paper) compares
``PMI(x_{i-1}, x_i)`` against ``PMI(x_i, x_{i+1})`` for adjacent words of a
noun compound.  The statistics here are collected from segmented corpus
text (abstracts + compound phrases of the encyclopedia), the same corpus
family the authors use.

PMI(a, b) = log2( p(a, b) / (p(a) * p(b)) ), with add-k smoothing on the
bigram count so unseen pairs get a large-negative but finite score.
"""

from __future__ import annotations

from collections import Counter
from math import log2
from typing import Iterable, Sequence


class PMIStatistics:
    """Unigram/bigram counters with smoothed PMI queries."""

    def __init__(self, smoothing: float = 0.1) -> None:
        if smoothing <= 0:
            raise ValueError(f"smoothing must be positive, got {smoothing}")
        self._smoothing = smoothing
        self._unigrams: Counter[str] = Counter()
        self._bigrams: Counter[tuple[str, str]] = Counter()
        self._total_unigrams = 0
        self._total_bigrams = 0

    # -- collection -----------------------------------------------------------

    def add_sequence(self, words: Sequence[str]) -> None:
        """Count unigrams and adjacent bigrams of one token sequence."""
        for word in words:
            self._unigrams[word] += 1
        self._total_unigrams += len(words)
        for left, right in zip(words, words[1:]):
            self._bigrams[(left, right)] += 1
        self._total_bigrams += max(len(words) - 1, 0)

    def add_corpus(self, sequences: Iterable[Sequence[str]]) -> None:
        for words in sequences:
            self.add_sequence(words)

    def remove_sequence(self, words: Sequence[str]) -> None:
        """Exactly undo one earlier :meth:`add_sequence` of *words*.

        Counts that reach zero are deleted (never left as zero entries),
        so after removing a sequence the statistics are
        indistinguishable from never having counted it — including
        ``vocabulary_size``, which feeds the smoothing denominator.
        This is what lets an incremental rebuild advance PMI by
        subtracting changed pages' old text and adding their new text
        instead of recounting the whole corpus.
        """
        for word in words:
            remaining = self._unigrams[word] - 1
            if remaining > 0:
                self._unigrams[word] = remaining
            else:
                del self._unigrams[word]
        self._total_unigrams -= len(words)
        for pair in zip(words, words[1:]):
            remaining = self._bigrams[pair] - 1
            if remaining > 0:
                self._bigrams[pair] = remaining
            else:
                del self._bigrams[pair]
        self._total_bigrams -= max(len(words) - 1, 0)

    def remove_corpus(self, sequences: Iterable[Sequence[str]]) -> None:
        for words in sequences:
            self.remove_sequence(words)

    def clone(self) -> "PMIStatistics":
        """An independent copy with identical counts and smoothing."""
        copy = PMIStatistics(smoothing=self._smoothing)
        copy._unigrams = Counter(self._unigrams)
        copy._bigrams = Counter(self._bigrams)
        copy._total_unigrams = self._total_unigrams
        copy._total_bigrams = self._total_bigrams
        return copy

    def same_counts(self, other: "PMIStatistics") -> bool:
        """True when both objects would answer every query identically."""
        return (
            self._smoothing == other._smoothing
            and self._total_unigrams == other._total_unigrams
            and self._total_bigrams == other._total_bigrams
            and self._unigrams == other._unigrams
            and self._bigrams == other._bigrams
        )

    # -- queries ---------------------------------------------------------------

    @property
    def vocabulary_size(self) -> int:
        return len(self._unigrams)

    @property
    def total_unigrams(self) -> int:
        return self._total_unigrams

    @property
    def total_bigrams(self) -> int:
        return self._total_bigrams

    def unigram_count(self, word: str) -> int:
        return self._unigrams[word]

    def bigram_count(self, left: str, right: str) -> int:
        return self._bigrams[(left, right)]

    def pmi(self, left: str, right: str) -> float:
        """Smoothed PMI of the adjacent pair (*left*, *right*).

        Works even on an empty statistics object (returns 0.0), so callers
        degrade to right-branching rather than crash.
        """
        if self._total_unigrams == 0 or self._total_bigrams == 0:
            return 0.0
        k = self._smoothing
        vocab = max(self.vocabulary_size, 1)
        p_pair = (self._bigrams[(left, right)] + k) / (
            self._total_bigrams + k * vocab * vocab
        )
        p_left = (self._unigrams[left] + k) / (self._total_unigrams + k * vocab)
        p_right = (self._unigrams[right] + k) / (self._total_unigrams + k * vocab)
        return log2(p_pair / (p_left * p_right))

    def cohesion(self, words: Sequence[str]) -> float:
        """Mean adjacent-pair PMI of a multi-word unit (0.0 for 1 word)."""
        if len(words) < 2:
            return 0.0
        scores = [self.pmi(a, b) for a, b in zip(words, words[1:])]
        return sum(scores) / len(scores)
