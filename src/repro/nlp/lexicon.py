"""Frequency/POS lexicon with prefix tables for DAG segmentation.

The lexicon mirrors jieba's prefix-dictionary design: besides the real
entries we keep a set of every proper prefix of every word, so the
segmenter can abort its forward scan as soon as no dictionary word can
start at the current position.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import LexiconError
from repro.nlp import base_lexicon


@dataclass(frozen=True)
class LexiconEntry:
    """One lexicon row: surface form, frequency weight and coarse POS."""

    word: str
    freq: int
    pos: str


class Lexicon:
    """Mutable frequency lexicon with prefix lookup.

    Frequencies are relative weights, not corpus counts; the segmenter only
    consumes their ratios (via log-probabilities), so any consistent scale
    works.
    """

    def __init__(self) -> None:
        self._entries: dict[str, LexiconEntry] = {}
        self._prefixes: set[str] = set()
        self._total: int = 0
        self._max_len: int = 0
        self._version: int = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def base(cls) -> "Lexicon":
        """Return a fresh lexicon loaded with the bundled base vocabulary."""
        lex = cls()
        for word, freq, pos in base_lexicon.BASE_ENTRIES:
            lex.add(word, freq, pos)
        return lex

    def add(self, word: str, freq: int = 1, pos: str = "n") -> None:
        """Insert *word*, accumulating frequency on duplicates.

        POS of an existing entry is kept unless the existing POS is the
        default ``n`` and the new one is more specific.
        """
        if not word:
            raise LexiconError("cannot add empty word to lexicon")
        if freq <= 0:
            raise LexiconError(f"frequency must be positive, got {freq} for {word!r}")
        existing = self._entries.get(word)
        if existing is None:
            self._entries[word] = LexiconEntry(word, freq, pos)
        else:
            kept_pos = existing.pos if existing.pos != "n" else pos
            self._entries[word] = LexiconEntry(word, existing.freq + freq, kept_pos)
        self._total += freq
        self._max_len = max(self._max_len, len(word))
        self._version += 1
        for i in range(1, len(word)):
            self._prefixes.add(word[:i])

    def add_all(self, words: Iterable[str], freq: int = 1, pos: str = "n") -> None:
        """Insert every word of *words* with the same frequency and POS."""
        for word in words:
            self.add(word, freq, pos)

    def merge(self, other: "Lexicon") -> None:
        """Accumulate every entry of *other* into this lexicon."""
        for entry in other:
            self.add(entry.word, entry.freq, entry.pos)

    def same_content(self, other: "Lexicon") -> bool:
        """True when both lexicons hold identical entries.

        Content equality (word → frequency + POS) is what segmentation,
        tagging and NER outcomes depend on — two lexicons with the same
        content are interchangeable regardless of insertion history.
        The incremental build path uses this as its settle-everything
        check: when the cheap per-page contribution comparison cannot
        prove the harvested lexicon unchanged, a re-harvest compared
        with ``same_content`` decides whether the previous build's
        segmenter can still be reused verbatim.
        """
        return self._entries == other._entries

    # -- lookup --------------------------------------------------------------

    def __contains__(self, word: str) -> bool:
        return word in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LexiconEntry]:
        return iter(self._entries.values())

    def get(self, word: str) -> LexiconEntry | None:
        """Return the entry for *word*, or None when absent."""
        return self._entries.get(word)

    def freq(self, word: str) -> int:
        """Return the frequency weight of *word* (0 when absent)."""
        entry = self._entries.get(word)
        return entry.freq if entry is not None else 0

    def pos_of(self, word: str) -> str | None:
        """Return the coarse POS of *word*, or None when absent."""
        entry = self._entries.get(word)
        return entry.pos if entry is not None else None

    @property
    def total(self) -> int:
        """Sum of all frequency weights (normalising constant)."""
        return self._total

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every :meth:`add`.

        Derived caches (e.g. the segmenter's Viterbi LRU) key their
        validity on this, so feeding the lexicon new words after a cache
        has warmed up can never serve stale segmentations.
        """
        return self._version

    @property
    def max_word_len(self) -> int:
        return self._max_len

    def log_prob(self, word: str, default_freq: float = 0.5) -> float:
        """Log unigram probability of *word* under this lexicon.

        Unknown words get *default_freq*; single unknown characters are the
        segmenter's fallback, so the default must stay well below real
        entries.
        """
        total = max(self._total, 1)
        freq = self.freq(word)
        return math.log(max(freq, default_freq)) - math.log(total)

    def is_prefix(self, fragment: str) -> bool:
        """True when *fragment* is a proper prefix of some entry."""
        return fragment in self._prefixes

    def words_starting_at(self, text: str, start: int) -> list[str]:
        """All dictionary words that begin at *start* in *text*.

        The scan grows one character at a time and stops as soon as the
        fragment is neither an entry nor a prefix of one.
        """
        found: list[str] = []
        limit = min(len(text), start + self._max_len)
        for end in range(start + 1, limit + 1):
            fragment = text[start:end]
            if fragment in self._entries:
                found.append(fragment)
            elif not self.is_prefix(fragment):
                break
        return found
