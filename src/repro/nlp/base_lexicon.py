"""Bundled base vocabulary for the Chinese NLP substrate.

The paper's tooling assumes a general-purpose segmentation lexicon.  We
bundle one here: frequencies are Zipf-flavoured relative weights (function
words ≫ common nouns ≫ rare nouns), POS tags are coarse:

- ``n``  noun (includes concept words usable as hypernyms)
- ``nr`` person-name component (surnames)
- ``ns`` place name
- ``a``  adjective / attributive modifier
- ``v``  verb
- ``m``  numeral / measure
- ``u``  function word (particles, conjunctions, prepositions)
- ``t``  thematic/topic word (non-taxonomic; never a valid hypernym)

The synthetic world registers its own entity/concept morphemes on top of
this base at build time, mirroring how real pipelines extend jieba with a
user dictionary harvested from encyclopedia titles.
"""

from __future__ import annotations

# --- concept nouns: plausible hypernyms -----------------------------------
_CONCEPT_NOUNS: tuple[str, ...] = (
    # people
    "人物", "艺人", "明星", "演员", "歌手", "作家", "诗人", "画家", "导演",
    "编剧", "制片人", "主持人", "模特", "舞者", "音乐家", "作曲家", "词作人",
    "科学家", "物理学家", "化学家", "数学家", "生物学家", "院士", "教授",
    "学者", "企业家", "商人", "运动员", "球员", "教练", "政治家", "外交官",
    "军人", "警察", "医生", "护士", "律师", "法官", "教师", "工程师",
    "建筑师", "设计师", "记者", "编辑", "翻译家", "哲学家", "历史学家",
    "经济学家", "心理学家", "厨师", "飞行员", "宇航员", "探险家", "僧人",
    "歌唱家", "钢琴家", "小提琴家", "指挥家", "书法家", "雕塑家", "摄影师",
    "漫画家", "博主", "网红", "官员", "战略官", "执行官", "财务官",
    "总裁", "董事长", "经理", "娱乐人物", "公众人物", "历史人物",
    # organisations
    "公司", "集团", "企业", "机构", "组织", "协会", "学会", "基金会",
    "大学", "学院", "中学", "小学", "学校", "研究所", "实验室", "乐队",
    "组合", "球队", "俱乐部", "银行", "医院", "剧院", "博物馆", "图书馆",
    "出版社", "电视台", "电台", "报社", "政党", "部队", "寺庙", "教堂",
    # places
    "国家", "城市", "省份", "地区", "县城", "乡镇", "村庄", "首都",
    "景点", "公园", "广场", "山脉", "高山", "河流", "湖泊", "岛屿",
    "海洋", "沙漠", "平原", "盆地", "峡谷", "瀑布", "古镇", "街道",
    # works
    "作品", "电影", "小说", "散文", "诗歌", "歌曲", "专辑", "单曲",
    "电视剧", "戏剧", "话剧", "歌剧", "舞剧", "纪录片", "动画片",
    "游戏", "书籍", "杂志", "报纸", "绘画", "雕塑", "交响曲", "协奏曲",
    "武侠剧", "传记片", "警匪片", "剧情片", "喜剧片", "爱情片",
    # living things & products
    "动物", "植物", "水果", "蔬菜", "花卉", "树木", "鸟类", "鱼类",
    "昆虫", "哺乳动物", "爬行动物", "犬种", "猫种", "品种", "草本植物",
    "木本植物", "乔木", "灌木", "藻类", "真菌", "细菌", "病毒",
    "食品", "菜肴", "小吃", "甜点", "饮料", "茶叶", "酒类", "调料",
    "药品", "药材", "器材", "工具", "乐器", "武器", "车辆", "汽车",
    "飞机", "船舶", "手机", "软件", "网站", "平台", "系统", "语言",
    "方言", "民族", "节日", "习俗", "奖项", "赛事", "比赛", "典礼",
    "职业", "职位", "学科", "专业", "理论", "定理", "算法", "模型",
    "疾病", "症状", "疗法", "材料", "金属", "矿物", "化合物", "元素",
)

# --- attributive modifiers used in noun compounds --------------------------
_MODIFIERS: tuple[str, ...] = (
    "著名", "知名", "杰出", "优秀", "资深", "新锐", "传奇", "一流",
    "男", "女", "青年", "中年", "老年", "当代", "现代", "古代", "近代",
    "首席", "高级", "初级", "特级", "国际", "国家级", "省级", "市级",
    "热带", "亚热带", "温带", "寒带", "大型", "小型", "中型", "微型",
    "流行", "民谣", "摇滚", "古典", "爵士", "电子", "乡村", "说唱",
    "科幻", "悬疑", "推理", "言情", "武侠", "奇幻", "写实", "抽象",
    "野生", "家养", "观赏", "食用", "药用", "常绿", "落叶", "一年生",
    "多年生", "淡水", "海水", "深海", "高山型", "草原型",
    "国有", "民营", "外资", "合资", "上市", "跨国", "百年", "新兴",
    "综合", "重点", "示范", "实验", "双语", "艺术类", "理工类", "师范类",
)

# --- place names (NE gazetteer seeds, also common in modifiers) ------------
_PLACES: tuple[str, ...] = (
    "中国", "美国", "日本", "韩国", "英国", "法国", "德国", "俄罗斯",
    "意大利", "西班牙", "加拿大", "澳大利亚", "印度", "巴西", "埃及",
    "香港", "台湾", "澳门", "北京", "上海", "广州", "深圳", "杭州",
    "南京", "苏州", "成都", "重庆", "武汉", "西安", "天津", "长沙",
    "青岛", "厦门", "昆明", "大连", "沈阳", "哈尔滨", "兰州", "拉萨",
    "浙江", "江苏", "广东", "山东", "四川", "湖南", "湖北", "福建",
    "云南", "贵州", "陕西", "甘肃", "河南", "河北", "山西", "安徽",
    "江西", "广西", "海南", "辽宁", "吉林", "黑龙江", "内蒙古", "新疆",
    "西藏", "青海", "宁夏", "长江", "黄河", "泰山", "黄山", "西湖",
)

# --- verbs that appear in abstracts ----------------------------------------
_VERBS: tuple[str, ...] = (
    "是", "为", "出生", "毕业", "位于", "成立", "创立", "创办", "发行",
    "出版", "获得", "担任", "主演", "出演", "执导", "创作", "演唱",
    "发表", "研究", "发现", "发明", "建立", "加入", "效力", "入选",
    "荣获", "凭借", "代表", "分布", "生长", "栖息", "属于", "隶属",
    "包括", "拥有", "经营", "生产", "提供", "开发", "上映", "播出",
)

# --- function words ---------------------------------------------------------
_FUNCTION: tuple[tuple[str, int], ...] = (
    ("的", 80000), ("了", 30000), ("和", 25000), ("与", 20000),
    ("在", 28000), ("于", 18000), ("一", 15000), ("一个", 9000),
    ("一种", 8000), ("一名", 6000), ("一位", 6000), ("是一", 10),
    ("其", 9000), ("该", 8000), ("等", 12000), ("及", 9000),
    ("以及", 7000), ("或", 6000), ("并", 7000), ("也", 8000),
    ("曾", 7000), ("将", 6000), ("被", 7000), ("从", 6000),
    ("由", 7000), ("对", 7000), ("年", 20000), ("月", 18000),
    ("日", 18000), ("之一", 8000),
)

# --- thematic/topic words (never valid hypernyms) ---------------------------
# These seed both the POS tagger ("t") and the 184-entry thematic lexicon
# used by the syntax-rule verifier (see repro.core.verification.thematic).
_THEMATIC: tuple[str, ...] = (
    "音乐", "政治", "军事", "体育", "娱乐", "科技", "文化", "教育",
    "历史", "地理", "经济", "艺术", "文学", "社会", "自然", "生活",
    "旅游", "美食", "时尚", "健康", "财经", "科学", "宗教", "哲学",
    "法律", "医学", "农业", "工业", "商业", "金融", "传媒", "影视",
    "动漫", "电竞", "环保", "能源", "交通", "建筑", "航天", "航空",
    "互联网", "数码", "通信", "房产", "家居", "母婴", "宠物", "情感",
    "心理", "职场", "创业", "投资", "收藏", "书画", "戏曲", "曲艺",
    "民俗", "考古", "天文", "气象", "海洋学", "地质", "生态", "人文",
)

# --- common-word tail: everyday nouns/verbs that matter for the
# cross-language baseline (wrong-sense translations are ordinary words any
# dictionary contains) and for abstract segmentation --------------------------
_COMMON_NOUNS: tuple[str, ...] = (
    "星星", "恒星", "著作", "方向", "陪伴", "连队", "带子", "波段",
    "河岸", "岸边", "队伍", "团队", "胶片", "薄膜", "曲子", "果实",
    "成果", "工厂", "厂房", "野兽", "牲畜", "都会", "乡下", "猎物",
    "油漆工", "学院派", "高校界", "州", "虚构", "新颖",
)
_COMMON_VERBS: tuple[str, ...] = (
    "唱歌", "表演", "演出", "写作", "指导", "歌唱",
)

# --- common surnames (NER person-name pattern) ------------------------------
SURNAMES: tuple[str, ...] = tuple(
    "王李张刘陈杨黄赵周吴徐孙马朱胡郭何高林罗郑梁谢宋唐许韩冯邓曹彭曾"
    "萧田董袁潘蒋蔡余杜叶程苏魏吕丁任沈姚卢姜崔钟谭陆汪范金石廖贾夏"
    "韦付方白邹孟熊秦邱江尹薛闫段雷侯龙史陶黎贺顾毛郝龚邵万钱严覃武"
    "戴莫孔向汤"
)

# Given-name characters used by the NER pattern and the synthetic world's
# person-name generator.
GIVEN_NAME_CHARS: tuple[str, ...] = tuple(
    "伟芳娜敏静丽强磊军洋勇艳杰娟涛明超秀兰霞平刚桂英华玉萍红娥玲芬燕"
    "彬鹏浩凯秋珊莎锦黛青倩婷宁蓉琴薇斌梅琳素云莲真环雪荣爱妹香月莺媛"
    "瑞凡佳嘉琼勤珍贞莉峰嫣晨辰昊天德华龙飞鸿波辉力明永健世广志义兴良"
    "海山仁宽福生龙元全国胜学祥才发成康星光迪安岩"
)

_SUFFIX_POS_HINTS: tuple[tuple[str, str], ...] = (
    ("家", "n"), ("师", "n"), ("员", "n"), ("手", "n"), ("官", "n"),
    ("长", "n"), ("生", "n"), ("者", "n"), ("士", "n"),
)


def _entries() -> list[tuple[str, int, str]]:
    rows: list[tuple[str, int, str]] = []
    for word in _CONCEPT_NOUNS:
        rows.append((word, 1200, "n"))
    for word in _MODIFIERS:
        rows.append((word, 900, "a"))
    for word in _PLACES:
        rows.append((word, 2500, "ns"))
    for word in _VERBS:
        rows.append((word, 3000, "v"))
    for word, freq in _FUNCTION:
        rows.append((word, freq, "u"))
    for word in _THEMATIC:
        rows.append((word, 1500, "t"))
    for word in _COMMON_NOUNS:
        rows.append((word, 400, "n"))
    for word in _COMMON_VERBS:
        rows.append((word, 400, "v"))
    return rows


BASE_ENTRIES: tuple[tuple[str, int, str], ...] = tuple(_entries())

THEMATIC_SEEDS: tuple[str, ...] = _THEMATIC
CONCEPT_NOUN_SEEDS: tuple[str, ...] = _CONCEPT_NOUNS
MODIFIER_SEEDS: tuple[str, ...] = _MODIFIERS
PLACE_SEEDS: tuple[str, ...] = _PLACES
SUFFIX_POS_HINTS: tuple[tuple[str, str], ...] = _SUFFIX_POS_HINTS
