"""Named-entity recognition for the NE verification heuristic.

Section III-B of the paper filters isA relations whose hypernym is a named
entity (``isA(iPhone, America)`` is wrong because *America* is an NE).  The
filter needs two support scores:

- ``s1(H)`` — support of H as an NE in a Chinese text corpus,
- ``s2(H)`` — support of H as an NE inside the taxonomy being built,

combined with a noisy-or model.  This module provides the recogniser and
the corpus-side support table; the taxonomy-side score lives with the
verifier (:mod:`repro.core.verification.ner_filter`).

Recognition is gazetteer-first with pattern fallbacks:

- gazetteer hits (entity titles registered from the encyclopedia) — 1.0,
- place-name suffixes (市/省/县/山/湖...) on multi-char words — 0.9,
- organisation suffixes (公司/集团/大学...) on words longer than the
  suffix itself — 0.9,
- surname + given-name shape for unknown 2–3 char words — 0.7.

The confidence weights make the corpus support graded rather than binary,
which is what the noisy-or combination needs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.nlp.base_lexicon import GIVEN_NAME_CHARS, SURNAMES
from repro.nlp.lexicon import Lexicon
from repro.nlp.text import is_cjk_word

_PLACE_SUFFIXES = ("市", "省", "县", "区", "镇", "村", "山", "湖", "岛", "河", "港")
_ORG_SUFFIXES = (
    "公司", "集团", "大学", "学院", "银行", "医院", "乐队", "俱乐部",
    "研究所", "出版社", "电视台", "基金会", "协会",
)


@dataclass(frozen=True)
class NESupport:
    """Occurrence statistics of one word: total count and NE-weighted count."""

    word: str
    total: int
    ne_weight: float

    @property
    def ratio(self) -> float:
        """``NE(H)/total(H)`` — the paper's s1-style support."""
        if self.total == 0:
            return 0.0
        return min(self.ne_weight / self.total, 1.0)


class NamedEntityRecognizer:
    """Gazetteer + pattern recogniser with graded confidence."""

    def __init__(self, lexicon: Lexicon | None = None) -> None:
        self._lexicon = lexicon if lexicon is not None else Lexicon.base()
        self._gazetteer: dict[str, str] = {}
        self._surnames = frozenset(SURNAMES)
        self._given_chars = frozenset(GIVEN_NAME_CHARS)

    # -- gazetteer ------------------------------------------------------------

    def register(self, name: str, netype: str) -> None:
        """Register a known entity title with its NE type."""
        if name:
            self._gazetteer[name] = netype

    def register_all(self, names: Iterable[str], netype: str) -> None:
        for name in names:
            self.register(name, netype)

    @property
    def gazetteer_size(self) -> int:
        return len(self._gazetteer)

    # -- classification ---------------------------------------------------------

    def classify(self, word: str) -> tuple[str, float] | None:
        """Return ``(ne_type, confidence)`` or None for non-NE words."""
        if not word:
            return None
        gazetteer_type = self._gazetteer.get(word)
        if gazetteer_type is not None:
            return gazetteer_type, 1.0
        if not is_cjk_word(word):
            # Latin/digit tokens in Chinese text are almost always product
            # names, codes or foreign names — NE-like but weak evidence.
            if word.isascii() and word.isalnum() and not word.isdigit():
                return "other", 0.6
            return None
        entry = self._lexicon.get(word)
        if entry is not None and entry.pos == "ns":
            return "place", 0.95
        if len(word) > 1 and word.endswith(_PLACE_SUFFIXES) and entry is None:
            return "place", 0.9
        for suffix in _ORG_SUFFIXES:
            if word.endswith(suffix) and len(word) > len(suffix):
                return "organisation", 0.9
        if (
            entry is None
            and 2 <= len(word) <= 3
            and word[0] in self._surnames
            and all(ch in self._given_chars for ch in word[1:])
        ):
            return "person", 0.7
        return None

    def is_named_entity(self, word: str, min_confidence: float = 0.5) -> bool:
        result = self.classify(word)
        return result is not None and result[1] >= min_confidence

    # -- corpus support ----------------------------------------------------------

    def corpus_support(
        self, corpus: Iterable[Sequence[str]]
    ) -> dict[str, NESupport]:
        """Build the s1 support table over a segmented corpus.

        Every token occurrence contributes 1 to its word's total and its
        classification confidence (0 for non-NE) to the NE weight.
        """
        totals: Counter[str] = Counter()
        weights: Counter[str] = Counter()
        cache: dict[str, float] = {}
        for sentence in corpus:
            for token in sentence:
                totals[token] += 1
                if token not in cache:
                    result = self.classify(token)
                    cache[token] = result[1] if result is not None else 0.0
                if cache[token]:
                    weights[token] += cache[token]
        return {
            word: NESupport(word=word, total=count, ne_weight=weights[word])
            for word, count in totals.items()
        }
