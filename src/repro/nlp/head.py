"""Lexical-head extraction for Chinese noun compounds.

Chinese noun compounds are right-headed: in 教育机构 ("educational
institution") the head is 机构.  The syntax-rule verifier (Section III-C,
rule 2) rejects ``isA(educational institution, education)`` because the
stem of the hypernym's head (教育) occurs in a *non-head* position of the
hyponym.
"""

from __future__ import annotations

from typing import Sequence

# Role/agent suffixes whose removal yields the compound's semantic stem:
# 教育家 → 教育, 战略官 → 战略.  Only stripped from words long enough to
# leave a meaningful stem behind.
_ROLE_SUFFIXES = ("家", "师", "员", "手", "官", "者", "士", "长")


def lexical_head(words: Sequence[str]) -> str:
    """Head of a segmented noun compound: its rightmost word."""
    if not words:
        raise ValueError("cannot take the head of an empty compound")
    return words[-1]


def stem(word: str) -> str:
    """Semantic stem of a word: role suffix stripped when safe."""
    if len(word) >= 3 and word.endswith(_ROLE_SUFFIXES):
        return word[:-1]
    return word


def head_stem_violates(
    hyponym_words: Sequence[str], hypernym_words: Sequence[str]
) -> bool:
    """Rule 2 of the syntax verifier.

    True when the stem of the hypernym's lexical head appears in the
    hyponym *outside* its own head position — the configuration of wrong
    pairs like isA(教育机构, 教育).  Checked on the surface string of the
    non-head part so segmentation differences cannot hide a violation.
    """
    if not hyponym_words or not hypernym_words:
        return False
    head_stem = stem(lexical_head(list(hypernym_words)))
    if not head_stem:
        return False
    non_head = "".join(hyponym_words[:-1])
    hypo_head = hyponym_words[-1]
    if head_stem in non_head:
        return True
    # The hyponym's own head may still hide the stem in a non-final slot,
    # e.g. single-token hyponym 教育机构 with hypernym 教育.
    if len(hypo_head) > len(head_stem):
        interior = hypo_head[:-1]
        if head_stem in interior and not hypo_head.endswith(head_stem):
            return True
    return False
