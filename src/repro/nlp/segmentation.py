"""Dictionary-DAG Viterbi word segmentation.

Chinese has no word spaces, so every downstream component (the separation
algorithm, PMI statistics, NER support counting) consumes the output of
this segmenter.  The algorithm is the same family as jieba's core:

1. build a DAG of every dictionary word starting at each position,
2. pick the maximum log-probability path under a unigram model,
3. fall back to single characters for out-of-vocabulary spans.

Non-CJK runs (Latin, digits) are emitted as single tokens; whitespace is
dropped; punctuation becomes its own token.

The Viterbi path is memoised per CJK run in a bounded LRU (corpus text
repeats brackets, tags and common phrases heavily, so a warm cache turns
most ``segment`` calls into dict hits).  The cache keys its validity on
:attr:`Lexicon.version` and flushes itself whenever the lexicon gains
words, so results are always identical to the uncached segmenter.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable

from repro.errors import SegmentationError
from repro.nlp.lexicon import Lexicon
from repro.nlp.text import is_cjk_char, normalize_text

_UNKNOWN_CHAR_FREQ = 0.5
DEFAULT_SEGMENT_CACHE = 32_768


class Segmenter:
    """Maximum-probability segmenter over a :class:`Lexicon`."""

    def __init__(
        self,
        lexicon: Lexicon | None = None,
        cache_size: int | None = DEFAULT_SEGMENT_CACHE,
    ) -> None:
        self._lexicon = lexicon if lexicon is not None else Lexicon.base()
        self._cache_size = cache_size
        # lru_cache is thread-safe, which the parallel build relies on:
        # several stages share one segmenter across worker threads.
        self._cached_viterbi = lru_cache(maxsize=cache_size)(self._viterbi)
        self._cached_version = self._lexicon.version

    def __getstate__(self) -> dict:
        # The lru_cache-wrapped bound method is unpicklable (and its
        # entries are worthless in another process); ship the lexicon
        # and cache size, rebuild the memo cold on the other side.
        # Results are unaffected: the cache only ever replays what
        # _viterbi would recompute.
        return {
            "lexicon": self._lexicon,
            "cache_size": self._cache_size,
            "cached_version": self._cached_version,
        }

    def __setstate__(self, state: dict) -> None:
        self._lexicon = state["lexicon"]
        self._cache_size = state["cache_size"]
        self._cached_viterbi = lru_cache(maxsize=self._cache_size)(
            self._viterbi
        )
        self._cached_version = state["cached_version"]

    @property
    def lexicon(self) -> Lexicon:
        return self._lexicon

    def cache_info(self):
        """``functools.lru_cache`` statistics for the Viterbi memo."""
        return self._cached_viterbi.cache_info()

    def segment(self, text: str, keep_punctuation: bool = False) -> list[str]:
        """Segment *text* into a list of word tokens.

        Raises :class:`SegmentationError` on empty/whitespace-only input so
        callers never silently operate on nothing.
        """
        normalized = normalize_text(text)
        if not normalized:
            raise SegmentationError(f"cannot segment empty text {text!r}")
        version = self._lexicon.version
        if self._cached_version != version:
            # Memory hygiene only — correctness comes from *version*
            # being part of the cache key, so a thread that started
            # computing against the old lexicon can never poison the
            # cache for the new one (its entry sits under the old key).
            self._cached_viterbi.cache_clear()
            self._cached_version = version
        tokens: list[str] = []
        for run, is_cjk in _iter_runs(normalized):
            if is_cjk:
                tokens.extend(self._cached_viterbi(run, version))
            else:
                tokens.extend(_split_non_cjk(run, keep_punctuation))
        if not tokens:
            raise SegmentationError(f"no tokens produced for {text!r}")
        return tokens

    def segment_corpus(self, texts: Iterable[str]) -> list[list[str]]:
        """Segment every text, skipping ones that produce no tokens."""
        out: list[list[str]] = []
        for text in texts:
            try:
                out.append(self.segment(text))
            except SegmentationError:
                continue
        return out

    def _viterbi(self, run: str, version: int = 0) -> tuple[str, ...]:
        """Best segmentation of a pure-CJK run under the unigram model.

        *version* does not affect the computation — it is the lexicon
        version the caller read, present only so the LRU keys every
        entry to the lexicon state it was computed under.  Returns a
        tuple (not a list) because the result is shared through the
        LRU: callers must never receive a mutable alias of a cached
        value.
        """
        n = len(run)
        # best[i] = (score of best path covering run[:i], start of last word)
        best: list[tuple[float, int]] = [(0.0, 0)] + [(float("-inf"), 0)] * n
        for start in range(n):
            base_score = best[start][0]
            if base_score == float("-inf"):
                continue
            candidates = self._lexicon.words_starting_at(run, start)
            # Single-character fallback keeps the lattice connected even
            # for fully out-of-vocabulary spans.
            if not candidates or len(candidates[0]) != 1:
                candidates = [run[start]] + candidates
            for word in candidates:
                end = start + len(word)
                score = base_score + self._lexicon.log_prob(
                    word, default_freq=_UNKNOWN_CHAR_FREQ
                )
                if score > best[end][0]:
                    best[end] = (score, start)
        # Backtrack.
        words: list[str] = []
        pos = n
        while pos > 0:
            start = best[pos][1]
            words.append(run[start:pos])
            pos = start
        words.reverse()
        return tuple(words)


def _split_non_cjk(run: str, keep_punctuation: bool) -> list[str]:
    """Tokenise a non-CJK run: alnum sequences stay whole, whitespace is
    dropped, punctuation becomes per-character tokens when kept."""
    tokens: list[str] = []
    current: list[str] = []
    for ch in run:
        if ch.isalnum():
            current.append(ch)
            continue
        if current:
            tokens.append("".join(current))
            current = []
        if not ch.isspace() and keep_punctuation:
            tokens.append(ch)
    if current:
        tokens.append("".join(current))
    return tokens


def _iter_runs(text: str) -> list[tuple[str, bool]]:
    """Split *text* into maximal (run, is_cjk) spans."""
    runs: list[tuple[str, bool]] = []
    current: list[str] = []
    current_kind: bool | None = None
    for ch in text:
        kind = is_cjk_char(ch)
        if current_kind is None or kind == current_kind:
            current.append(ch)
            current_kind = kind
        else:
            runs.append(("".join(current), current_kind))
            current = [ch]
            current_kind = kind
    if current:
        runs.append(("".join(current), bool(current_kind)))
    return runs
