"""Chinese NLP substrate built from scratch.

The paper relies on standard Chinese tooling (word segmentation, PMI
statistics over a text corpus, named-entity recognition).  None of that
tooling is assumed here: this subpackage implements

- :class:`~repro.nlp.lexicon.Lexicon` — frequency/POS lexicon with prefix
  tables, pre-seeded with a bundled base vocabulary,
- :class:`~repro.nlp.segmentation.Segmenter` — dictionary-DAG Viterbi
  segmenter (the same algorithmic family as jieba's core),
- :class:`~repro.nlp.pmi.PMIStatistics` — unigram/bigram counts and the
  pointwise mutual information used by the separation algorithm,
- :class:`~repro.nlp.ner.NamedEntityRecognizer` — lexicon + pattern NER
  used by the NE verification heuristic,
- :mod:`repro.nlp.pos` / :mod:`repro.nlp.head` — coarse POS tagging and
  lexical-head extraction for the syntax-rule verifier.
"""

from repro.nlp.head import head_stem_violates, lexical_head
from repro.nlp.lexicon import Lexicon, LexiconEntry
from repro.nlp.ner import NamedEntityRecognizer, NESupport
from repro.nlp.pmi import PMIStatistics
from repro.nlp.pos import POSTagger
from repro.nlp.segmentation import Segmenter
from repro.nlp.text import (
    is_cjk_char,
    is_cjk_word,
    iter_cjk_runs,
    normalize_text,
    strip_brackets,
)

__all__ = [
    "Lexicon",
    "LexiconEntry",
    "NESupport",
    "NamedEntityRecognizer",
    "PMIStatistics",
    "POSTagger",
    "Segmenter",
    "head_stem_violates",
    "is_cjk_char",
    "is_cjk_word",
    "iter_cjk_runs",
    "lexical_head",
    "normalize_text",
    "strip_brackets",
]
