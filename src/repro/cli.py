"""Command-line interface: generate → build → query, file to file.

Usage::

    cn-probase generate --entities 2000 --seed 7 --out dump.jsonl
    cn-probase build --dump dump.jsonl --out taxonomy.jsonl
    cn-probase build --dump dump.jsonl --out taxonomy.jsonl --disable-stage ner
    cn-probase stages
    cn-probase stats --taxonomy taxonomy.jsonl
    cn-probase query --taxonomy taxonomy.jsonl men2ent 刘德华
    cn-probase query --taxonomy taxonomy.jsonl getConcept 刘德华#0
    cn-probase query --taxonomy taxonomy.jsonl getEntity 歌手

Every subcommand is importable (:func:`main` takes an argv list), which
is how the test suite drives it.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.generation.neural_gen import NeuralGenConfig
from repro.core.pipeline import PipelineConfig, build_cn_probase
from repro.core.stages import default_registry
from repro.encyclopedia import SyntheticWorld, load_dump, save_dump
from repro.errors import ReproError
from repro.taxonomy import Taxonomy, TaxonomyAPI


def _cmd_generate(args: argparse.Namespace) -> int:
    world = SyntheticWorld.generate(seed=args.seed, n_entities=args.entities)
    n_pages = save_dump(world.dump(), args.out)
    print(f"wrote {n_pages} pages to {args.out}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    dump = load_dump(args.dump)
    config = PipelineConfig(
        enable_abstract=not args.no_abstract,
        enable_incompatible=not args.no_incompatible,
        enable_ner=not args.no_ner,
        enable_syntax=not args.no_syntax,
        neural=NeuralGenConfig(epochs=args.neural_epochs),
        max_generation_pages=args.max_generation_pages,
    )
    registry = default_registry()
    for name in args.disable_stage or ():
        registry.disable(name)
    result = build_cn_probase(dump, config, registry=registry)
    result.taxonomy.save(args.out)
    stats = result.taxonomy.stats()
    print(f"built {stats.n_isa_total} isA relations "
          f"({stats.n_entities} entities, {stats.n_concepts} concepts); "
          f"verification removed {result.n_removed} candidates")
    units = {"source": "candidates", "verifier": "removed", "driver": "items"}
    for record in result.stage_trace.ran():
        print(f"stage {record.name} ({record.kind}): "
              f"{record.count} {units[record.kind]} in {record.seconds:.2f}s")
    print(f"wrote taxonomy to {args.out}")
    return 0


def _cmd_stages(args: argparse.Namespace) -> int:
    registry = default_registry()
    print(f"{'name':<14} {'kind':<10} {'enabled':<8} origin")
    for entry in registry.entries():
        enabled = "yes" if entry.enabled else "no"
        print(f"{entry.name:<14} {entry.kind:<10} {enabled:<8} {entry.origin}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    taxonomy = Taxonomy.load(args.taxonomy)
    for key, value in taxonomy.stats().as_dict().items():
        print(f"{key}: {value}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    taxonomy = Taxonomy.load(args.taxonomy)
    api = TaxonomyAPI(taxonomy)
    handlers = {
        "men2ent": api.men2ent,
        "getConcept": api.get_concept,
        "getEntity": api.get_entity,
    }
    results = handlers[args.api](args.argument)
    if not results:
        print("(no results)")
        return 1
    for item in results:
        print(item)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cn-probase",
        description="CN-Probase taxonomy construction (ICDE 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="synthesize an encyclopedia dump"
    )
    generate.add_argument("--entities", type=int, default=2000)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=_cmd_generate)

    build = sub.add_parser("build", help="build a taxonomy from a dump")
    build.add_argument("--dump", required=True)
    build.add_argument("--out", required=True)
    build.add_argument("--no-abstract", action="store_true",
                       help="skip the (slow) neural generation source")
    build.add_argument("--no-incompatible", action="store_true")
    build.add_argument("--no-ner", action="store_true")
    build.add_argument("--no-syntax", action="store_true")
    build.add_argument("--neural-epochs", type=int, default=6)
    build.add_argument("--max-generation-pages", type=int, default=None)
    build.add_argument("--disable-stage", action="append", metavar="NAME",
                       help="disable a registered stage by name (repeatable); "
                            "see `cn-probase stages` for the names")
    build.set_defaults(func=_cmd_build)

    stages = sub.add_parser(
        "stages", help="list the registered pipeline stages"
    )
    stages.set_defaults(func=_cmd_stages)

    stats = sub.add_parser("stats", help="print taxonomy statistics")
    stats.add_argument("--taxonomy", required=True)
    stats.set_defaults(func=_cmd_stats)

    query = sub.add_parser("query", help="call one of the three APIs")
    query.add_argument("--taxonomy", required=True)
    query.add_argument(
        "api", choices=["men2ent", "getConcept", "getEntity"]
    )
    query.add_argument("argument")
    query.set_defaults(func=_cmd_query)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
